"""The NIX delete-chain SA1/SA2 tabulation (PR 5 satellite).

The parent-oid retrieval of the NIX deletion algorithm — ``min(SA1,
SA2)`` Yao estimates over the auxiliary-index leaf profile — is the
remaining serial hot spot of matrix construction (ROADMAP PR 2
follow-up). It is now tabulated in the statistics-owned evaluation memo
behind the existing ``cache_evaluation`` gate; these tests pin that the
tabulation is live (entries appear under its key tag) and bit-identical
to the uncached evaluation.
"""

from repro.core.cost_matrix import CostMatrix
from repro.costmodel.nix import NIXCostModel
from repro.costmodel.params import ClassStats, CostModelConfig, PathStatistics
from repro.synth import LevelSpec, linear_path_schema
from repro.workload.load import LoadDistribution

#: The memo key tag reserved by the SA1/SA2 retrieval tabulation.
RETRIEVAL_TAG = 42


def make_stats(cache_evaluation=True, length=6, subclasses=(0, 2, 0, 1, 0, 0)):
    levels = [
        LevelSpec(f"L{i}", subclasses=subclasses[i % len(subclasses)])
        for i in range(length)
    ]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    remaining = 30_000
    for position in range(1, length + 1):
        for member in path.hierarchy_at(position):
            per_class[member] = ClassStats(
                objects=remaining, distinct=max(10, remaining // 4), fanout=1.0
            )
        remaining = max(60, remaining // 4)
    config = CostModelConfig(cache_evaluation=cache_evaluation)
    return PathStatistics(path, per_class, config)


class TestRetrievalTabulation:
    def test_delete_cost_bit_identical_with_and_without_cache(self):
        cached_stats = make_stats(cache_evaluation=True)
        uncached_stats = make_stats(cache_evaluation=False)
        length = cached_stats.length
        for start in range(1, length + 1):
            for end in range(start, length + 1):
                cached_model = NIXCostModel(cached_stats, start, end)
                uncached_model = NIXCostModel(uncached_stats, start, end)
                for position in range(start, end + 1):
                    for member in cached_stats.members(position):
                        assert cached_model.delete_cost(
                            position, member
                        ) == uncached_model.delete_cost(position, member), (
                            start,
                            end,
                            position,
                            member,
                        )

    def test_tabulation_entries_are_written(self):
        stats = make_stats(cache_evaluation=True)
        # The tabulation lives in the legacy evaluator; the columnar
        # kernel batches the same estimates without the memo.
        CostMatrix.compute(
            stats,
            LoadDistribution.uniform(stats.path, 0.3, 0.1, 0.1),
            kernel="legacy",
        )
        tags = {
            key[0]
            for key in stats._primitive_cache
            if isinstance(key, tuple) and key
        }
        assert RETRIEVAL_TAG in tags

    def test_tabulation_hits_repeat_across_hierarchy_members(self):
        stats = make_stats(cache_evaluation=True)
        # Position 2 has subclasses: deleting any member walks the same
        # parent chain, so the second member's retrieval must hit the
        # entry the first one wrote (entry count stays fixed).
        model = NIXCostModel(stats, 1, stats.length)
        members = stats.members(4)
        assert len(members) > 1
        model.delete_cost(4, members[0])
        entries_after_first = sum(
            1 for key in stats._primitive_cache if key[0] == RETRIEVAL_TAG
        )
        assert entries_after_first >= 1
        model.delete_cost(4, members[1])
        entries_after_second = sum(
            1 for key in stats._primitive_cache if key[0] == RETRIEVAL_TAG
        )
        assert entries_after_second == entries_after_first

    def test_matrix_bit_identical_with_and_without_cache(self):
        cached_stats = make_stats(cache_evaluation=True)
        uncached_stats = make_stats(cache_evaluation=False)
        load_cached = LoadDistribution.uniform(cached_stats.path, 0.3, 0.15, 0.2)
        load_uncached = LoadDistribution.uniform(
            uncached_stats.path, 0.3, 0.15, 0.2
        )
        cached = CostMatrix.compute(cached_stats, load_cached)
        uncached = CostMatrix.compute(uncached_stats, load_uncached)
        for start, end in cached.rows():
            for organization in cached.organizations:
                assert cached.cost(start, end, organization) == uncached.cost(
                    start, end, organization
                )

    def test_no_tabulation_when_cache_disabled(self):
        stats = make_stats(cache_evaluation=False)
        assert stats.primitive_cache() is None
        model = NIXCostModel(stats, 1, stats.length)
        # Still computes correctly with the memo off.
        assert model.delete_cost(4, stats.members(4)[0]) > 0
