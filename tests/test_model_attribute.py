"""Tests for repro.model.attribute."""

import pytest

from repro.errors import SchemaError
from repro.model.attribute import AtomicType, Attribute


class TestAttributeConstruction:
    def test_atomic_attribute(self):
        attribute = Attribute("age", AtomicType.INTEGER)
        assert attribute.is_atomic
        assert not attribute.is_reference
        assert not attribute.multi_valued

    def test_reference_attribute(self):
        attribute = Attribute("owns", "Vehicle", multi_valued=True)
        assert attribute.is_reference
        assert not attribute.is_atomic
        assert attribute.multi_valued

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", AtomicType.STRING)

    def test_non_identifier_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("has space", AtomicType.STRING)

    def test_empty_domain_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("ref", "")

    def test_frozen(self):
        attribute = Attribute("age", AtomicType.INTEGER)
        with pytest.raises(AttributeError):
            attribute.name = "other"  # type: ignore[misc]


class TestAtomicValueChecking:
    def test_integer_accepts_int(self):
        assert Attribute("a", AtomicType.INTEGER).accepts_atomic_value(42)

    def test_integer_rejects_bool(self):
        assert not Attribute("a", AtomicType.INTEGER).accepts_atomic_value(True)

    def test_integer_rejects_string(self):
        assert not Attribute("a", AtomicType.INTEGER).accepts_atomic_value("42")

    def test_real_accepts_float_and_int(self):
        attribute = Attribute("a", AtomicType.REAL)
        assert attribute.accepts_atomic_value(1.5)
        assert attribute.accepts_atomic_value(2)

    def test_string_accepts_str(self):
        assert Attribute("a", AtomicType.STRING).accepts_atomic_value("hi")

    def test_boolean_accepts_bool(self):
        assert Attribute("a", AtomicType.BOOLEAN).accepts_atomic_value(False)

    def test_reference_attribute_never_accepts_atomic(self):
        assert not Attribute("r", "C").accepts_atomic_value("anything")


class TestRendering:
    def test_multi_valued_marker(self):
        assert str(Attribute("owns", "Vehicle", multi_valued=True)) == "owns+: Vehicle"

    def test_atomic_rendering(self):
        assert str(Attribute("age", AtomicType.INTEGER)) == "age: integer"
