"""Tests for JSON spec serialization and the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.io import (
    load_spec,
    schema_from_dict,
    schema_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from repro.organizations import IndexOrganization
from repro.paper import figure7_load, figure7_statistics


@pytest.fixture()
def fig7_spec_dict():
    return spec_to_dict(figure7_statistics(), figure7_load())


class TestSchemaRoundTrip:
    def test_round_trip_preserves_structure(self, vehicle_schema):
        data = schema_to_dict(vehicle_schema)
        rebuilt = schema_from_dict(data)
        assert set(rebuilt.class_names()) == set(vehicle_schema.class_names())
        assert rebuilt.direct_subclasses("Vehicle") == ["Bus", "Truck"]
        owns = rebuilt.resolve_attribute("Person", "owns")
        assert owns.multi_valued and owns.domain == "Vehicle"

    def test_atomic_domains_round_trip(self, vehicle_schema):
        rebuilt = schema_from_dict(schema_to_dict(vehicle_schema))
        age = rebuilt.resolve_attribute("Person", "age")
        assert age.is_atomic and str(age.domain) == "integer"

    def test_malformed_document_rejected(self):
        with pytest.raises(ReproError):
            schema_from_dict({"nope": []})


class TestSpecRoundTrip:
    def test_round_trip_statistics(self, fig7_spec_dict):
        spec = spec_from_dict(fig7_spec_dict)
        assert spec.stats.n(1, "Person") == 200_000
        assert spec.stats.nin(3, "Company") == 4

    def test_round_trip_workload(self, fig7_spec_dict):
        spec = spec_from_dict(fig7_spec_dict)
        assert spec.load.triplet("Person").query == pytest.approx(0.3)
        assert spec.load.triplet("Division").insert == pytest.approx(0.2)

    def test_round_trip_advises_identically(self, fig7_spec_dict):
        from repro.core.advisor import advise

        spec = spec_from_dict(fig7_spec_dict)
        original = advise(figure7_statistics(), figure7_load())
        rebuilt = advise(spec.stats, spec.load)
        assert rebuilt.optimal.cost == pytest.approx(original.optimal.cost)
        assert (
            rebuilt.optimal.configuration.partition()
            == original.optimal.configuration.partition()
        )

    def test_options_parsed(self, fig7_spec_dict):
        fig7_spec_dict["options"]["organizations"] = ["MX", "NIX"]
        fig7_spec_dict["options"]["include_noindex"] = True
        fig7_spec_dict["options"]["range_selectivity"] = 0.2
        spec = spec_from_dict(fig7_spec_dict)
        assert spec.organizations == (
            IndexOrganization.MX,
            IndexOrganization.NIX,
        )
        assert spec.include_noindex is True
        assert spec.range_selectivity == pytest.approx(0.2)

    def test_unknown_organization_rejected(self, fig7_spec_dict):
        fig7_spec_dict["options"]["organizations"] = ["BOGUS"]
        with pytest.raises(ReproError):
            spec_from_dict(fig7_spec_dict)

    def test_missing_sections_rejected(self, fig7_spec_dict):
        del fig7_spec_dict["statistics"]
        with pytest.raises(ReproError):
            spec_from_dict(fig7_spec_dict)

    def test_load_spec_from_file(self, fig7_spec_dict, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(fig7_spec_dict))
        spec = load_spec(str(path))
        assert spec.stats.length == 4

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ReproError):
            load_spec(str(path))


class TestCLI:
    def test_example_emits_valid_spec(self, capsys):
        assert main(["example"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["path"] == "Person.owns.man.divisions.name"
        spec_from_dict(document)  # must parse back

    def test_advise_text_output(self, capsys, fig7_spec_dict, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(fig7_spec_dict))
        assert main(["advise", str(path)]) == 0
        out = capsys.readouterr().out
        assert "optimal:" in out
        assert "Person.owns.man" in out

    def test_advise_json_output(self, capsys, fig7_spec_dict, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(fig7_spec_dict))
        assert main(["advise", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["optimal"]["configuration"][0]["organization"] == "NIX"
        assert payload["optimal"]["pruned"] >= 1

    def test_advise_workers_flag(self, capsys, fig7_spec_dict, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(fig7_spec_dict))
        assert main(["advise", str(path), "--workers", "2", "--json"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert main(["advise", str(path), "--workers", "0", "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        # Deterministic: worker count never changes the answer.
        assert parallel["optimal"] == serial["optimal"]

    def test_matrix_workers_flag(self, capsys, fig7_spec_dict, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(fig7_spec_dict))
        assert main(["matrix", str(path), "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert main(["matrix", str(path), "--workers", "0"]) == 0
        assert parallel == capsys.readouterr().out

    def test_negative_workers_rejected(self, capsys, fig7_spec_dict, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(fig7_spec_dict))
        assert main(["advise", str(path), "--workers", "-3"]) == 1
        assert "workers" in capsys.readouterr().err

    def test_advise_with_trace(self, capsys, fig7_spec_dict, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(fig7_spec_dict))
        assert main(["advise", str(path), "--trace"]) == 0
        assert "candidate" in capsys.readouterr().out

    def test_advise_strategy_flag(self, capsys, fig7_spec_dict, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(fig7_spec_dict))
        assert main(["advise", str(path), "--strategy", "dynamic_program", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["strategy"] == "dynamic_program"
        assert payload["optimal"]["configuration"][0]["organization"] == "NIX"

    def test_advise_beam_strategy_with_width(self, capsys, fig7_spec_dict, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(fig7_spec_dict))
        assert main(
            [
                "advise",
                str(path),
                "--strategy",
                "greedy_beam",
                "--beam-width",
                "4",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["strategy"] == "greedy_beam"

    def test_beam_width_requires_greedy_beam(self, capsys, fig7_spec_dict, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(fig7_spec_dict))
        assert main(["advise", str(path), "--beam-width", "4"]) == 1
        assert "--strategy greedy_beam" in capsys.readouterr().err

    def test_zero_beam_width_rejected(self, capsys, fig7_spec_dict, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(fig7_spec_dict))
        assert (
            main(
                [
                    "advise",
                    str(path),
                    "--strategy",
                    "greedy_beam",
                    "--beam-width",
                    "0",
                ]
            )
            == 1
        )
        assert "beam width must be positive" in capsys.readouterr().err

    def test_advise_unknown_strategy_rejected(self, fig7_spec_dict, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(fig7_spec_dict))
        with pytest.raises(SystemExit):
            main(["advise", str(path), "--strategy", "nope"])

    def test_matrix_command(self, capsys, fig7_spec_dict, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(fig7_spec_dict))
        assert main(["matrix", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Division.name" in out

    def test_paper_command(self, capsys):
        assert main(["paper"]) == 0
        assert "optimal:" in capsys.readouterr().out

    def test_missing_file_is_error(self, capsys):
        assert main(["advise", "/nonexistent/spec.json"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_spec_is_error(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": {"classes": []}}))
        assert main(["advise", str(path)]) == 1
        assert "error:" in capsys.readouterr().err
