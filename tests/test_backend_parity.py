"""Property-based parity: the ground-truth backend returns bit-identical
result sets to the plain operational executor under random operation
sequences, for every organization and both storage layouts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.materialize import MaterializedConfiguration
from repro.core.configuration import IndexConfiguration
from repro.costmodel.params import ClassStats
from repro.errors import StorageError
from repro.indexes.executor import PathQueryExecutor
from repro.indexes.manager import ConfigurationIndexSet
from repro.organizations import IndexOrganization
from repro.synth import LevelSpec, linear_path_schema, populate_path_database

SIX = IndexOrganization.SIX
IIX = IndexOrganization.IIX
MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX

#: One configuration per paper organization, plus a mixed partition.
HIERARCHY_CONFIGS = [
    IndexConfiguration.whole_path(3, NIX),
    IndexConfiguration.whole_path(3, MX),
    IndexConfiguration.whole_path(3, MIX),
    IndexConfiguration.of((1, 1, IIX), (2, 2, IIX), (3, 3, IIX)),
    IndexConfiguration.of((1, 2, NIX), (3, 3, MIX)),
]
#: SIX indexes a single class, so it gets the subclass-free world.
FLAT_CONFIGS = [
    IndexConfiguration.of((1, 1, SIX), (2, 2, SIX), (3, 3, SIX)),
]

LAYOUTS = ["btree", "hash"]


def build_world(seed: int, subclasses: bool = True):
    schema, path = linear_path_schema(
        [
            LevelSpec("P", multi_valued=True),
            LevelSpec("V", subclasses=1 if subclasses else 0),
            LevelSpec("D", multi_valued=True),
        ]
    )
    specs = {
        "P": ClassStats(objects=30, distinct=15, fanout=2),
        "V": ClassStats(objects=20, distinct=8, fanout=1),
        "D": ClassStats(objects=12, distinct=5, fanout=2),
    }
    if subclasses:
        specs["VSub1"] = ClassStats(objects=10, distinct=6, fanout=1)
    database = populate_path_database(schema, path, specs, seed=seed)
    return schema, path, database


operation_list = st.lists(
    st.tuples(
        st.sampled_from(
            ["delete_P", "delete_V", "delete_D", "insert_P", "query", "range"]
        ),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=20,
)


def _ending_values(database):
    return sorted(
        {v for d in database.extent("D") for v in d.value_list("label")},
        key=repr,
    )


def _pick(extent, number):
    items = sorted(extent, key=lambda i: i.oid)
    if not items:
        return None
    return items[number % len(items)].oid


def _run_parity(configuration, layout, seed, ops, subclasses=True):
    """Apply one op sequence to the executor and the backend in lockstep,
    asserting identical result sets (and identical created oids)."""
    _schema, path, reference_db = build_world(seed, subclasses=subclasses)
    _schema2, path2, backend_db = build_world(seed, subclasses=subclasses)
    reference = PathQueryExecutor(
        ConfigurationIndexSet(reference_db, path, configuration)
    )
    backend = MaterializedConfiguration(
        backend_db, path2, configuration, layout=layout
    )

    for action, number in ops:
        if action in ("query", "range"):
            values = _ending_values(reference_db)
            if not values:
                continue
            if action == "query":
                value = values[number % len(values)]
                expected = reference.query(value, "P").oids
                got = backend.query(value, "P").oids
            else:
                if layout == "hash":
                    continue  # hash directories have no key order
                low = values[number % len(values)]
                high = values[min(len(values) - 1, number % len(values) + 2)]
                if repr(high) < repr(low):
                    low, high = high, low
                try:
                    expected = reference.range_query(low, high, "P").oids
                except TypeError:
                    continue  # mixed-type bounds are unorderable
                got = backend.range_query(low, high, "P").oids
            assert got == expected
            continue
        if action == "insert_P":
            target_pool = sorted(
                (i.oid for i in reference_db.hierarchy_extent("V")),
            )
            if not target_pool:
                continue
            chosen = target_pool[number % len(target_pool)]
            expected_oid = reference.insert(
                "P", ref1=[chosen], payload=number
            ).oid
            got_oid = backend.insert("P", ref1=[chosen], payload=number).oids
            assert got_oid == frozenset((expected_oid,))
            continue
        class_name = action.split("_")[1]
        victim = _pick(reference_db.extent(class_name), number)
        if victim is None:
            continue
        reference.delete(victim)
        backend.delete(victim)

    reference.indexes.check_consistency()
    backend.check_consistency()

    # The surviving object sets must agree exactly.
    for member in path.scope:
        assert {i.oid for i in backend_db.extent(member)} == {
            i.oid for i in reference_db.extent(member)
        }


@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize(
    "configuration", HIERARCHY_CONFIGS, ids=lambda c: c.render()
)
@given(seed=st.integers(min_value=0, max_value=50), ops=operation_list)
@settings(max_examples=10, deadline=None)
def test_backend_matches_executor(configuration, layout, seed, ops):
    _run_parity(configuration, layout, seed, ops)


@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize(
    "configuration", FLAT_CONFIGS, ids=lambda c: c.render()
)
@given(seed=st.integers(min_value=0, max_value=50), ops=operation_list)
@settings(max_examples=10, deadline=None)
def test_backend_matches_executor_six(configuration, layout, seed, ops):
    _run_parity(configuration, layout, seed, ops, subclasses=False)


class TestHashLayoutLimits:
    def test_range_scan_rejected(self):
        _schema, path, database = build_world(3)
        backend = MaterializedConfiguration(
            database, path, IndexConfiguration.whole_path(3, NIX), layout="hash"
        )
        with pytest.raises(StorageError):
            backend.range_query(0, 10, "P")

    def test_unknown_layout_rejected(self):
        _schema, path, database = build_world(3)
        with pytest.raises(Exception):
            MaterializedConfiguration(
                database,
                path,
                IndexConfiguration.whole_path(3, NIX),
                layout="cuckoo",
            )


class TestMeasuredOperations:
    def test_query_measures_positive_io(self):
        _schema, path, database = build_world(5)
        backend = MaterializedConfiguration(
            database, path, IndexConfiguration.whole_path(3, NIX)
        )
        values = _ending_values(database)
        measured = backend.query(values[0], "P")
        assert measured.io.total > 0
        assert measured.io.by_owner  # attributed to some owner

    def test_build_io_recorded(self):
        _schema, path, database = build_world(5)
        backend = MaterializedConfiguration(
            database, path, IndexConfiguration.whole_path(3, NIX)
        )
        assert backend.build_io.allocations > 0
        assert backend.build_io.stats.writes > 0

    def test_owner_labels_cover_parts_and_heaps(self):
        _schema, path, database = build_world(5)
        backend = MaterializedConfiguration(
            database, path, IndexConfiguration.of((1, 2, NIX), (3, 3, MIX))
        )
        live = backend.storage_by_owner()
        assert set(backend.part_labels()) == {"S[1,2]:NIX", "S[3,3]:MIX"}
        for label in backend.part_labels():
            assert live.get(label, 0) > 0
        assert any(owner.startswith("heap:") for owner in live)
