"""Tests for Opt_Ind_Con: the Figure 6 walkthrough and B&B properties."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_matrix import CostMatrix
from repro.organizations import IndexOrganization
from repro.search import enumerate_partitions, get_strategy


def optimize(matrix, keep_trace=False):
    return get_strategy("branch_and_bound").search(matrix, keep_trace=keep_trace)


def exhaustive_search(matrix, keep_all=False):
    return get_strategy("exhaustive", keep_all=keep_all).search(matrix)


def dynamic_program(matrix):
    return get_strategy("dynamic_program").search(matrix)

MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX


class TestFigure6Walkthrough:
    """The branch-and-bound trace of Section 5, step by step."""

    def test_optimal_configuration(self, fig6):
        result = optimize(fig6)
        assert result.configuration.partition() == ((1, 1), (2, 4))
        assert result.configuration.assignments[0].organization is MX
        assert result.configuration.assignments[1].organization is NIX
        assert result.cost == 8.0

    def test_candidates_in_paper_order(self, fig6):
        result = optimize(fig6, keep_trace=True)
        candidates = [line for line in result.trace if line.startswith("candidate")]
        assert candidates[0].startswith("candidate {S[1,4]} cost 9")
        assert candidates[1].startswith("candidate {S[1,3], S[4,4]} cost 12")
        assert candidates[2].startswith("candidate {S[1,2], S[3,4]} cost 12")
        assert candidates[3].startswith(
            "candidate {S[1,2], S[3,3], S[4,4]} cost 12"
        )
        assert candidates[4].startswith("candidate {S[1,1], S[2,4]} cost 8")
        assert candidates[5].startswith(
            "candidate {S[1,1], S[2,2], S[3,4]} cost 13"
        )

    def test_paper_prune_points(self, fig6):
        result = optimize(fig6, keep_trace=True)
        prunes = [line for line in result.trace if line.startswith("prune")]
        # "PC(S1,1) + PC(S2,3) = 8 >= 8": configurations with S1,1 + S2,3 cut.
        assert any("S[2,3]" in line for line in prunes)
        # "PC(S1,1) + PC(S2,2) + PC(S3,3) = 9 > 8": cut as well.
        assert any("S[3,3]" in line for line in prunes)
        assert result.pruned == 2

    def test_evaluation_count(self, fig6):
        result = optimize(fig6)
        # 6 of the 8 recombinations are costed; 2 branches are pruned.
        assert result.evaluated == 6
        assert result.pruned == 2

    def test_pc_min_evolution(self, fig6):
        result = optimize(fig6, keep_trace=True)
        bests = [line for line in result.trace if line.endswith("new best")]
        assert len(bests) == 2  # 9 then 8
        assert "cost 9" in bests[0]
        assert "cost 8" in bests[1]

    def test_render(self, fig6):
        text = optimize(fig6).render()
        assert "processing cost 8.00" in text
        assert "6 configurations evaluated" in text


def random_matrix(length: int, seed: int) -> CostMatrix:
    rng = random.Random(seed)
    values = {}
    for start in range(1, length + 1):
        for end in range(start, length + 1):
            values[(start, end)] = {
                MX: rng.uniform(1, 20),
                MIX: rng.uniform(1, 20),
                NIX: rng.uniform(1, 20),
            }
    return CostMatrix.from_values(length, values)


class TestOptimalityProperties:
    @given(
        length=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_bnb_matches_exhaustive_and_dp(self, length, seed):
        matrix = random_matrix(length, seed)
        bnb = optimize(matrix)
        full = exhaustive_search(matrix)
        dp = dynamic_program(matrix)
        assert bnb.cost == pytest.approx(full.cost)
        assert dp.cost == pytest.approx(full.cost)
        # All three must produce valid partitions of the same cost; the
        # partition itself may differ only under exact ties.
        assert bnb.configuration.length == length

    @given(
        length=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_bnb_never_evaluates_more_than_exhaustive(self, length, seed):
        matrix = random_matrix(length, seed)
        bnb = optimize(matrix)
        assert bnb.evaluated <= 2 ** (length - 1)

    @given(seed=st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=50, deadline=None)
    def test_configuration_cost_equals_sum_of_entries(self, seed):
        matrix = random_matrix(5, seed)
        from repro.core.evaluation import configuration_cost

        result = optimize(matrix)
        assert configuration_cost(matrix, result.configuration) == pytest.approx(
            result.cost
        )

    def test_single_class_path(self):
        matrix = random_matrix(1, 7)
        result = optimize(matrix)
        assert result.configuration.partition() == ((1, 1),)
        assert result.evaluated == 1
        assert result.pruned == 0


class TestExhaustive:
    def test_partition_count_is_two_to_n_minus_one(self):
        # Section 5: "the number of possible recombinations ... is 2^{n-1}".
        for length in range(1, 9):
            assert len(list(enumerate_partitions(length))) == 2 ** (length - 1)

    def test_partitions_are_valid_covers(self):
        for blocks in enumerate_partitions(5):
            expected_start = 1
            for start, end in blocks:
                assert start == expected_start
                assert end >= start
                expected_start = end + 1
            assert expected_start == 6

    def test_partitions_unique(self):
        partitions = list(enumerate_partitions(6))
        assert len(set(partitions)) == len(partitions)

    def test_invalid_length_rejected(self):
        from repro.errors import OptimizerError

        with pytest.raises(OptimizerError):
            list(enumerate_partitions(0))

    def test_keep_all_returns_every_configuration(self, fig6):
        result = exhaustive_search(fig6, keep_all=True)
        assert len(result.extras["all_costs"]) == 8
        assert result.evaluated == 8
        costs = sorted(cost for _, cost in result.extras["all_costs"])
        assert costs[0] == result.cost == 8.0


class TestDynamicProgram:
    def test_figure6_optimum(self, fig6):
        result = dynamic_program(fig6)
        assert result.cost == 8.0
        assert result.configuration.partition() == ((1, 1), (2, 4))

    def test_rows_inspected_is_quadratic(self, fig6):
        result = dynamic_program(fig6)
        assert result.extras["rows_inspected"] == 10  # n(n+1)/2 for n=4

    def test_dp_on_longer_path_is_cheap(self):
        matrix = random_matrix(8, 3)
        result = dynamic_program(matrix)
        assert result.extras["rows_inspected"] == 36
