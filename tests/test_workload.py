"""Tests for the workload model (Section 3.2)."""

import pytest

from repro.errors import WorkloadError
from repro.workload.generator import WorkloadGenerator
from repro.workload.load import LoadDistribution, LoadTriplet


class TestLoadTriplet:
    def test_total(self):
        assert LoadTriplet(0.3, 0.1, 0.1).total == pytest.approx(0.5)

    def test_negative_rejected(self):
        with pytest.raises(WorkloadError):
            LoadTriplet(query=-0.1)
        with pytest.raises(WorkloadError):
            LoadTriplet(insert=-0.1)
        with pytest.raises(WorkloadError):
            LoadTriplet(delete=-0.1)

    def test_scaled(self):
        triplet = LoadTriplet(0.3, 0.1, 0.2).scaled(2.0)
        assert (triplet.query, triplet.insert, triplet.delete) == (0.6, 0.2, 0.4)

    def test_scaled_negative_rejected(self):
        with pytest.raises(WorkloadError):
            LoadTriplet(0.1, 0.1, 0.1).scaled(-1)

    def test_with_query(self):
        triplet = LoadTriplet(0.3, 0.1, 0.2).with_query(0.9)
        assert triplet.query == 0.9
        assert triplet.insert == 0.1


class TestLoadDistribution:
    def test_missing_classes_default_to_zero(self, pexa):
        load = LoadDistribution(pexa, {"Person": LoadTriplet(0.5)})
        assert load.triplet("Vehicle").total == 0.0

    def test_class_outside_scope_rejected(self, pexa):
        with pytest.raises(WorkloadError):
            LoadDistribution(pexa, {"Nope": LoadTriplet(0.5)})

    def test_triplet_lookup_outside_scope_rejected(self, pexa):
        load = LoadDistribution.uniform(pexa)
        with pytest.raises(WorkloadError):
            load.triplet("Nope")

    def test_uniform(self, pexa):
        load = LoadDistribution.uniform(pexa, query=0.2, insert=0.1)
        assert load.triplet("Bus").query == 0.2
        assert load.triplet("Division").insert == 0.1

    def test_total_frequency(self, pexa):
        load = LoadDistribution.uniform(pexa, query=1.0)
        assert load.total_frequency() == pytest.approx(len(pexa.scope))

    def test_scaled(self, pexa):
        load = LoadDistribution.uniform(pexa, query=1.0).scaled(0.5)
        assert load.triplet("Person").query == 0.5

    def test_items_in_scope_order(self, pexa):
        load = LoadDistribution.uniform(pexa)
        assert [name for name, _ in load.items()] == list(pexa.scope)

    def test_describe(self, fig7_load):
        text = fig7_load.describe()
        assert "Person" in text and "0.3" in text


class TestSubpathDerivation:
    """Section 3.2: the subpath load derivation rule."""

    def test_prefix_subpath_keeps_load(self, fig7_load):
        derived = fig7_load.derived_for_subpath(1, 2)
        assert derived["Person"].query == pytest.approx(0.3)
        assert derived["Vehicle"].query == pytest.approx(0.3)
        assert set(derived) == {"Person", "Vehicle", "Bus", "Truck"}

    def test_non_prefix_subpath_accumulates_upstream_queries(self, fig7_load):
        derived = fig7_load.derived_for_subpath(3, 4)
        # Upstream queries: Person 0.3 + Vehicle 0.3 + Bus 0.05 + Truck 0.0.
        assert derived["Company"].query == pytest.approx(0.1 + 0.65)
        # Insert/delete frequencies are untouched.
        assert derived["Company"].insert == pytest.approx(0.1)
        assert derived["Company"].delete == pytest.approx(0.1)
        assert derived["Division"].query == pytest.approx(0.2)

    def test_upstream_mass_lands_on_root_member(self, fig7_load):
        derived = fig7_load.derived_for_subpath(2, 4)
        # Root member Vehicle gets Person's 0.3; Bus/Truck keep their own.
        assert derived["Vehicle"].query == pytest.approx(0.3 + 0.3)
        assert derived["Bus"].query == pytest.approx(0.05)
        assert derived["Truck"].query == pytest.approx(0.0)

    def test_subpath_scope_only(self, fig7_load):
        derived = fig7_load.derived_for_subpath(4, 4)
        assert set(derived) == {"Division"}

    def test_invalid_bounds_rejected(self, fig7_load):
        with pytest.raises(WorkloadError):
            fig7_load.derived_for_subpath(0, 2)
        with pytest.raises(WorkloadError):
            fig7_load.derived_for_subpath(2, 9)

    def test_query_mass_conservation(self, fig7_load):
        """Derived query mass = upstream mass + own subpath mass."""
        for start in range(1, 5):
            for end in range(start, 5):
                derived = fig7_load.derived_for_subpath(start, end)
                derived_mass = sum(t.query for t in derived.values())
                own = sum(
                    fig7_load.triplet(member).query
                    for position in range(start, end + 1)
                    for member in fig7_load.path.hierarchy_at(position)
                )
                upstream = sum(
                    fig7_load.triplet(member).query
                    for position in range(1, start)
                    for member in fig7_load.path.hierarchy_at(position)
                )
                assert derived_mass == pytest.approx(own + upstream)


class TestWorkloadGenerator:
    def test_deterministic_with_seed(self, pexa):
        first = WorkloadGenerator(seed=42).mixed(pexa)
        second = WorkloadGenerator(seed=42).mixed(pexa)
        for name, triplet in first.items():
            other = second.triplet(name)
            assert triplet.query == pytest.approx(other.query)
            assert triplet.insert == pytest.approx(other.insert)

    def test_total_mass_respected(self, pexa):
        load = WorkloadGenerator(seed=1).mixed(pexa, total=2.0)
        assert load.total_frequency() == pytest.approx(2.0)

    def test_query_only(self, pexa):
        load = WorkloadGenerator(seed=1).query_only(pexa)
        assert all(t.insert == 0 and t.delete == 0 for _, t in load.items())
        assert load.total_frequency() > 0

    def test_update_only(self, pexa):
        load = WorkloadGenerator(seed=1).update_only(pexa)
        assert all(t.query == 0 for _, t in load.items())

    def test_invalid_weights_rejected(self, pexa):
        generator = WorkloadGenerator()
        with pytest.raises(WorkloadError):
            generator.mixed(pexa, query_weight=-1)
        with pytest.raises(WorkloadError):
            generator.mixed(pexa, query_weight=0, update_weight=0)

    def test_skewed_to_start(self, pexa):
        load = WorkloadGenerator(seed=3).skewed_to_start(pexa)
        start_queries = load.triplet("Person").query
        for name, triplet in load.items():
            if name != "Person":
                assert triplet.query < start_queries
