"""Tests for configuration evaluation (additive and coupled)."""

import pytest

from repro.core.configuration import IndexConfiguration
from repro.core.cost_matrix import CostMatrix
from repro.core.evaluation import (
    configuration_cost,
    coupled_configuration_cost,
    per_class_analytic_costs,
)
from repro.organizations import IndexOrganization

MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX


class TestAdditiveEvaluation:
    def test_sum_of_matrix_entries(self, fig6):
        config = IndexConfiguration.of((1, 2, MIX), (3, 4, NIX))
        assert configuration_cost(fig6, config) == 6.0 + 6.0

    def test_whole_path(self, fig6):
        config = IndexConfiguration.whole_path(4, NIX)
        assert configuration_cost(fig6, config) == 9.0


class TestCoupledEvaluation:
    def test_components_nonnegative_and_total(self, fig7_stats, fig7_load):
        config = IndexConfiguration.of((1, 2, NIX), (3, 4, MX))
        cost = coupled_configuration_cost(fig7_stats, fig7_load, config)
        assert cost.query >= 0
        assert cost.insert >= 0
        assert cost.delete >= 0
        assert cost.cmd >= 0
        assert cost.total == pytest.approx(
            cost.query + cost.insert + cost.delete + cost.cmd
        )

    def test_coupled_close_to_additive_for_whole_path(self, fig7_stats, fig7_load):
        """With a single subpath the two evaluations coincide up to the
        hierarchy-root aggregation of upstream queries."""
        config = IndexConfiguration.whole_path(4, NIX)
        matrix = CostMatrix.compute(fig7_stats, fig7_load)
        additive = configuration_cost(matrix, config)
        coupled = coupled_configuration_cost(fig7_stats, fig7_load, config)
        assert coupled.total == pytest.approx(additive, rel=0.35)

    def test_coupled_ranks_split_better_than_whole_nix(self, fig7_stats, fig7_load):
        """The paper's headline holds under the exact evaluation too."""
        split = coupled_configuration_cost(
            fig7_stats,
            fig7_load,
            IndexConfiguration.of((1, 2, NIX), (3, 4, MX)),
        )
        whole = coupled_configuration_cost(
            fig7_stats, fig7_load, IndexConfiguration.whole_path(4, NIX)
        )
        assert split.total < whole.total

    def test_maintenance_identical_between_evaluations(self, fig7_stats, fig7_load):
        """Maintenance decomposes exactly; only query costs differ."""
        config = IndexConfiguration.of((1, 1, MX), (2, 4, NIX))
        matrix = CostMatrix.compute(fig7_stats, fig7_load)
        coupled = coupled_configuration_cost(fig7_stats, fig7_load, config)
        additive_maintenance = 0.0
        for part in config.assignments:
            breakdown = matrix.breakdown(part.start, part.end, part.organization)
            assert breakdown is not None
            additive_maintenance += breakdown.insert + breakdown.delete + breakdown.cmd
        assert coupled.insert + coupled.delete + coupled.cmd == pytest.approx(
            additive_maintenance
        )


class TestPerClassCosts:
    def test_covers_every_scope_class(self, fig7_stats):
        config = IndexConfiguration.of((1, 2, NIX), (3, 4, MX))
        costs = per_class_analytic_costs(fig7_stats, config)
        expected_keys = {
            (position, member)
            for position in range(1, 5)
            for member in fig7_stats.members(position)
        }
        assert set(costs) == expected_keys

    def test_each_entry_has_three_operations(self, fig7_stats):
        config = IndexConfiguration.whole_path(4, MIX)
        costs = per_class_analytic_costs(fig7_stats, config)
        for entry in costs.values():
            assert set(entry) == {"query", "insert", "delete"}
            assert all(value >= 0 for value in entry.values())

    def test_subpath_start_delete_includes_preceding_cmd(self, fig7_stats):
        split = IndexConfiguration.of((1, 2, NIX), (3, 4, MX))
        whole_tail = IndexConfiguration.of((1, 4, NIX),)
        split_costs = per_class_analytic_costs(fig7_stats, split)
        # Company starts the second subpath: deleting it pays the NIX CMD
        # on Person.owns.man.
        from repro.costmodel.subpath import build_model

        nix_model = build_model(fig7_stats, 1, 2, NIX)
        mx_model = build_model(fig7_stats, 3, 4, MX)
        expected = mx_model.delete_cost(3, "Company") + nix_model.cmd_cost()
        assert split_costs[(3, "Company")]["delete"] == pytest.approx(expected)

    def test_query_cost_decreases_downstream(self, fig7_stats):
        config = IndexConfiguration.of((1, 2, NIX), (3, 4, MX))
        costs = per_class_analytic_costs(fig7_stats, config)
        assert costs[(1, "Person")]["query"] > costs[(4, "Division")]["query"]
