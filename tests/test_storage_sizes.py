"""Tests for repro.storage.sizes."""

import pytest

from repro.errors import StorageError
from repro.storage.sizes import SizeModel


class TestValidation:
    def test_defaults_are_valid(self):
        SizeModel()

    def test_zero_page_size_rejected(self):
        with pytest.raises(StorageError):
            SizeModel(page_size=0)

    def test_negative_oid_size_rejected(self):
        with pytest.raises(StorageError):
            SizeModel(oid_size=-1)

    def test_non_integer_rejected(self):
        with pytest.raises(StorageError):
            SizeModel(page_size=4096.5)  # type: ignore[arg-type]

    def test_tiny_page_rejected(self):
        with pytest.raises(StorageError):
            SizeModel(page_size=16)


class TestDerivedQuantities:
    def test_key_size_for_atomic_and_oid(self):
        sizes = SizeModel(atomic_key_size=16, oid_size=8)
        assert sizes.key_size(atomic=True) == 16
        assert sizes.key_size(atomic=False) == 8

    def test_nonleaf_fanout(self):
        sizes = SizeModel(page_size=4096, atomic_key_size=16, pointer_size=8)
        assert sizes.nonleaf_fanout(atomic_key=True) == 4096 // 24
        assert sizes.nonleaf_fanout(atomic_key=False) == 4096 // 16

    def test_fanout_is_at_least_two(self):
        sizes = SizeModel(page_size=80, atomic_key_size=48, pointer_size=24, oid_size=8)
        assert sizes.nonleaf_fanout(atomic_key=True) == 2

    def test_pages_for(self):
        sizes = SizeModel(page_size=4096)
        assert sizes.pages_for(0) == 0
        assert sizes.pages_for(1) == 1
        assert sizes.pages_for(4096) == 1
        assert sizes.pages_for(4097) == 2
        assert sizes.pages_for(3 * 4096) == 3

    def test_records_per_page(self):
        sizes = SizeModel(page_size=4096)
        assert sizes.records_per_page(100) == 40
        assert sizes.records_per_page(5000) == 1

    def test_records_per_page_rejects_zero(self):
        with pytest.raises(StorageError):
            SizeModel().records_per_page(0)

    def test_leaf_pages_small_records(self):
        sizes = SizeModel(page_size=4096)
        assert sizes.leaf_pages(400, 100) == pytest.approx(10.0)
        assert sizes.leaf_pages(1, 100) == 1.0
        assert sizes.leaf_pages(0, 100) == 0.0

    def test_leaf_pages_oversized_records(self):
        sizes = SizeModel(page_size=4096)
        assert sizes.leaf_pages(10, 8192) == pytest.approx(20.0)


class TestDescribePages:
    def test_mib_range(self):
        sizes = SizeModel(page_size=4096)
        assert sizes.describe_pages(1024) == "1024 pages (4.0 MiB)"

    def test_gib_range(self):
        sizes = SizeModel(page_size=4096)
        assert "GiB" in sizes.describe_pages(2**20)

    def test_small_counts_in_bytes_or_kib(self):
        sizes = SizeModel(page_size=4096)
        assert sizes.describe_pages(0) == "0 pages (0 B)"
        assert "KiB" in sizes.describe_pages(1)

    def test_negative_rejected(self):
        with pytest.raises(StorageError):
            SizeModel().describe_pages(-1)
