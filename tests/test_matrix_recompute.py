"""Tests for the fast Cost_Matrix evaluation layer (PR 2).

Covers the incremental :meth:`CostMatrix.recompute` (exact dirty-row
analysis, equality with a fresh compute under randomized perturbations),
the worker-process parity guarantee, the per-row
:class:`~repro.costmodel.subpath.SubpathContext`, and the tie-tolerant
organization ranking.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_matrix import CostMatrix, TIE_RELATIVE_TOLERANCE
from repro.costmodel.params import ClassStats, CostModelConfig, PathStatistics
from repro.costmodel.subpath import SubpathContext, subpath_processing_cost
from repro.errors import CostModelError, OptimizerError
from repro.organizations import CONFIGURABLE_ORGANIZATIONS, IndexOrganization
from repro.synth import LevelSpec, linear_path_schema
from repro.workload.load import LoadDistribution, LoadTriplet

MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX


def make_world(length=5, subclasses=(0, 1, 0, 2, 0), config=None):
    levels = [
        LevelSpec(f"L{i}", subclasses=subclasses[i % len(subclasses)])
        for i in range(length)
    ]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    objects = 40_000
    for position in range(1, length + 1):
        for member in path.hierarchy_at(position):
            per_class[member] = ClassStats(
                objects=objects, distinct=max(10, objects // 6), fanout=1.0
            )
        objects = max(50, objects // 5)
    stats = PathStatistics(path, per_class, config)
    load = LoadDistribution.uniform(path, query=0.3, insert=0.1, delete=0.05)
    return stats, load


def assert_matrices_identical(left: CostMatrix, right: CostMatrix) -> None:
    assert left.length == right.length
    assert left.organizations == right.organizations
    for start, end in left.rows():
        for organization in left.organizations:
            assert left.cost(start, end, organization) == right.cost(
                start, end, organization
            ), (start, end, organization)
        left_min = left.min_cost(start, end)
        right_min = right.min_cost(start, end)
        assert left_min.cost == right_min.cost
        assert left_min.organization is right_min.organization


class TestSubpathContext:
    def test_context_matches_contextless_evaluation(self):
        stats, load = make_world()
        for start, end in [(1, 5), (2, 4), (3, 3), (1, 1)]:
            context = SubpathContext.build(stats, load, start, end)
            for organization in CONFIGURABLE_ORGANIZATIONS:
                direct = subpath_processing_cost(
                    stats, load, start, end, organization
                )
                via_context = subpath_processing_cost(
                    stats, load, start, end, organization, context=context
                )
                assert via_context.total == direct.total
                assert via_context.query == direct.query
                assert via_context.cmd == direct.cmd

    def test_mismatched_context_rejected(self):
        stats, load = make_world()
        context = SubpathContext.build(stats, load, 1, 2)
        with pytest.raises(CostModelError, match="context"):
            subpath_processing_cost(stats, load, 2, 3, MX, context=context)
        with pytest.raises(CostModelError, match="context"):
            subpath_processing_cost(
                stats, load, 1, 2, MX, context=context, range_selectivity=0.5
            )

    def test_context_for_other_workload_rejected(self):
        """A stale context must not silently price the row under old
        frequencies (its derived load/probes belong to the old inputs)."""
        stats, load = make_world()
        other_load = load.scaled(5.0)
        context = SubpathContext.build(stats, load, 1, 2)
        with pytest.raises(CostModelError, match="workload"):
            subpath_processing_cost(stats, other_load, 1, 2, MX, context=context)
        other_stats, _ = make_world()
        with pytest.raises(CostModelError, match="statistics"):
            subpath_processing_cost(other_stats, load, 1, 2, MX, context=context)

    def test_cached_and_uncached_evaluations_identical(self):
        stats, load = make_world()
        cold = make_world(
            config=CostModelConfig(cache_evaluation=False)
        )[0]
        warm_matrix = CostMatrix.compute(stats, load)
        cold_matrix = CostMatrix.compute(cold, load)
        assert_matrices_identical(warm_matrix, cold_matrix)


class TestWorkersParity:
    def test_workers_output_identical_to_serial(self):
        stats, load = make_world()
        serial = CostMatrix.compute(stats, load, workers=0)
        parallel = CostMatrix.compute(make_world()[0], load, workers=2)
        assert_matrices_identical(serial, parallel)
        # Breakdowns survive the round-trip through worker processes.
        breakdown = parallel.breakdown(1, 2, NIX)
        assert breakdown is not None
        assert breakdown.total == serial.breakdown(1, 2, NIX).total

    def test_negative_workers_rejected(self):
        stats, load = make_world(length=2, subclasses=(0, 0))
        with pytest.raises(OptimizerError):
            CostMatrix.compute(stats, load, workers=-1)

    def test_workers_matrix_supports_recompute(self):
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load, workers=2)
        new_load = perturb_load(load, "L0", "insert", 2.0)
        assert_matrices_identical(
            matrix.recompute(load=new_load),
            CostMatrix.compute(stats, new_load),
        )


def perturb_load(load, class_name, component, factor):
    triplets = {}
    for name, triplet in load.items():
        if name == class_name:
            values = {
                "query": triplet.query,
                "insert": triplet.insert,
                "delete": triplet.delete,
            }
            values[component] = values[component] * factor + 0.01
            triplet = LoadTriplet(**values)
        triplets[name] = triplet
    return LoadDistribution(load.path, triplets)


def perturb_stats(stats, class_name, factor):
    per_class = {}
    for position in range(1, stats.length + 1):
        for member in stats.members(position):
            current = stats.stats_of(member)
            if member == class_name:
                current = ClassStats(
                    objects=current.objects * factor,
                    distinct=max(1.0, current.distinct * factor),
                    fanout=current.fanout,
                )
            per_class[member] = current
    return PathStatistics(stats.path, per_class, stats.config)


class TestRecompute:
    def test_literal_matrix_rejected(self):
        matrix = CostMatrix.from_values(
            1, {(1, 1): {MX: 1.0, MIX: 2.0, NIX: 3.0}}
        )
        with pytest.raises(OptimizerError, match="literal"):
            matrix.recompute()

    def test_different_path_rejected(self):
        stats, load = make_world()
        other_stats, other_load = make_world(length=3, subclasses=(0, 0, 0))
        matrix = CostMatrix.compute(stats, load)
        with pytest.raises(OptimizerError, match="same path"):
            matrix.recompute(stats=other_stats, load=other_load)

    def test_noop_recompute_is_identical(self):
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load)
        assert_matrices_identical(matrix, matrix.recompute())

    @pytest.mark.parametrize("component", ["query", "insert", "delete"])
    def test_single_class_load_change_matches_fresh_compute(self, component):
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load)
        for class_name in ("L0", "L2", "L4", "L3s1"):
            new_load = perturb_load(load, class_name, component, 3.0)
            assert_matrices_identical(
                matrix.recompute(load=new_load),
                CostMatrix.compute(stats, new_load),
            )

    def test_stats_change_matches_fresh_compute(self):
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load)
        new_stats = perturb_stats(stats, "L2", 1.5)
        assert_matrices_identical(
            matrix.recompute(stats=new_stats),
            CostMatrix.compute(new_stats, load),
        )

    def test_config_change_falls_back_to_full_recompute(self):
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load)
        new_config = dataclasses.replace(
            stats.config, pr_mx=2.0, clamp_cardinalities=False
        )
        new_stats = PathStatistics(
            stats.path,
            {
                member: stats.stats_of(member)
                for position in range(1, stats.length + 1)
                for member in stats.members(position)
            },
            new_config,
        )
        assert matrix._dirty_rows(new_stats, load) is None
        assert_matrices_identical(
            matrix.recompute(stats=new_stats),
            CostMatrix.compute(new_stats, load),
        )

    def test_report_partitions_the_dirty_union(self):
        """RecomputeReport's re-priced + patched sets are disjoint and
        together equal the _dirty_rows union; delete-only changes route
        the CMD rows through the patch set."""
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load)
        new_load = perturb_load(load, "L2", "delete", 2.0)
        union = matrix._dirty_rows(stats, new_load)
        report = matrix.recompute(load=new_load).recompute_report
        recomputed = set(report.recomputed_rows)
        patched = set(report.patched_rows)
        assert recomputed | patched == union
        assert not recomputed & patched
        assert patched == {(s, 2) for s in range(1, 3)}

    def test_dirty_rows_are_exact_for_load_changes(self):
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load)
        length = stats.length
        # L2 is the (root) class at position 3.
        position = 3

        insert_dirty = matrix._dirty_rows(
            stats, perturb_load(load, "L2", "insert", 2.0)
        )
        assert insert_dirty == {
            (s, e)
            for s in range(1, position + 1)
            for e in range(position, length + 1)
        }

        query_dirty = matrix._dirty_rows(
            stats, perturb_load(load, "L2", "query", 2.0)
        )
        assert query_dirty == {
            (s, e)
            for e in range(position, length + 1)
            for s in range(1, e + 1)
        }

        delete_dirty = matrix._dirty_rows(
            stats, perturb_load(load, "L2", "delete", 2.0)
        )
        covering = {
            (s, e)
            for s in range(1, position + 1)
            for e in range(position, length + 1)
        }
        cmd_rows = {(s, position - 1) for s in range(1, position)}
        assert delete_dirty == covering | cmd_rows

    def test_dirty_rows_for_stats_change_spare_later_subpaths(self):
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load)
        new_stats = perturb_stats(stats, "L2", 2.0)
        dirty = matrix._dirty_rows(new_stats, load)
        # Position 3 changed: every row starting at or before 3 is dirty
        # (coverage or probe chain); rows starting after 3 are clean.
        assert dirty == {
            (s, e)
            for s in range(1, 4)
            for e in range(s, stats.length + 1)
        }

    def test_range_selectivity_is_preserved(self):
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load, range_selectivity=0.2)
        new_load = perturb_load(load, "L1", "query", 2.0)
        assert_matrices_identical(
            matrix.recompute(load=new_load),
            CostMatrix.compute(stats, new_load, range_selectivity=0.2),
        )


@st.composite
def perturbation_worlds(draw):
    length = draw(st.integers(min_value=2, max_value=5))
    subclasses = tuple(
        draw(st.integers(min_value=0, max_value=2)) for _ in range(length)
    )
    stats, load = make_world(length=length, subclasses=subclasses)
    scope = [
        member
        for position in range(1, length + 1)
        for member in stats.members(position)
    ]
    kind = draw(st.sampled_from(["query", "insert", "delete", "stats", "both"]))
    target = draw(st.sampled_from(scope))
    factor = draw(st.floats(min_value=0.0, max_value=8.0))
    new_load = load
    new_stats = stats
    if kind in ("query", "insert", "delete"):
        new_load = perturb_load(load, target, kind, factor)
    elif kind == "stats":
        new_stats = perturb_stats(stats, target, 1.0 + factor)
    else:
        new_load = perturb_load(load, target, "delete", factor)
        new_stats = perturb_stats(
            stats, draw(st.sampled_from(scope)), 1.0 + factor
        )
    return stats, load, new_stats, new_load


class TestRecomputeProperty:
    @given(world=perturbation_worlds())
    @settings(max_examples=40, deadline=None)
    def test_recompute_equals_fresh_compute(self, world):
        stats, load, new_stats, new_load = world
        matrix = CostMatrix.compute(stats, load)
        incremental = matrix.recompute(stats=new_stats, load=new_load)
        fresh = CostMatrix.compute(new_stats, new_load)
        assert_matrices_identical(incremental, fresh)
        # The result is itself a computed matrix: chain another what-if.
        chained = incremental.recompute(load=load)
        assert_matrices_identical(chained, CostMatrix.compute(new_stats, load))


class TestRankedOrganizations:
    def test_ranking_is_ascending_and_complete(self):
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load)
        for start, end in matrix.rows():
            ranked = matrix.ranked_organizations(start, end)
            assert set(ranked) == set(matrix.organizations)
            costs = [matrix.cost(start, end, org) for org in ranked]
            for earlier, later in zip(costs, costs[1:]):
                assert earlier <= later or (later - earlier) <= (
                    TIE_RELATIVE_TOLERANCE * max(abs(earlier), abs(later))
                )
            assert ranked[0] is matrix.min_cost(start, end).organization

    def test_first_ranked_matches_min_cost_under_chained_near_ties(self):
        """Pairwise-adjacent ties must not pull a non-minimum to the top:
        col0 and col2 differ by more than the tolerance, so Min_Cost picks
        col2 and the ranking must lead with it (a transitive tie chain
        through col1 would have promoted col0/col1 instead)."""
        values = {
            (1, 1): {MX: 1.0 + 1.5e-9, MIX: 1.0 + 0.8e-9, NIX: 1.0}
        }
        matrix = CostMatrix.from_values(1, values)
        assert matrix.min_cost(1, 1).organization is NIX
        ranked = matrix.ranked_organizations(1, 1)
        assert ranked[0] is NIX
        assert matrix.ranked_organizations(1, 1, limit=1) == (NIX,)

    def test_near_ties_rank_by_column_order(self):
        values = {
            (1, 1): {MX: 10.0 + 5e-10, MIX: 10.0, NIX: 10.0 + 2e-10}
        }
        matrix = CostMatrix.from_values(1, values)
        assert matrix.ranked_organizations(1, 1) == (MX, MIX, NIX)
        assert matrix.ranked_organizations(1, 1, limit=2) == (MX, MIX)

    def test_clear_winner_ranks_first_regardless_of_column(self):
        values = {(1, 1): {MX: 30.0, MIX: 10.0, NIX: 20.0}}
        matrix = CostMatrix.from_values(1, values)
        assert matrix.ranked_organizations(1, 1) == (MIX, NIX, MX)

    def test_limit_bounds(self):
        values = {(1, 1): {MX: 3.0, MIX: 2.0, NIX: 1.0}}
        matrix = CostMatrix.from_values(1, values)
        assert matrix.ranked_organizations(1, 1, limit=10) == (NIX, MIX, MX)
        with pytest.raises(OptimizerError):
            matrix.ranked_organizations(1, 2)
