"""Tests for repro.storage.pager."""

import pytest

from repro.errors import StorageError
from repro.storage.pager import AccessStats, Pager


class TestAllocation:
    def test_allocate_returns_distinct_ids(self, pager):
        ids = pager.allocate_many(10)
        assert len(set(ids)) == 10

    def test_free_makes_page_inaccessible(self, pager):
        page = pager.allocate()
        pager.free(page)
        with pytest.raises(StorageError):
            pager.read(page)

    def test_double_free_rejected(self, pager):
        page = pager.allocate()
        pager.free(page)
        with pytest.raises(StorageError):
            pager.free(page)

    def test_negative_allocation_rejected(self, pager):
        with pytest.raises(StorageError):
            pager.allocate_many(-1)

    def test_live_pages(self, pager):
        pages = pager.allocate_many(5)
        pager.free(pages[0])
        assert pager.live_pages == 4

    def test_zero_page_size_rejected(self):
        with pytest.raises(StorageError):
            Pager(page_size=0)


class TestAccounting:
    def test_read_write_counters(self, pager):
        page = pager.allocate()
        pager.read(page)
        pager.read(page)
        pager.write(page)
        stats = pager.stats()
        assert (stats.reads, stats.writes, stats.total) == (2, 1, 3)

    def test_access_to_unallocated_page_rejected(self, pager):
        with pytest.raises(StorageError):
            pager.read(123)

    def test_reset_zeroes_counters_keeps_pages(self, pager):
        page = pager.allocate()
        pager.read(page)
        pager.reset()
        assert pager.stats().total == 0
        pager.read(page)  # still allocated

    def test_stats_arithmetic(self):
        a = AccessStats(reads=5, writes=2)
        b = AccessStats(reads=1, writes=1)
        assert (a - b) == AccessStats(reads=4, writes=1)
        assert (a + b) == AccessStats(reads=6, writes=3)


class TestMeasurement:
    def test_measure_captures_delta(self, pager):
        page = pager.allocate()
        pager.read(page)
        with pager.measure() as measurement:
            pager.read(page)
            pager.write(page)
        assert measurement.result == AccessStats(reads=1, writes=1)

    def test_buffered_measure_dedupes_reads(self, pager):
        pages = pager.allocate_many(2)
        with pager.measure(buffered=True) as measurement:
            pager.read(pages[0])
            pager.read(pages[0])
            pager.read(pages[1])
        assert measurement.result.reads == 2

    def test_buffered_measure_does_not_dedupe_writes(self, pager):
        page = pager.allocate()
        with pager.measure(buffered=True) as measurement:
            pager.write(page)
            pager.write(page)
        assert measurement.result.writes == 2

    def test_nested_measurements_unsupported_state_is_restored(self, pager):
        page = pager.allocate()
        with pager.measure(buffered=True):
            pager.read(page)
        # After the block, reads count normally again.
        pager.read(page)
        pager.read(page)
        assert pager.stats().reads == 3
