"""Parity pins for the columnar numpy kernel (PR 6).

The columnar kernel (``repro.kernel``) must be a *bit-identical* drop-in
for the legacy per-row evaluator — same entry values, same breakdowns,
same row minima, under every configuration knob the matrix exposes.
These tests pin that contract with Hypothesis-driven random worlds,
cover the dirty-row recompute path, the ``npa_array`` primitive against
its scalar oracle, kernel resolution/validation, and the pure-Python
fallback when numpy is absent (exercised in a subprocess with a stub
numpy on the path).
"""

import os
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_matrix import (
    KERNEL_AUTO_MIN_ROWS,
    KERNELS,
    CostMatrix,
)
from repro.costmodel.params import ClassStats, CostModelConfig, PathStatistics
from repro.errors import OptimizerError
from repro.synth import LevelSpec, linear_path_schema
from repro.workload.load import LoadDistribution, LoadTriplet

numpy = pytest.importorskip("numpy")

from repro.costmodel.yao import npa  # noqa: E402
from repro.kernel.yao_vec import npa_array  # noqa: E402


def make_world(
    length=5,
    subclasses=(0, 1, 0, 2, 0),
    objects=40_000,
    fanout=1.0,
    cache_evaluation=True,
    query=0.3,
    insert=0.1,
    delete=0.05,
):
    levels = [
        LevelSpec(f"L{i}", subclasses=subclasses[i % len(subclasses)])
        for i in range(length)
    ]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    remaining = objects
    for position in range(1, length + 1):
        for member in path.hierarchy_at(position):
            per_class[member] = ClassStats(
                objects=remaining,
                distinct=max(10, remaining // 6),
                fanout=fanout,
            )
        remaining = max(50, remaining // 5)
    config = CostModelConfig(cache_evaluation=cache_evaluation)
    stats = PathStatistics(path, per_class, config)
    load = LoadDistribution.uniform(
        path, query=query, insert=insert, delete=delete
    )
    return stats, load


def assert_matrices_identical(left: CostMatrix, right: CostMatrix) -> None:
    assert left.length == right.length
    assert left.organizations == right.organizations
    for start, end in left.rows():
        for organization in left.organizations:
            assert left.cost(start, end, organization) == right.cost(
                start, end, organization
            ), (start, end, organization)
            left_breakdown = left.breakdown(start, end, organization)
            right_breakdown = right.breakdown(start, end, organization)
            assert left_breakdown == right_breakdown, (
                start,
                end,
                organization,
            )
        left_min = left.min_cost(start, end)
        right_min = right.min_cost(start, end)
        assert left_min.cost == right_min.cost
        assert left_min.organization is right_min.organization


def perturb_load(load, class_name, component, factor):
    triplets = {}
    for name, triplet in load.items():
        if name == class_name:
            values = {
                "query": triplet.query,
                "insert": triplet.insert,
                "delete": triplet.delete,
            }
            values[component] = values[component] * factor + 0.01
            triplet = LoadTriplet(**values)
        triplets[name] = triplet
    return LoadDistribution(load.path, triplets)


def perturb_stats(stats, class_name, factor):
    per_class = {}
    for position in range(1, stats.length + 1):
        for member in stats.members(position):
            current = stats.stats_of(member)
            if member == class_name:
                current = ClassStats(
                    objects=current.objects * factor,
                    distinct=max(1.0, current.distinct * factor),
                    fanout=current.fanout,
                )
            per_class[member] = current
    return PathStatistics(stats.path, per_class, stats.config)


world_strategy = st.fixed_dictionaries(
    {
        "length": st.integers(min_value=2, max_value=10),
        "subclasses": st.tuples(
            st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)
        ),
        "objects": st.sampled_from([900, 25_000, 400_000]),
        "fanout": st.sampled_from([1.0, 1.5, 4.0]),
        "cache_evaluation": st.booleans(),
        "query": st.floats(min_value=0.0, max_value=2.0),
        "insert": st.floats(min_value=0.0, max_value=1.0),
        "delete": st.floats(min_value=0.0, max_value=1.0),
    }
)


class TestColumnarMatchesLegacy:
    @given(world=world_strategy)
    @settings(max_examples=25, deadline=None)
    def test_random_worlds_bit_identical(self, world):
        stats, load = make_world(**world)
        legacy = CostMatrix.compute(
            stats, load, include_noindex=True, kernel="legacy"
        )
        columnar = CostMatrix.compute(
            stats, load, include_noindex=True, kernel="columnar"
        )
        assert_matrices_identical(legacy, columnar)

    def test_length_40_bit_identical(self):
        """The benchmark's own shape: every org, all 820 rows."""
        stats, load = make_world(length=40, objects=400_000)
        legacy = CostMatrix.compute(
            stats, load, include_noindex=True, kernel="legacy"
        )
        columnar = CostMatrix.compute(
            stats, load, include_noindex=True, kernel="columnar"
        )
        assert_matrices_identical(legacy, columnar)

    @pytest.mark.parametrize("selectivity", [0.05, 0.5, 1.0])
    def test_range_selectivity_bit_identical(self, selectivity):
        stats, load = make_world(length=6, subclasses=(0, 2, 0, 1, 0, 0))
        legacy = CostMatrix.compute(
            stats,
            load,
            range_selectivity=selectivity,
            include_noindex=True,
            kernel="legacy",
        )
        columnar = CostMatrix.compute(
            stats,
            load,
            range_selectivity=selectivity,
            include_noindex=True,
            kernel="columnar",
        )
        assert_matrices_identical(legacy, columnar)

    def test_auto_matches_explicit_kernels(self):
        stats, load = make_world()
        auto = CostMatrix.compute(stats, load)
        legacy = CostMatrix.compute(stats, load, kernel="legacy")
        assert_matrices_identical(auto, legacy)

    def test_columnar_workers_match_serial(self):
        stats, load = make_world(length=8)
        serial = CostMatrix.compute(stats, load, workers=0, kernel="columnar")
        parallel = CostMatrix.compute(
            make_world(length=8)[0], load, workers=2, kernel="columnar"
        )
        assert_matrices_identical(serial, parallel)


class TestRecomputeParity:
    @given(
        batch=st.lists(
            st.tuples(
                st.sampled_from(["L0", "L1", "L2", "L3", "L4"]),
                st.sampled_from(["query", "insert", "delete", "stats"]),
                st.floats(min_value=0.25, max_value=4.0),
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_perturbation_batches_match_fresh_compute(self, batch):
        stats, load = make_world()
        for kernel in ("columnar", "legacy", "auto"):
            matrix = CostMatrix.compute(stats, load, kernel=kernel)
            new_stats, new_load = stats, load
            for class_name, component, factor in batch:
                if component == "stats":
                    new_stats = perturb_stats(new_stats, class_name, factor)
                else:
                    new_load = perturb_load(
                        new_load, class_name, component, factor
                    )
            recomputed = matrix.recompute(stats=new_stats, load=new_load)
            fresh = CostMatrix.compute(
                new_stats, new_load, kernel="legacy"
            )
            assert_matrices_identical(recomputed, fresh)

    def test_recompute_kernel_override(self):
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load, kernel="legacy")
        new_load = perturb_load(load, "L2", "query", 3.0)
        overridden = matrix.recompute(load=new_load, kernel="columnar")
        assert_matrices_identical(
            overridden, CostMatrix.compute(stats, new_load)
        )
        # The override sticks for the next recompute.
        assert overridden._kernel == "columnar"


class TestNpaArray:
    @given(
        t=st.floats(min_value=0.0, max_value=250_000.0),
        n=st.floats(min_value=1.0, max_value=1e7),
        ratio=st.floats(min_value=1.0, max_value=1e4),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar_npa(self, t, n, ratio):
        m = max(1.0, n / ratio)
        t = min(t, n)
        expected = npa(t, n, m)
        got = npa_array(
            numpy.array([t]), numpy.array([n]), numpy.array([m])
        )
        assert got[0] == expected, (t, n, m)

    def test_grouped_big_region_matches_scalar(self):
        """Many elements sharing (n, m) with floor(t) >= 64 — the grouped
        cumprod branch — must reproduce the scalar numpy-product path."""
        n, m = 500_000.0, 125.0
        t = numpy.linspace(64.0, 99_999.0, 301)
        expected = numpy.array([npa(float(v), n, m) for v in t])
        got = npa_array(t, numpy.full(t.shape, n), numpy.full(t.shape, m))
        assert (got == expected).all()

    def test_boundary_and_cardenas_regions_match_scalar(self):
        """floor(t) == 63 (scalar Python loop) and t > exact limit
        (Cardenas approximation) stay on the scalar fallback."""
        cases = [
            (63.0, 10_000.0, 40.0),
            (63.9, 10_000.0, 40.0),
            (150_000.0, 1e6, 300.0),
        ]
        t, n, m = (numpy.array(column) for column in zip(*cases))
        expected = numpy.array(
            [npa(*case) for case in cases]
        )
        assert (npa_array(t, n, m) == expected).all()


class TestKernelResolution:
    def test_unknown_kernel_rejected(self):
        stats, load = make_world(length=2, subclasses=(0, 0))
        with pytest.raises(OptimizerError, match="unknown kernel"):
            CostMatrix.compute(stats, load, kernel="simd")

    def test_kernel_names_are_closed(self):
        assert KERNELS == ("auto", "columnar", "legacy")

    def test_auto_resolution_thresholds(self):
        resolve = CostMatrix._resolve_kernel
        assert resolve("auto", KERNEL_AUTO_MIN_ROWS) == "columnar"
        assert resolve("auto", KERNEL_AUTO_MIN_ROWS - 1) == "legacy"
        assert resolve(None, KERNEL_AUTO_MIN_ROWS) == "columnar"
        assert resolve("legacy", 10_000) == "legacy"
        assert resolve("columnar", 1) == "columnar"

    def test_matrix_remembers_requested_kernel(self):
        stats, load = make_world(length=3, subclasses=(0, 0, 0))
        assert CostMatrix.compute(stats, load)._kernel == "auto"
        assert (
            CostMatrix.compute(stats, load, kernel="legacy")._kernel
            == "legacy"
        )


NO_NUMPY_PROBE = textwrap.dedent(
    """
    from repro import kernel
    assert kernel.is_available() is False

    from repro.core.cost_matrix import CostMatrix
    from repro.costmodel.params import ClassStats, PathStatistics
    from repro.errors import OptimizerError
    from repro.synth import LevelSpec, linear_path_schema
    from repro.workload.load import LoadDistribution

    levels = [LevelSpec(f"L{i}", subclasses=0) for i in range(8)]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    objects = 40_000
    for position in range(1, 9):
        for member in path.hierarchy_at(position):
            per_class[member] = ClassStats(
                objects=objects, distinct=max(10, objects // 6), fanout=1.0
            )
        objects = max(50, objects // 5)
    stats = PathStatistics(path, per_class)
    load = LoadDistribution.uniform(path, 0.3, 0.1, 0.05)

    # auto falls back to the legacy evaluator and still computes.
    matrix = CostMatrix.compute(stats, load, kernel="auto")
    assert matrix.min_cost(1, 8).cost > 0

    # An explicit columnar request fails loudly, not silently.
    try:
        CostMatrix.compute(stats, load, kernel="columnar")
    except OptimizerError as error:
        assert "numpy" in str(error)
    else:
        raise AssertionError("columnar kernel ran without numpy")
    print("OK")
    """
)


class TestNoNumpyFallback:
    def test_auto_falls_back_without_numpy(self, tmp_path):
        """Run a probe in a subprocess where ``import numpy`` fails."""
        stub = tmp_path / "numpy.py"
        stub.write_text(
            'raise ImportError("numpy disabled for fallback test")\n'
        )
        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([str(tmp_path), repo_src])
        completed = subprocess.run(
            [sys.executable, "-c", NO_NUMPY_PROBE],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "OK" in completed.stdout
