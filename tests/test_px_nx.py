"""Tests for the path index (PX) and nested index (NX) extensions."""

import pytest

from repro.core.configuration import IndexConfiguration
from repro.core.cost_matrix import CostMatrix
from repro.costmodel.nested_index import NXCostModel
from repro.costmodel.path_index import PXCostModel
from repro.costmodel.subpath import build_model
from repro.indexes.base import IndexContext
from repro.indexes.manager import ConfigurationIndexSet
from repro.indexes.nested_index import NestedIndex
from repro.indexes.path_index import PathIndex
from repro.model.examples import populate_vehicle_database
from repro.organizations import ALL_ORGANIZATIONS, IndexOrganization
from repro.storage.heap import ClassExtent
from repro.storage.pager import Pager
from repro.storage.sizes import SizeModel

PX = IndexOrganization.PX
NX = IndexOrganization.NX
NIX = IndexOrganization.NIX


def make_context(vehicle_db, pexa, start=1, end=4):
    sizes = SizeModel()
    return IndexContext(
        database=vehicle_db,
        path=pexa,
        start=start,
        end=end,
        pager=Pager(page_size=sizes.page_size),
        sizes=sizes,
    )


def make_extents(context):
    extents = {}
    for class_name in context.path.scope:
        extent = ClassExtent(
            context.pager, context.sizes, class_name, context.sizes.object_size
        )
        for instance in context.database.extent(class_name):
            extent.place(instance.oid)
        extents[class_name] = extent
    return extents


class TestPXAnalytic:
    def test_factory_builds_px(self, fig7_stats):
        assert isinstance(build_model(fig7_stats, 1, 4, PX), PXCostModel)

    def test_query_single_lookup(self, fig7_stats):
        model = PXCostModel(fig7_stats, 1, 4)
        cost = model.query_cost(1, "Person")
        assert cost <= model.shape.height + model.shape.record_pages

    def test_query_same_for_all_classes(self, fig7_stats):
        model = PXCostModel(fig7_stats, 1, 4)
        assert model.query_cost(1, "Person") == model.query_cost(4, "Division")

    def test_maintenance_no_auxiliary_walk(self, fig7_stats):
        """PX deletion of a deep-class object is cheaper than NIX's
        auxiliary-index walk for the same statistics."""
        px = PXCostModel(fig7_stats, 1, 4)
        nix = build_model(fig7_stats, 1, 4, NIX)
        assert px.delete_cost(3, "Company") < nix.delete_cost(3, "Company")

    def test_records_wider_than_nested_index(self, fig7_stats):
        """PX tuples (span × oid each) are wider than NX's bare root lists."""
        px = PXCostModel(fig7_stats, 1, 4)
        nx = NXCostModel(fig7_stats, 1, 4)
        assert px.shape.record_length > nx.shape.record_length

    def test_cmd_positive(self, fig7_stats):
        assert PXCostModel(fig7_stats, 1, 2).cmd_cost() > 0

    def test_storage_positive(self, fig7_stats):
        assert PXCostModel(fig7_stats, 1, 4).storage_pages() > 0


class TestNXAnalytic:
    def test_factory_builds_nx(self, fig7_stats):
        assert isinstance(build_model(fig7_stats, 1, 4, NX), NXCostModel)

    def test_root_query_cheapest_of_all(self, fig7_stats):
        """For starting-class queries the NX is at least as cheap as every
        other organization (narrowest records, one lookup)."""
        nx = NXCostModel(fig7_stats, 1, 4)
        for organization in (IndexOrganization.MX, IndexOrganization.MIX, NIX, PX):
            other = build_model(fig7_stats, 1, 4, organization)
            assert nx.query_cost(1, "Person") <= other.query_cost(1, "Person") + 1e-9

    def test_intermediate_query_needs_scans(self, fig7_stats):
        nx = NXCostModel(fig7_stats, 1, 4)
        assert nx.query_cost(2, "Vehicle") > 20 * nx.query_cost(1, "Person")

    def test_intermediate_delete_pays_revalidation(self, fig7_stats):
        nx = NXCostModel(fig7_stats, 1, 4)
        root_only = NXCostModel(fig7_stats, 1, 4).delete_cost(1, "Person")
        assert nx.delete_cost(3, "Company") > 0
        # Revalidation makes the intermediate delete cost exceed the pure
        # record maintenance of the same class.
        from repro.costmodel.primitives import cmt

        base = cmt(nx.shape, fig7_stats.ninbar(3, "Company", 4))
        assert nx.delete_cost(3, "Company") > base

    def test_single_class_subpath_degenerates_to_six(self, fig7_stats):
        from repro.costmodel.mx import MXCostModel

        nx = NXCostModel(fig7_stats, 1, 1)
        mx = MXCostModel(fig7_stats, 1, 1)
        assert nx.query_cost(1, "Person") == pytest.approx(
            mx.query_cost(1, "Person"), rel=0.1
        )


class TestPXOperational:
    def test_lookup_all_classes(self, vehicle_db, pexa):
        px = PathIndex(make_context(vehicle_db, pexa))
        assert len(px.lookup("Fiat-movings", "Person")) == 3
        assert len(px.lookup("Fiat-movings", "Company")) == 1
        assert len(px.lookup("Fiat-movings", "Bus")) == 1

    def test_maximal_instantiations_only(self, vehicle_db, pexa):
        px = PathIndex(make_context(vehicle_db, pexa))
        record = px._tree.get("Fiat-movings")
        heads = {inst[0].class_name for inst in record}
        # Bus[j] (Daf) is not here; all Fiat chains start at Persons.
        assert heads == {"Person"}

    def test_unreferenced_middle_object_heads_partial_chain(
        self, vehicle_db, pexa
    ):
        px = PathIndex(make_context(vehicle_db, pexa))
        record = px._tree.get("Daf-cabs")
        heads = {inst[0].class_name for inst in record}
        # Bus[j] is manufactured by Daf but owned by nobody: it heads a
        # partial instantiation.
        assert "Bus" in heads

    def test_insert_demotes_child_head(self, vehicle_db, pexa):
        px = PathIndex(make_context(vehicle_db, pexa))
        bus_j = next(
            b
            for b in vehicle_db.extent("Bus")
            if not vehicle_db.parents_of(b.oid, "owns")
        )
        oid = vehicle_db.create("Person", name="New", age=20, owns=[bus_j.oid])
        px.on_insert(vehicle_db.get(oid))
        px.check_consistency()
        record = px._tree.get("Daf-cabs")
        heads = {inst[0] for inst in record}
        assert bus_j.oid not in heads
        assert oid in heads

    def test_delete_reinserts_orphan_suffix(self, vehicle_db, pexa):
        px = PathIndex(make_context(vehicle_db, pexa))
        # Henk owns Truck[i] (Fiat). Deleting Henk orphans the truck chain.
        henk = next(
            p for p in vehicle_db.extent("Person") if p.values["name"] == "Henk"
        )
        px.on_delete(henk)
        vehicle_db.delete(henk.oid)
        px.check_consistency()
        record = px._tree.get("Fiat-movings")
        heads = {inst[0].class_name for inst in record}
        assert "Truck" in heads  # the orphaned suffix survives

    def test_delete_middle_object(self, vehicle_db, pexa):
        px = PathIndex(make_context(vehicle_db, pexa))
        fiat = next(
            c for c in vehicle_db.extent("Company") if c.values["name"] == "Fiat"
        )
        px.on_delete(fiat)
        vehicle_db.delete(fiat.oid)
        px.check_consistency()
        assert px.lookup("Fiat-movings", "Person") == set()
        assert len(px.lookup("Fiat-movings", "Division")) == 1

    def test_remove_key(self, vehicle_db, pexa):
        px = PathIndex(make_context(vehicle_db, pexa, 1, 2))
        fiat = next(
            c.oid for c in vehicle_db.extent("Company")
            if c.values["name"] == "Fiat"
        )
        assert px.remove_key(fiat) is True
        assert px.remove_key(fiat) is False


class TestNXOperational:
    def test_root_lookup(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa)
        nx = NestedIndex(context, make_extents(context))
        persons = nx.lookup("Fiat-movings", "Person")
        names = {vehicle_db.get(o).values["name"] for o in persons}
        assert names == {"Piet", "Sonia", "Henk"}

    def test_intermediate_lookup_falls_back_to_scan(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa)
        nx = NestedIndex(context, make_extents(context))
        before = context.pager.stats()
        companies = nx.lookup("Fiat-movings", "Company")
        delta = context.pager.stats() - before
        assert len(companies) == 1
        assert delta.reads >= 2  # extent scans charged

    def test_path_counts_multiplicity(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa)
        nx = NestedIndex(context, make_extents(context))
        record = nx._tree.get("Fiat-movings")
        piet = next(
            p for p in vehicle_db.extent("Person") if p.values["name"] == "Piet"
        )
        # Piet reaches Fiat-movings through exactly one path (via Bus[i]).
        assert record[piet.oid] == 1

    def test_delete_middle_decrements_roots(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa)
        nx = NestedIndex(context, make_extents(context))
        fiat = next(
            c for c in vehicle_db.extent("Company") if c.values["name"] == "Fiat"
        )
        nx.on_delete(fiat)
        vehicle_db.delete(fiat.oid)
        nx.check_consistency()
        assert nx.lookup("Fiat-movings", "Person") == set()

    def test_delete_root(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa)
        nx = NestedIndex(context, make_extents(context))
        piet = next(
            p for p in vehicle_db.extent("Person") if p.values["name"] == "Piet"
        )
        nx.on_delete(piet)
        vehicle_db.delete(piet.oid)
        nx.check_consistency()
        assert piet.oid not in nx.lookup("Fiat-movings", "Person")

    def test_reverse_walk_charges_heap_fetches(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa)
        nx = NestedIndex(context, make_extents(context))
        fiat = next(
            c for c in vehicle_db.extent("Company") if c.values["name"] == "Fiat"
        )
        before = context.pager.stats()
        nx.on_delete(fiat)
        delta = context.pager.stats() - before
        vehicle_db.delete(fiat.oid)
        assert delta.reads > 0  # parent fetches during the reverse walk


class TestExtendedMatrix:
    def test_all_organizations_matrix(self, fig7_stats, fig7_load):
        matrix = CostMatrix.compute(
            fig7_stats, fig7_load, organizations=ALL_ORGANIZATIONS
        )
        assert set(matrix.organizations) == set(ALL_ORGANIZATIONS)
        # NX must never win a row whose subpath spans multiple classes with
        # intermediate query load (Figure 7 has α > 0 on Vehicle).
        assert matrix.min_cost(1, 4).organization is not NX

    def test_manager_supports_px_nx(self, vehicle_schema, pexa):
        for organization in (PX, NX):
            database = populate_vehicle_database(vehicle_schema)
            indexes = ConfigurationIndexSet(
                database, pexa, IndexConfiguration.whole_path(4, organization)
            )
            indexes.check_consistency()
            result = indexes.query("Fiat-movings", "Person")
            assert len(result) == 3
