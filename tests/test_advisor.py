"""Tests for the advisor pipeline, including the Example 5.1 shape."""

import pytest

from repro.core.advisor import advise
from repro.organizations import EXTENDED_ORGANIZATIONS, IndexOrganization
from repro.paper import EX51_EXPECTED

MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX


@pytest.fixture(scope="module")
def ex51_report():
    from repro.paper import figure7_load, figure7_statistics

    return advise(figure7_statistics(), figure7_load(), keep_trace=True)


class TestExample51Shape:
    """The paper's headline experiment, shape-checked.

    Absolute page-access numbers depend on physical constants the paper
    does not state; the asserted facts are the ones the paper's
    conclusions rest on.
    """

    def test_optimal_partition_matches_paper(self, ex51_report):
        # {(Per.owns.man, NIX), (Comp.divs.name, MX)}
        assert ex51_report.optimal.configuration.partition() == EX51_EXPECTED[
            "optimal_partition"
        ]

    def test_optimal_organizations_match_paper(self, ex51_report):
        organizations = tuple(
            assignment.organization
            for assignment in ex51_report.optimal.configuration.assignments
        )
        assert organizations == EX51_EXPECTED["optimal_organizations"]

    def test_nix_wins_prefix_subpath_row(self, ex51_report):
        assert ex51_report.matrix.min_cost(1, 2).organization is NIX

    def test_mx_wins_tail_subpath_row(self, ex51_report):
        assert ex51_report.matrix.min_cost(3, 4).organization is MX

    def test_splitting_beats_whole_path_nix_by_large_factor(self, ex51_report):
        whole_nix = ex51_report.single_index_costs[NIX]
        factor = whole_nix / ex51_report.optimal.cost
        # Paper: 2.7x. Same direction, comparable magnitude.
        assert factor > 2.0

    def test_splitting_beats_best_single_index(self, ex51_report):
        assert ex51_report.improvement_factor > 1.0

    def test_branch_and_bound_prunes(self, ex51_report):
        assert ex51_report.optimal.evaluated < EX51_EXPECTED["total_configurations"]
        assert ex51_report.optimal.pruned > 0

    def test_exhaustive_agrees(self, ex51_report):
        assert ex51_report.exhaustive is not None
        assert ex51_report.exhaustive.cost == pytest.approx(ex51_report.optimal.cost)
        assert ex51_report.exhaustive.evaluated == 8

    def test_dynprog_agrees(self, ex51_report):
        assert ex51_report.dynprog is not None
        assert ex51_report.dynprog.cost == pytest.approx(ex51_report.optimal.cost)

    def test_render_includes_matrix_and_result(self, ex51_report):
        text = ex51_report.render()
        assert "Person.owns.man" in text
        assert "optimal:" in text
        assert "improvement" in text


class TestAdvisorOptions:
    def test_no_baselines(self, fig7_stats, fig7_load):
        report = advise(fig7_stats, fig7_load, run_baselines=False)
        assert report.exhaustive is None
        assert report.dynprog is None
        assert report.single_index_costs == {}

    def test_no_baselines_single_index_accessors_raise_clearly(
        self, fig7_stats, fig7_load
    ):
        from repro.errors import OptimizerError

        report = advise(fig7_stats, fig7_load, run_baselines=False)
        with pytest.raises(OptimizerError, match="single-index baselines"):
            report.best_single_index
        with pytest.raises(OptimizerError, match="single-index baselines"):
            report.improvement_factor
        # The report still renders without the baseline section.
        assert "optimal:" in report.render()

    def test_noindex_extension(self, fig7_stats, fig7_load):
        report = advise(fig7_stats, fig7_load, include_noindex=True)
        assert IndexOrganization.NONE in report.matrix.organizations
        # The optimum can only improve with more options.
        base = advise(fig7_stats, fig7_load)
        assert report.optimal.cost <= base.optimal.cost + 1e-9

    def test_restricted_organizations(self, fig7_stats, fig7_load):
        report = advise(fig7_stats, fig7_load, organizations=(MX,))
        assert report.matrix.organizations == (MX,)
        for assignment in report.optimal.configuration.assignments:
            assert assignment.organization is MX

    def test_update_heavy_workload_prefers_noindex_somewhere(
        self, fig7_stats, fig7_load
    ):
        """With overwhelming update load, unindexed subpaths win."""
        from repro.workload.load import LoadDistribution, LoadTriplet

        path = fig7_stats.path
        heavy = LoadDistribution(
            path,
            {
                name: LoadTriplet(query=0.001, insert=5.0, delete=5.0)
                for name in path.scope
            },
        )
        report = advise(
            fig7_stats, heavy, organizations=EXTENDED_ORGANIZATIONS
        )
        used = {
            assignment.organization
            for assignment in report.optimal.configuration.assignments
        }
        assert IndexOrganization.NONE in used
