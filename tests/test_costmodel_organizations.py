"""Tests for the per-organization analytic cost models (MX, MIX, NIX, NONE)."""

import pytest

from repro.costmodel.mix import MIXCostModel
from repro.costmodel.mx import MXCostModel
from repro.costmodel.nix import NIXCostModel
from repro.costmodel.noindex import NoIndexCostModel
from repro.costmodel.subpath import build_model
from repro.errors import CostModelError
from repro.organizations import IndexOrganization


class TestFactory:
    def test_builds_each_organization(self, fig7_stats):
        assert isinstance(
            build_model(fig7_stats, 1, 4, IndexOrganization.MX), MXCostModel
        )
        assert isinstance(
            build_model(fig7_stats, 1, 4, IndexOrganization.MIX), MIXCostModel
        )
        assert isinstance(
            build_model(fig7_stats, 1, 4, IndexOrganization.NIX), NIXCostModel
        )
        assert isinstance(
            build_model(fig7_stats, 1, 4, IndexOrganization.NONE), NoIndexCostModel
        )

    def test_six_maps_to_mx(self, fig7_stats):
        model = build_model(fig7_stats, 4, 4, IndexOrganization.SIX)
        assert model.organization is IndexOrganization.MX

    def test_iix_maps_to_mix(self, fig7_stats):
        model = build_model(fig7_stats, 2, 2, IndexOrganization.IIX)
        assert model.organization is IndexOrganization.MIX

    def test_invalid_bounds_rejected(self, fig7_stats):
        with pytest.raises(CostModelError):
            build_model(fig7_stats, 0, 2, IndexOrganization.MX)
        with pytest.raises(CostModelError):
            build_model(fig7_stats, 3, 2, IndexOrganization.MX)
        with pytest.raises(CostModelError):
            build_model(fig7_stats, 1, 9, IndexOrganization.MX)


class TestMXModel:
    def test_query_cost_positive_and_grows_upstream(self, fig7_stats):
        model = MXCostModel(fig7_stats, 1, 4)
        division = model.query_cost(4, "Division")
        person = model.query_cost(1, "Person")
        assert 0 < division < person

    def test_query_against_covered_classes_only(self, fig7_stats):
        model = MXCostModel(fig7_stats, 3, 4)
        with pytest.raises(CostModelError):
            model.query_cost(1, "Person")
        with pytest.raises(CostModelError):
            model.query_cost(3, "Vehicle")

    def test_probe_count_increases_cost(self, fig7_stats):
        model = MXCostModel(fig7_stats, 1, 2)
        assert model.query_cost(1, "Person", 10.0) > model.query_cost(
            1, "Person", 1.0
        )

    def test_hierarchy_query_at_least_single_class(self, fig7_stats):
        model = MXCostModel(fig7_stats, 1, 4)
        assert model.hierarchy_query_cost(2) >= model.query_cost(2, "Vehicle")

    def test_delete_includes_previous_level_within_subpath(self, fig7_stats):
        whole = MXCostModel(fig7_stats, 1, 4)
        # Vehicle at position 2 > start: deletion touches Person's index too.
        tail = MXCostModel(fig7_stats, 2, 4)
        # Vehicle at position 2 == start of the tail subpath: no previous.
        assert whole.delete_cost(2, "Vehicle") > tail.delete_cost(2, "Vehicle")

    def test_insert_cheaper_than_delete_at_non_start(self, fig7_stats):
        model = MXCostModel(fig7_stats, 1, 4)
        assert model.insert_cost(3, "Company") < model.delete_cost(3, "Company")

    def test_cmd_sums_ending_hierarchy(self, fig7_stats):
        # Subpath ending at level 2 (three member classes) has a larger CMD
        # than one ending at level 3 (single class), all heights equal-ish.
        ending_at_1 = MXCostModel(fig7_stats, 1, 1)
        assert ending_at_1.cmd_cost() > 0

    def test_storage_positive(self, fig7_stats):
        assert MXCostModel(fig7_stats, 1, 4).storage_pages() > 0

    def test_emitted_oids_matches_stats_chain(self, fig7_stats):
        model = MXCostModel(fig7_stats, 3, 4)
        assert model.emitted_oids() == pytest.approx(
            fig7_stats.noid_hierarchy(3, 4, 1.0)
        )


class TestMIXModel:
    def test_one_index_per_level(self, fig7_stats):
        model = MIXCostModel(fig7_stats, 1, 4)
        for position in range(1, 5):
            assert model.shape(position).record_count > 0

    def test_query_cheaper_than_mx_with_inheritance(self, fig7_stats):
        # At the Vehicle level MX probes three separate indexes, MIX one.
        mx = MXCostModel(fig7_stats, 2, 2)
        mix = MIXCostModel(fig7_stats, 2, 2)
        assert mix.query_cost(2, "Vehicle", 4.0) <= mx.query_cost(
            2, "Vehicle", 4.0
        ) + 1e-9

    def test_hierarchy_query_equals_single_class(self, fig7_stats):
        model = MIXCostModel(fig7_stats, 1, 4)
        assert model.hierarchy_query_cost(2) == model.query_cost(2, "Vehicle")

    def test_delete_adds_single_previous_record(self, fig7_stats):
        whole = MIXCostModel(fig7_stats, 1, 4)
        tail = MIXCostModel(fig7_stats, 2, 4)
        assert whole.delete_cost(2, "Bus") > tail.delete_cost(2, "Bus")

    def test_cmd_positive(self, fig7_stats):
        assert MIXCostModel(fig7_stats, 1, 2).cmd_cost() > 0


class TestNIXModel:
    def test_query_is_single_record_lookup(self, fig7_stats):
        model = NIXCostModel(fig7_stats, 1, 4)
        # One probe costs at most height + record pages.
        cost = model.query_cost(1, "Person")
        assert cost <= model.primary_shape.height + model.primary_shape.record_pages

    def test_query_independent_of_chain_length(self, fig7_stats):
        # Unlike MX/MIX, the NIX query does not accumulate per-level lookups.
        long_model = NIXCostModel(fig7_stats, 1, 4)
        assert long_model.query_cost(1, "Person") < MXCostModel(
            fig7_stats, 1, 4
        ).query_cost(1, "Person")

    def test_auxiliary_absent_for_single_class_subpath(self, fig7_stats):
        model = NIXCostModel(fig7_stats, 4, 4)
        assert model.auxiliary_shape.empty

    def test_auxiliary_present_for_longer_subpaths(self, fig7_stats):
        model = NIXCostModel(fig7_stats, 1, 2)
        assert model.auxiliary_shape.record_count == pytest.approx(20_000)

    def test_single_class_maintenance_skips_auxiliary(self, fig7_stats):
        model = NIXCostModel(fig7_stats, 4, 4)
        # Division: primary maintenance only.
        assert model.insert_cost(4, "Division") > 0
        assert model.delete_cost(4, "Division") > 0

    def test_start_class_has_no_own_3tuple(self, fig7_stats):
        long_model = NIXCostModel(fig7_stats, 1, 4)
        # Person deletion: no own 3-tuple, but children 3-tuples + walk.
        assert long_model.delete_cost(1, "Person") > 0

    def test_delete_usually_heavier_than_insert(self, fig7_stats):
        model = NIXCostModel(fig7_stats, 1, 4)
        assert model.delete_cost(3, "Company") >= model.insert_cost(3, "Company")

    def test_cmd_includes_delpoint(self, fig7_stats):
        with_aux = NIXCostModel(fig7_stats, 1, 2)
        no_aux = NIXCostModel(fig7_stats, 2, 2)
        from repro.costmodel.primitives import cml

        base_with = cml(
            with_aux.primary_shape, float(with_aux.primary_shape.record_pages)
        )
        assert with_aux.cmd_cost() > base_with  # delpoint added
        base_without = cml(
            no_aux.primary_shape, float(no_aux.primary_shape.record_pages)
        )
        assert no_aux.cmd_cost() == pytest.approx(base_without)

    def test_storage_counts_primary_and_auxiliary(self, fig7_stats):
        assert NIXCostModel(fig7_stats, 1, 4).storage_pages() > NIXCostModel(
            fig7_stats, 4, 4
        ).storage_pages()


class TestNoIndexModel:
    def test_query_scans_extents(self, fig7_stats):
        model = NoIndexCostModel(fig7_stats, 1, 4)
        assert model.query_cost(1, "Person") > 0

    def test_query_cost_independent_of_probes(self, fig7_stats):
        model = NoIndexCostModel(fig7_stats, 1, 4)
        assert model.query_cost(1, "Person", 100.0) == model.query_cost(
            1, "Person", 1.0
        )

    def test_maintenance_free(self, fig7_stats):
        model = NoIndexCostModel(fig7_stats, 1, 4)
        assert model.insert_cost(2, "Bus") == 0.0
        assert model.delete_cost(2, "Bus") == 0.0
        assert model.cmd_cost() == 0.0
        assert model.storage_pages() == 0.0

    def test_scan_grows_with_subpath_length(self, fig7_stats):
        short = NoIndexCostModel(fig7_stats, 3, 3)
        long_ = NoIndexCostModel(fig7_stats, 3, 4)
        assert long_.query_cost(3, "Company") > short.query_cost(3, "Company")

    def test_hierarchy_query_adds_sibling_extents(self, fig7_stats):
        model = NoIndexCostModel(fig7_stats, 2, 4)
        assert model.hierarchy_query_cost(2) > model.query_cost(2, "Vehicle")


class TestCrossOrganizationShape:
    """The qualitative relationships the paper's discussion relies on."""

    def test_nix_queries_beat_chains_on_long_paths(self, fig7_stats):
        for start, end in [(1, 3), (1, 4), (2, 4)]:
            nix = NIXCostModel(fig7_stats, start, end)
            mx = MXCostModel(fig7_stats, start, end)
            root = fig7_stats.members(start)[0]
            assert nix.query_cost(start, root) < mx.query_cost(start, root)

    def test_nix_maintenance_loses_on_long_paths(self, fig7_stats):
        nix = NIXCostModel(fig7_stats, 1, 4)
        mix = MIXCostModel(fig7_stats, 1, 4)
        assert nix.delete_cost(1, "Person") > mix.delete_cost(1, "Person")

    def test_all_costs_finite(self, fig7_stats):
        for organization in (
            IndexOrganization.MX,
            IndexOrganization.MIX,
            IndexOrganization.NIX,
            IndexOrganization.NONE,
        ):
            for start in range(1, 5):
                for end in range(start, 5):
                    model = build_model(fig7_stats, start, end, organization)
                    for position in range(start, end + 1):
                        for member in fig7_stats.members(position):
                            for value in (
                                model.query_cost(position, member),
                                model.insert_cost(position, member),
                                model.delete_cost(position, member),
                            ):
                                assert value >= 0.0
                                assert value < float("inf")
                    assert model.cmd_cost() >= 0.0
