"""Tests for the ``repro.search`` subsystem.

Covers the registry, the unified result type, the shared partition
enumeration, and — the load-bearing property — parity: every exact
strategy returns the same optimal cost on randomized synthetic
statistics/workloads, and the greedy beam stays within a bounded factor
of the DP optimum.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_matrix import CostMatrix
from repro.costmodel.params import ClassStats, PathStatistics
from repro.errors import OptimizerError
from repro.organizations import IndexOrganization
from repro.search import (
    SearchResult,
    SearchStrategy,
    available_strategies,
    blocks_from_mask,
    configuration_count,
    enumerate_first_pieces,
    enumerate_partitions,
    get_strategy,
    partition_count,
    top_configurations,
    validate_partition,
)
from repro.synth import LevelSpec, linear_path_schema
from repro.workload.load import LoadDistribution, LoadTriplet

MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX

EXACT_STRATEGIES = (
    "branch_and_bound",
    "exhaustive",
    "dynamic_program",
    "incremental_dynamic_program",
)


def synth_inputs(length: int, seed: int) -> tuple[PathStatistics, LoadDistribution]:
    """Randomized synthetic statistics and workload for one linear path."""
    rng = random.Random(seed)
    levels = [
        LevelSpec(f"L{i}", multi_valued=rng.random() < 0.5)
        for i in range(length)
    ]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    objects = rng.randint(1_000, 50_000)
    for position in range(1, length + 1):
        name = path.class_at(position)
        per_class[name] = ClassStats(
            objects=objects,
            distinct=max(5, objects // rng.randint(2, 20)),
            fanout=rng.choice([1, 1, 2, 3]),
        )
        objects = max(20, objects // rng.randint(2, 8))
    stats = PathStatistics(path, per_class)
    load = LoadDistribution(
        path,
        {
            name: LoadTriplet(
                query=rng.uniform(0, 0.5),
                insert=rng.uniform(0, 0.2),
                delete=rng.uniform(0, 0.2),
            )
            for name in path.scope
        },
    )
    return stats, load


def synth_matrix(length: int, seed: int) -> CostMatrix:
    """A cost matrix from randomized synthetic statistics and workload."""
    return CostMatrix.compute(*synth_inputs(length, seed))


class TestRegistry:
    def test_all_strategies_registered(self):
        names = available_strategies()
        for expected in (*EXACT_STRATEGIES, "greedy_beam"):
            assert expected in names

    def test_get_strategy_unknown_name(self):
        with pytest.raises(OptimizerError, match="unknown search strategy"):
            get_strategy("simulated_annealing")

    def test_strategies_satisfy_protocol(self):
        for name in available_strategies():
            strategy = get_strategy(name)
            assert isinstance(strategy, SearchStrategy)
            assert strategy.name == name
            assert isinstance(strategy.exact, bool)

    def test_exactness_flags(self):
        for name in EXACT_STRATEGIES:
            assert get_strategy(name).exact
        assert not get_strategy("greedy_beam").exact

    def test_strategy_options_forwarded(self):
        assert get_strategy("greedy_beam", width=3).width == 3
        with pytest.raises(OptimizerError):
            get_strategy("greedy_beam", width=0)

    def test_unknown_strategy_option_named_clearly(self):
        with pytest.raises(OptimizerError, match="greedy_beam"):
            get_strategy("greedy_beam", widht=3)  # typo'd option
        with pytest.raises(OptimizerError, match="branch_and_bound"):
            get_strategy("branch_and_bound", width=3)  # takes no options

    def test_results_carry_strategy_name(self, fig6):
        for name in available_strategies():
            result = get_strategy(name).search(fig6)
            assert isinstance(result, SearchResult)
            assert result.strategy == name


class TestFigure6AllStrategies:
    def test_every_exact_strategy_finds_the_paper_optimum(self, fig6):
        for name in EXACT_STRATEGIES:
            result = get_strategy(name).search(fig6)
            assert result.cost == 8.0
            assert result.configuration.partition() == ((1, 1), (2, 4))

    def test_dp_reports_row_lookups_not_configurations(self, fig6):
        result = get_strategy("dynamic_program").search(fig6)
        assert result.evaluated == 0
        assert result.extras["rows_inspected"] == 10
        assert "10 row lookups" in result.render()
        assert "configurations evaluated" not in result.render()

    def test_beam_with_generous_width_matches_on_short_path(self, fig6):
        result = get_strategy("greedy_beam", width=16).search(fig6)
        assert result.cost == 8.0


class TestStrategyParity:
    @given(
        length=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_exact_strategies_agree_on_synth_workloads(self, length, seed):
        matrix = synth_matrix(length, seed)
        costs = {
            name: get_strategy(name).search(matrix).cost
            for name in EXACT_STRATEGIES
        }
        reference = costs["exhaustive"]
        for name, cost in costs.items():
            assert cost == pytest.approx(reference), name

    @given(
        length=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
        width=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_beam_within_bounded_factor_of_dp(self, length, seed, width):
        matrix = synth_matrix(length, seed)
        exact = get_strategy("dynamic_program").search(matrix)
        approx = get_strategy("greedy_beam", width=width).search(matrix)
        assert approx.cost >= exact.cost - 1e-9
        assert approx.cost <= 1.5 * exact.cost
        validate_partition(length, approx.configuration.partition())

    @given(
        length=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_full_width_beam_exact_even_with_negative_costs(self, length, seed):
        """The remainder bound must stay admissible for literal matrices
        with negative entries: at width >= length the beam is exact."""
        rng = random.Random(seed)
        values = {
            (start, end): {
                MX: rng.uniform(-10, 10),
                MIX: rng.uniform(-10, 10),
                NIX: rng.uniform(-10, 10),
            }
            for start in range(1, length + 1)
            for end in range(start, length + 1)
        }
        matrix = CostMatrix.from_values(length, values)
        exact = get_strategy("dynamic_program").search(matrix)
        beam = get_strategy("greedy_beam", width=length).search(matrix)
        assert beam.cost == pytest.approx(exact.cost)
        # Branch and bound must stay exact too: its prune carries the
        # same negative-tail lower bound.
        bnb = get_strategy("branch_and_bound").search(matrix)
        assert bnb.cost == pytest.approx(exact.cost)

    @given(
        length=st.integers(min_value=1, max_value=7),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_results_are_valid_partitions(self, length, seed):
        values = {}
        rng = random.Random(seed)
        for start in range(1, length + 1):
            for end in range(start, length + 1):
                values[(start, end)] = {
                    MX: rng.uniform(1, 20),
                    MIX: rng.uniform(1, 20),
                    NIX: rng.uniform(1, 20),
                }
        matrix = CostMatrix.from_values(length, values)
        for name in available_strategies():
            result = get_strategy(name).search(matrix)
            validate_partition(length, result.configuration.partition())


class TestLongPaths:
    def test_beam_handles_length_30_quickly(self):
        import time

        matrix = synth_matrix(30, seed=5)
        started = time.perf_counter()
        result = get_strategy("greedy_beam").search(matrix)
        elapsed = time.perf_counter() - started
        assert elapsed < 1.0
        exact = get_strategy("dynamic_program").search(matrix)
        assert result.cost <= 1.5 * exact.cost

    def test_beam_widths_all_track_the_optimum(self):
        # Beam search is not guaranteed monotone in width (the frontier
        # is ranked by a lower bound, not true completion cost), so only
        # shape properties that always hold are asserted: never below
        # the optimum, never far above it at any width.
        matrix = synth_matrix(20, seed=9)
        exact = get_strategy("dynamic_program").search(matrix)
        for width in (1, 8, 32):
            approx = get_strategy("greedy_beam", width=width).search(matrix)
            assert approx.cost >= exact.cost - 1e-9
            assert approx.cost <= 1.5 * exact.cost


class TestPartitions:
    def test_partition_count(self):
        for length in range(1, 10):
            assert partition_count(length) == 2 ** (length - 1)
        with pytest.raises(OptimizerError):
            partition_count(0)

    def test_blocks_from_mask_roundtrip(self):
        length = 6
        seen = set()
        for mask in range(partition_count(length)):
            blocks = blocks_from_mask(length, mask)
            validate_partition(length, blocks)
            seen.add(blocks)
        assert len(seen) == partition_count(length)
        assert list(enumerate_partitions(length)) == [
            blocks_from_mask(length, mask)
            for mask in range(partition_count(length))
        ]

    def test_first_pieces_longest_first(self):
        pieces = list(enumerate_first_pieces(1, 4))
        assert pieces == [(1, 3), (1, 2), (1, 1)]

    def test_validate_partition_rejects_gaps(self):
        with pytest.raises(OptimizerError):
            validate_partition(4, ((1, 1), (3, 4)))
        with pytest.raises(OptimizerError):
            validate_partition(4, ((1, 2),))
        with pytest.raises(OptimizerError):
            validate_partition(4, ((1, 2), (3, 4), (5, 5)))


class TestAdvisorIntegration:
    def test_baseline_reuses_primary_result(self, fig7_stats, fig7_load):
        from repro.core.advisor import advise

        report = advise(fig7_stats, fig7_load, strategy="dynamic_program")
        assert report.dynprog is report.optimal
        report = advise(fig7_stats, fig7_load, strategy="exhaustive")
        assert report.exhaustive is report.optimal

    def test_advise_accepts_strategy_name(self, fig7_stats, fig7_load):
        default = advise_with(fig7_stats, fig7_load, "branch_and_bound")
        dp = advise_with(fig7_stats, fig7_load, "dynamic_program")
        beam = advise_with(fig7_stats, fig7_load, "greedy_beam")
        assert dp.optimal.cost == pytest.approx(default.optimal.cost)
        assert beam.optimal.cost >= default.optimal.cost - 1e-9
        assert beam.optimal.strategy == "greedy_beam"

    def test_long_path_baselines_skip_exhaustive(self):
        """Baselines on a length-20 path must not attempt the 2^19 sweep."""
        import time

        from repro.core.advisor import advise

        started = time.perf_counter()
        report = advise(*synth_inputs(20, seed=3), strategy="greedy_beam")
        elapsed = time.perf_counter() - started
        assert elapsed < 5.0
        assert report.exhaustive is None
        assert report.dynprog is not None
        assert report.optimal.cost >= report.dynprog.cost - 1e-9
        assert report.single_index_costs  # cheap baselines still computed

    def test_advise_rejects_unknown_strategy(self, fig7_stats, fig7_load):
        from repro.core.advisor import advise

        with pytest.raises(OptimizerError):
            advise(fig7_stats, fig7_load, strategy="nope")

    @pytest.mark.parametrize(
        "module", ["optimizer", "exhaustive", "dynprog"]
    )
    def test_retired_import_paths_raise_helpful_error(self, module):
        """The PR 1 shims are gone; the old paths point at repro.search."""
        import importlib
        import sys

        name = f"repro.core.{module}"
        sys.modules.pop(name, None)
        with pytest.raises(ImportError, match="repro.search"):
            importlib.import_module(name)
        # A failed module import must not leave a half-initialized entry
        # behind (it would turn the next import into a silent no-op).
        assert name not in sys.modules


def advise_with(stats, load, strategy):
    from repro.core.advisor import advise

    return advise(stats, load, run_baselines=False, strategy=strategy)


class TestTopConfigurations:
    """The k-best sweep feeding multi-path candidate generation."""

    def test_first_entry_is_the_dp_optimum(self):
        for seed in range(5):
            matrix = synth_matrix(6, seed)
            ranked = top_configurations(matrix, count=4)
            optimum = get_strategy("dynamic_program").search(matrix)
            assert ranked[0][0] == pytest.approx(optimum.cost)

    def test_costs_ascend(self):
        matrix = synth_matrix(6, seed=11)
        ranked = top_configurations(matrix, count=20, per_row_organizations=2)
        costs = [cost for cost, _parts in ranked]
        assert costs == sorted(costs)

    def test_count_at_space_returns_whole_space(self):
        length = 5
        matrix = synth_matrix(length, seed=3)
        space = configuration_count(length, 2)
        ranked = top_configurations(
            matrix, count=space + 10, per_row_organizations=2
        )
        assert len(ranked) == space
        # Every returned entry is a valid partition with a distinct
        # (partition, organizations) signature.
        signatures = set()
        for cost, parts in ranked:
            validate_partition(length, tuple((p.start, p.end) for p in parts))
            signatures.add(parts)
            assert cost == pytest.approx(
                sum(
                    matrix.cost(p.start, p.end, p.organization) for p in parts
                )
            )
        assert len(signatures) == space

    def test_single_org_space_is_partition_count(self):
        length = 6
        matrix = synth_matrix(length, seed=7)
        ranked = top_configurations(
            matrix, count=10**6, per_row_organizations=1
        )
        assert len(ranked) == partition_count(length)

    def test_validation(self):
        matrix = synth_matrix(3, seed=0)
        with pytest.raises(OptimizerError, match="count"):
            top_configurations(matrix, count=0)
        with pytest.raises(OptimizerError, match="organizations per block"):
            top_configurations(matrix, count=4, per_row_organizations=0)

    def test_configuration_count_matches_enumeration(self):
        # r·(1+r)^(n-1) == sum over partitions of r^blocks.
        for length in range(1, 8):
            for r in (1, 2, 3):
                brute = sum(
                    r ** len(blocks)
                    for blocks in enumerate_partitions(length)
                )
                assert configuration_count(length, r) == brute
        with pytest.raises(OptimizerError):
            configuration_count(0, 1)
        with pytest.raises(OptimizerError):
            configuration_count(3, 0)


class TestIncrementalRefine:
    """The refinable DP: same answers as a fresh run, less work."""

    def test_refine_matches_fresh_dp_over_perturbation_chain(self):
        from test_matrix_recompute import perturb_load

        stats, load = synth_inputs(8, seed=3)
        matrix = CostMatrix.compute(stats, load)
        incremental = get_strategy("incremental_dynamic_program")
        incremental.search(matrix)
        for position, component in [(8, "delete"), (2, "query"), (1, "insert")]:
            load = perturb_load(
                load, stats.path.class_at(position), component, 2.0
            )
            matrix = matrix.recompute(load=load)
            refined = incremental.refine(
                matrix, matrix.recompute_report.dirty_rows
            )
            fresh = get_strategy("dynamic_program").search(matrix)
            assert refined.cost == fresh.cost
            assert refined.configuration == fresh.configuration
            assert refined.strategy == "incremental_dynamic_program"

    def test_refine_with_empty_dirty_set_is_stable(self):
        matrix = synth_matrix(5, seed=7)
        incremental = get_strategy("incremental_dynamic_program")
        base = incremental.search(matrix)
        refined = incremental.refine(matrix, frozenset())
        assert refined.cost == base.cost
        assert refined.configuration == base.configuration
        assert refined.extras["rows_inspected"] == 0
        assert refined.extras["reused_positions"] == matrix.length

    def test_refine_without_tables_degrades_to_search(self):
        matrix = synth_matrix(4, seed=11)
        incremental = get_strategy("incremental_dynamic_program")
        result = incremental.refine(matrix, {(1, 1)})
        fresh = get_strategy("dynamic_program").search(matrix)
        assert result.cost == fresh.cost
        assert result.extras["relaxed_positions"] == matrix.length

    def test_refine_on_new_length_degrades_to_search(self):
        incremental = get_strategy("incremental_dynamic_program")
        incremental.search(synth_matrix(4, seed=1))
        longer = synth_matrix(6, seed=1)
        result = incremental.refine(longer, {(1, 1)})
        fresh = get_strategy("dynamic_program").search(longer)
        assert result.cost == fresh.cost
        assert result.configuration == fresh.configuration

    def test_refine_inspects_fewer_rows_for_shallow_dirt(self):
        """A dirty set confined to start positions 1..2 must not re-relax
        the deep suffix of a long path."""
        matrix = synth_matrix(12, seed=2)
        incremental = get_strategy("incremental_dynamic_program")
        full = incremental.search(matrix)
        refined = incremental.refine(matrix, {(1, 3), (2, 5)})
        assert refined.cost == full.cost
        assert refined.extras["relaxed_positions"] <= 2
        assert refined.extras["rows_inspected"] < full.extras["rows_inspected"]
