"""Tests for the operational NIX (primary + auxiliary index)."""

import pytest

from repro.errors import IndexError_
from repro.indexes.base import IndexContext
from repro.indexes.nested_inherited import NestedInheritedIndex
from repro.storage.pager import Pager
from repro.storage.sizes import SizeModel


def make_nix(vehicle_db, pexa, start=1, end=4):
    sizes = SizeModel()
    context = IndexContext(
        database=vehicle_db,
        path=pexa,
        start=start,
        end=end,
        pager=Pager(page_size=sizes.page_size),
        sizes=sizes,
    )
    return NestedInheritedIndex(context)


def company_named(db, name):
    return next(c for c in db.extent("Company") if c.values["name"] == name)


class TestLookup:
    def test_primary_record_answers_all_classes(self, vehicle_db, pexa):
        nix = make_nix(vehicle_db, pexa)
        for target, expected_count in [
            ("Person", 3),
            ("Vehicle", 1),
            ("Bus", 1),
            ("Truck", 1),
            ("Company", 1),
            ("Division", 1),
        ]:
            assert len(nix.lookup("Fiat-movings", target)) == expected_count

    def test_paper_nix_example_on_pe(self, vehicle_db, vehicle_schema):
        """Section 2.2's NIX example: key 'Fiat' lists the scope objects."""
        from repro.model.examples import pe_path

        pe = pe_path(vehicle_schema)
        nix = make_nix(vehicle_db, pe, 1, 3)
        companies = nix.lookup("Fiat", "Company")
        trucks = nix.lookup("Fiat", "Truck")
        persons = nix.lookup("Fiat", "Person")
        assert len(companies) == 1
        assert len(trucks) == 1
        assert len(persons) == 3  # Piet (bus), Sonia (vehicle), Henk (truck)

    def test_missing_value(self, vehicle_db, pexa):
        nix = make_nix(vehicle_db, pexa)
        assert nix.lookup("nothing", "Person") == set()

    def test_include_subclasses(self, vehicle_db, pexa):
        nix = make_nix(vehicle_db, pexa)
        vehicles = nix.lookup("Fiat-movings", "Vehicle", include_subclasses=True)
        assert {oid.class_name for oid in vehicles} == {"Vehicle", "Bus", "Truck"}

    def test_single_lookup_is_one_descent(self, vehicle_db, pexa):
        nix = make_nix(vehicle_db, pexa)
        pager = nix.context.pager
        before = pager.stats()
        nix.lookup("Fiat-movings", "Person")
        delta = pager.stats() - before
        # One primary descent: height reads, no auxiliary access.
        assert delta.reads <= 3
        assert delta.writes == 0


class TestNumchildSemantics:
    def test_numchild_counts_children_reaching_value(self, vehicle_db, pexa):
        nix = make_nix(vehicle_db, pexa)
        fiat = company_named(vehicle_db, "Fiat")
        record = nix._primary.get("Fiat-movings")
        assert record is not None
        # Fiat reaches 'Fiat-movings' through exactly one division.
        assert record["Company"][fiat.oid] == 1

    def test_person_with_two_qualifying_vehicles(self, vehicle_db, pexa):
        """Piet owns Vehicle[j] (Renault) and Bus[i] (Fiat): numchild per key."""
        nix = make_nix(vehicle_db, pexa)
        piet = next(
            p for p in vehicle_db.extent("Person") if p.values["name"] == "Piet"
        )
        fiat_record = nix._primary.get("Fiat-movings")
        renault_record = nix._primary.get("Renault-engines")
        assert fiat_record["Person"][piet.oid] == 1
        assert renault_record["Person"][piet.oid] == 1

    def test_partial_deletion_decrements_numchild(self, vehicle_db, pexa):
        """Deleting one of two children decrements, not removes."""
        nix = make_nix(vehicle_db, pexa)
        fiat = company_named(vehicle_db, "Fiat")
        # Give Fiat a second division whose name collides after... instead:
        # delete one of Piet's two vehicles and check he survives under the
        # other key.
        piet = next(
            p for p in vehicle_db.extent("Person") if p.values["name"] == "Piet"
        )
        bus = next(v for v in piet.value_list("owns") if v.class_name == "Bus")
        nix.on_delete(vehicle_db.get(bus))
        vehicle_db.delete(bus)
        nix.check_consistency()
        # Piet no longer reaches Fiat divisions, still reaches Renault's.
        assert piet.oid not in nix.lookup("Fiat-movings", "Person")
        assert piet.oid in nix.lookup("Renault-engines", "Person")
        assert fiat.oid in nix.lookup("Fiat-movings", "Company")


class TestMaintenance:
    def test_insert_chain_bottom_up(self, vehicle_db, pexa):
        nix = make_nix(vehicle_db, pexa)
        d = vehicle_db.create("Division", name="VW-motors", budget=9)
        nix.on_insert(vehicle_db.get(d))
        c = vehicle_db.create(
            "Company", name="VW", location="Wolfsburg", divisions=[d]
        )
        nix.on_insert(vehicle_db.get(c))
        v = vehicle_db.create("Vehicle", vid=60, color="Grey", max_speed=150, man=c)
        nix.on_insert(vehicle_db.get(v))
        p = vehicle_db.create("Person", name="Max", age=40, owns=[v])
        nix.on_insert(vehicle_db.get(p))
        nix.check_consistency()
        assert nix.lookup("VW-motors", "Person") == {p}

    def test_insert_parent_before_child_rejected(self, vehicle_db, pexa):
        nix = make_nix(vehicle_db, pexa)
        d = vehicle_db.create("Division", name="X-div", budget=1)
        # Skip indexing the division, then index its parent: must fail fast.
        c = vehicle_db.create("Company", name="X", location="Y", divisions=[d])
        with pytest.raises(IndexError_):
            nix.on_insert(vehicle_db.get(c))

    def test_delete_ending_object_removes_record_when_empty(self, vehicle_db, pexa):
        nix = make_nix(vehicle_db, pexa)
        division = next(
            d for d in vehicle_db.extent("Division")
            if d.values["name"] == "Daf-cabs"
        )
        nix.on_delete(division)
        vehicle_db.delete(division.oid)
        nix.check_consistency()
        assert nix._primary.get("Daf-cabs") is None

    def test_delete_starting_object(self, vehicle_db, pexa):
        nix = make_nix(vehicle_db, pexa)
        person = next(vehicle_db.extent("Person"))
        nix.on_delete(person)
        vehicle_db.delete(person.oid)
        nix.check_consistency()
        for record in [r for _, r in nix._primary.items()]:
            assert person.oid not in record.get("Person", {})

    def test_delete_middle_object_propagates_up(self, vehicle_db, pexa):
        """Deleting Fiat must remove Fiat's vehicles' owners from Fiat keys."""
        nix = make_nix(vehicle_db, pexa)
        fiat = company_named(vehicle_db, "Fiat")
        nix.on_delete(fiat)
        vehicle_db.delete(fiat.oid)
        nix.check_consistency()
        assert nix.lookup("Fiat-movings", "Person") == set()
        assert nix.lookup("Fiat-movings", "Vehicle") == set()
        # The divisions themselves still hold their names.
        assert len(nix.lookup("Fiat-movings", "Division")) == 1

    def test_delete_unindexed_class_is_noop(self, vehicle_db, pexa):
        nix = make_nix(vehicle_db, pexa, start=3, end=4)
        person = next(vehicle_db.extent("Person"))
        nix.on_delete(person)  # Person not covered by Comp.divisions.name
        nix.check_consistency()

    def test_single_class_subpath_has_no_auxiliary(self, vehicle_db, pexa):
        nix = make_nix(vehicle_db, pexa, start=4, end=4)
        assert nix._auxiliary.record_count == 0
        division = next(vehicle_db.extent("Division"))
        nix.on_delete(division)
        vehicle_db.delete(division.oid)
        nix.check_consistency()

    def test_remove_key_strips_pointers(self, vehicle_db, pexa):
        """Cross-subpath CMD: dropping a whole record cleans 3-tuples."""
        nix = make_nix(vehicle_db, pexa, start=1, end=2)
        fiat = company_named(vehicle_db, "Fiat")
        assert nix.remove_key(fiat.oid) is True
        for oid, three_tuple in nix._auxiliary.items():
            assert fiat.oid not in three_tuple.pointers
        assert nix.remove_key(fiat.oid) is False


class TestAuxiliaryStructure:
    def test_three_tuples_exist_for_non_start_classes(self, vehicle_db, pexa):
        nix = make_nix(vehicle_db, pexa)
        expected = (
            vehicle_db.extent_size("Vehicle")
            + vehicle_db.extent_size("Bus")
            + vehicle_db.extent_size("Truck")
            + vehicle_db.extent_size("Company")
            + vehicle_db.extent_size("Division")
        )
        assert nix._auxiliary.record_count == expected

    def test_parents_recorded(self, vehicle_db, pexa):
        nix = make_nix(vehicle_db, pexa)
        fiat = company_named(vehicle_db, "Fiat")
        three_tuple = nix._auxiliary.get(fiat.oid)
        assert three_tuple is not None
        parent_classes = {p.class_name for p in three_tuple.parents}
        assert parent_classes <= {"Vehicle", "Bus", "Truck"}
        assert len(three_tuple.parents) == 3  # Vehicle[k], Bus[i], Truck[i]

    def test_pointers_match_reachable_keys(self, vehicle_db, pexa):
        nix = make_nix(vehicle_db, pexa)
        fiat = company_named(vehicle_db, "Fiat")
        three_tuple = nix._auxiliary.get(fiat.oid)
        assert three_tuple.pointers == {"Fiat-movings", "Fiat-design"}

    def test_consistency_detects_primary_corruption(self, vehicle_db, pexa):
        nix = make_nix(vehicle_db, pexa)
        record = nix._primary.get("Fiat-movings")
        fake = dict(record)
        fake.pop("Person")
        nix._primary.update("Fiat-movings", fake, 100)
        with pytest.raises(IndexError_):
            nix.check_consistency()
