"""NIX numchild semantics under diamond-shaped reachability.

The trickiest part of the paper's deletion algorithm: an ancestor's
``numchild`` counts the *children through which it reaches the value*, so
an object reaching a value through two children must survive the loss of
one. These tests build the diamonds explicitly.
"""

import pytest

from repro.costmodel.params import ClassStats
from repro.indexes.base import IndexContext
from repro.indexes.nested_inherited import NestedInheritedIndex
from repro.model.attribute import AtomicType
from repro.model.path import Path
from repro.model.schema import Schema, atomic, reference
from repro.model.objects import OODatabase
from repro.storage.pager import Pager
from repro.storage.sizes import SizeModel


def diamond_world():
    """P -> {V1, V2} -> C -> 'v': the person reaches 'v' via two vehicles."""
    schema = Schema()
    schema.define("C", [atomic("name", AtomicType.STRING)])
    schema.define("V", [reference("c", "C")])
    schema.define("P", [reference("v", "V", multi_valued=True)])
    schema.freeze()
    path = Path.parse(schema, "P.v.c.name")
    database = OODatabase(schema)
    company = database.create("C", name="v")
    vehicle1 = database.create("V", c=company)
    vehicle2 = database.create("V", c=company)
    person = database.create("P", v=[vehicle1, vehicle2])
    return schema, path, database, (person, vehicle1, vehicle2, company)


def make_nix(database, path):
    sizes = SizeModel()
    context = IndexContext(
        database=database,
        path=path,
        start=1,
        end=3,
        pager=Pager(page_size=sizes.page_size),
        sizes=sizes,
    )
    return NestedInheritedIndex(context)


class TestDiamondCounting:
    def test_numchild_counts_distinct_children(self):
        _schema, path, database, (person, *_rest) = diamond_world()
        nix = make_nix(database, path)
        record = nix._primary.get("v")
        # The person reaches 'v' through two distinct vehicles.
        assert record["P"][person] == 2

    def test_losing_one_child_keeps_ancestor(self):
        _schema, path, database, (person, vehicle1, _v2, _c) = diamond_world()
        nix = make_nix(database, path)
        nix.on_delete(database.get(vehicle1))
        database.delete(vehicle1)
        nix.check_consistency()
        assert person in nix.lookup("v", "P")
        assert nix._primary.get("v")["P"][person] == 1

    def test_losing_both_children_removes_ancestor(self):
        _schema, path, database, (person, vehicle1, vehicle2, _c) = diamond_world()
        nix = make_nix(database, path)
        for vehicle in (vehicle1, vehicle2):
            nix.on_delete(database.get(vehicle))
            database.delete(vehicle)
            nix.check_consistency()
        assert person not in nix.lookup("v", "P")

    def test_deleting_shared_grandchild_removes_whole_diamond(self):
        _schema, path, database, (person, v1, v2, company) = diamond_world()
        nix = make_nix(database, path)
        nix.on_delete(database.get(company))
        database.delete(company)
        nix.check_consistency()
        # Both vehicles and the person lose reachability at once — the
        # level-by-level walk must decrement the person by *two*.
        assert nix._primary.get("v") is None

    def test_pointer_sets_follow_the_walk(self):
        _schema, path, database, (person, vehicle1, _v2, _c) = diamond_world()
        nix = make_nix(database, path)
        nix.on_delete(database.get(vehicle1))
        database.delete(vehicle1)
        tuples = dict(nix._auxiliary.items())
        assert vehicle1 not in tuples
        for oid, three_tuple in tuples.items():
            assert vehicle1 not in three_tuple.parents


class TestDeepDiamond:
    def test_four_level_diamond_propagation(self):
        """Two mid-level diamonds stacked: P -> {V1,V2} -> {M} -> D."""
        schema = Schema()
        schema.define("D", [atomic("name", AtomicType.STRING)])
        schema.define("M", [reference("d", "D", multi_valued=True)])
        schema.define("V", [reference("m", "M")])
        schema.define("P", [reference("v", "V", multi_valued=True)])
        schema.freeze()
        path = Path.parse(schema, "P.v.m.d.name")
        database = OODatabase(schema)
        d_obj = database.create("D", name="x")
        m_obj = database.create("M", d=[d_obj, d_obj])  # two refs, one child
        v1 = database.create("V", m=m_obj)
        v2 = database.create("V", m=m_obj)
        p = database.create("P", v=[v1, v2])
        sizes = SizeModel()
        context = IndexContext(
            database=database,
            path=path,
            start=1,
            end=4,
            pager=Pager(page_size=sizes.page_size),
            sizes=sizes,
        )
        nix = NestedInheritedIndex(context)
        record = nix._primary.get("x")
        # M holds the value twice (duplicated reference = one child object
        # counted per occurrence at the ending level... the ending level D
        # holds 'x' once; M reaches through 1 distinct child).
        assert record["M"][m_obj] == 1
        assert record["P"][p] == 2  # two vehicles
        # Delete V1: P survives with count 1.
        nix.on_delete(database.get(v1))
        database.delete(v1)
        nix.check_consistency()
        assert nix._primary.get("x")["P"][p] == 1
        # Delete M: everything above collapses.
        nix.on_delete(database.get(m_obj))
        database.delete(m_obj)
        nix.check_consistency()
        record = nix._primary.get("x")
        assert "P" not in record and "V" not in record and "M" not in record
        assert d_obj in record["D"]
