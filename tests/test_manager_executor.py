"""Tests for ConfigurationIndexSet and PathQueryExecutor."""

import pytest

from repro.core.configuration import IndexConfiguration
from repro.errors import IndexError_
from repro.indexes.executor import PathQueryExecutor
from repro.indexes.manager import ConfigurationIndexSet
from repro.model.examples import populate_vehicle_database
from repro.organizations import IndexOrganization

MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX
NONE = IndexOrganization.NONE

ALL_CONFIGS = [
    IndexConfiguration.whole_path(4, NIX),
    IndexConfiguration.whole_path(4, MX),
    IndexConfiguration.whole_path(4, MIX),
    IndexConfiguration.of((1, 2, NIX), (3, 4, MX)),
    IndexConfiguration.of((1, 1, MX), (2, 2, MIX), (3, 4, NIX)),
    IndexConfiguration.of((1, 2, MIX), (3, 4, NONE)),
]


def build(vehicle_schema, config, path):
    database = populate_vehicle_database(vehicle_schema)
    return ConfigurationIndexSet(database, path, config)


class TestQueryEquivalence:
    """Every configuration answers every query identically."""

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.render())
    def test_person_query(self, vehicle_schema, pexa, config):
        indexes = build(vehicle_schema, config, pexa)
        result = indexes.query("Fiat-movings", "Person")
        names = {indexes.database.get(oid).values["name"] for oid in result}
        assert names == {"Piet", "Sonia", "Henk"}

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.render())
    def test_vehicle_hierarchy_query(self, vehicle_schema, pexa, config):
        indexes = build(vehicle_schema, config, pexa)
        result = indexes.query(
            "Fiat-movings", "Vehicle", include_subclasses=True
        )
        assert {oid.class_name for oid in result} == {"Vehicle", "Bus", "Truck"}

    @pytest.mark.parametrize("config", ALL_CONFIGS[:4], ids=lambda c: c.render())
    def test_empty_result(self, vehicle_schema, pexa, config):
        indexes = build(vehicle_schema, config, pexa)
        assert indexes.query("no-such-division", "Person") == set()

    def test_query_with_object_fetch_charges_heap_pages(self, vehicle_schema, pexa):
        indexes = build(vehicle_schema, ALL_CONFIGS[0], pexa)
        executor = PathQueryExecutor(indexes)
        plain = executor.query("Fiat-movings", "Person")
        fetched = executor.query("Fiat-movings", "Person", fetch_objects=True)
        assert fetched.stats.total > plain.stats.total


class TestMaintenanceRouting:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.render())
    def test_insert_delete_chain(self, vehicle_schema, pexa, config):
        indexes = build(vehicle_schema, config, pexa)
        d = indexes.insert("Division", name="BMW-works", budget=3)
        c = indexes.insert("Company", name="BMW", location="Munich", divisions=[d])
        v = indexes.insert("Vehicle", vid=61, color="Blue", max_speed=220, man=c)
        p = indexes.insert("Person", name="Jo", age=33, owns=[v])
        indexes.check_consistency()
        assert indexes.query("BMW-works", "Person") == {p}
        # Delete in reverse order.
        for oid in (p, v, c, d):
            indexes.delete(oid)
            indexes.check_consistency()
        assert indexes.query("BMW-works", "Person") == set()

    def test_cmd_routing_on_subpath_boundary(self, vehicle_schema, pexa):
        """Deleting a Company must clean the preceding subpath's index."""
        config = IndexConfiguration.of((1, 2, NIX), (3, 4, MX))
        indexes = build(vehicle_schema, config, pexa)
        fiat = next(
            c.oid
            for c in indexes.database.extent("Company")
            if c.values["name"] == "Fiat"
        )
        indexes.delete(fiat)
        indexes.check_consistency()
        assert indexes.query("Fiat-movings", "Person") == set()

    def test_length_mismatch_rejected(self, vehicle_schema, pexa):
        database = populate_vehicle_database(vehicle_schema)
        with pytest.raises(IndexError_):
            ConfigurationIndexSet(
                database, pexa, IndexConfiguration.whole_path(3, NIX)
            )

    def test_extents_maintained(self, vehicle_schema, pexa):
        indexes = build(vehicle_schema, ALL_CONFIGS[0], pexa)
        before = indexes.extents["Person"].object_count()
        vehicle = next(indexes.database.extent("Vehicle")).oid
        oid = indexes.insert("Person", name="Q", age=9, owns=[vehicle])
        assert indexes.extents["Person"].object_count() == before + 1
        indexes.delete(oid)
        assert indexes.extents["Person"].object_count() == before

    def test_parts_accessors(self, vehicle_schema, pexa):
        config = IndexConfiguration.of((1, 2, NIX), (3, 4, MX))
        indexes = build(vehicle_schema, config, pexa)
        assert len(indexes.parts()) == 2
        assignment, _ = indexes.part_for_position(3)
        assert (assignment.start, assignment.end) == (3, 4)
        with pytest.raises(IndexError_):
            indexes.part_for_position(9)


class TestExecutorMeasurement:
    def test_query_stats_positive(self, vehicle_schema, pexa):
        indexes = build(vehicle_schema, ALL_CONFIGS[0], pexa)
        executor = PathQueryExecutor(indexes)
        measured = executor.query("Fiat-movings", "Person")
        assert measured.stats.total >= 1
        assert measured.oids

    def test_nix_query_cheaper_than_mx(self, vehicle_schema, pexa):
        nix_executor = PathQueryExecutor(build(vehicle_schema, ALL_CONFIGS[0], pexa))
        mx_executor = PathQueryExecutor(build(vehicle_schema, ALL_CONFIGS[1], pexa))
        nix_cost = nix_executor.query("Fiat-movings", "Person").stats.total
        mx_cost = mx_executor.query("Fiat-movings", "Person").stats.total
        assert nix_cost < mx_cost

    def test_insert_measured(self, vehicle_schema, pexa):
        indexes = build(vehicle_schema, ALL_CONFIGS[0], pexa)
        executor = PathQueryExecutor(indexes)
        division = executor.insert("Division", name="New-div", budget=1)
        assert division.stats.total >= 1

    def test_delete_measured(self, vehicle_schema, pexa):
        indexes = build(vehicle_schema, ALL_CONFIGS[0], pexa)
        executor = PathQueryExecutor(indexes)
        person = next(indexes.database.extent("Person")).oid
        measured = executor.delete(person)
        assert measured.stats.total >= 1
        assert not indexes.database.contains(person)
