"""Tests for the Cost_Matrix and Min_Cost procedures."""

import pytest

from repro.core.cost_matrix import CostMatrix
from repro.errors import OptimizerError
from repro.organizations import CONFIGURABLE_ORGANIZATIONS, IndexOrganization

MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX


class TestFigure6Matrix:
    def test_row_count_formula(self, fig6):
        # n(n+1)/2 rows for n = 4.
        assert fig6.row_count() == 10
        assert len(fig6.rows()) == 10

    def test_entry_count_formula(self, fig6):
        # "the size of the matrix will be 3 to n(n+1)/2".
        assert fig6.entry_count() == 30

    def test_known_entries(self, fig6):
        # The legible Figure 6 rows.
        assert fig6.cost(1, 1, MX) == 3.0
        assert fig6.cost(1, 1, MIX) == 4.0
        assert fig6.cost(1, 1, NIX) == 6.0
        assert fig6.cost(2, 2, MX) == 4.0
        assert fig6.cost(3, 3, MX) == 2.0

    def test_row_minima_match_walkthrough(self, fig6):
        # The minima quoted in the Section 5 prose.
        expected = {
            (1, 1): 3.0,
            (1, 2): 6.0,
            (1, 3): 8.0,
            (1, 4): 9.0,
            (2, 2): 4.0,
            (2, 3): 5.0,
            (2, 4): 5.0,
            (3, 3): 2.0,
            (3, 4): 6.0,
            (4, 4): 4.0,
        }
        for (start, end), cost in expected.items():
            assert fig6.min_cost(start, end).cost == cost

    def test_min_cost_organizations(self, fig6):
        assert fig6.min_cost(1, 1).organization is MX
        assert fig6.min_cost(1, 4).organization is NIX
        assert fig6.min_cost(2, 4).organization is NIX
        assert fig6.min_cost(4, 4).organization is MX

    def test_bounds_checked(self, fig6):
        with pytest.raises(OptimizerError):
            fig6.cost(0, 1, MX)
        with pytest.raises(OptimizerError):
            fig6.cost(2, 5, MX)
        with pytest.raises(OptimizerError):
            fig6.min_cost(3, 2)

    def test_render_marks_minima(self, fig6):
        text = fig6.render()
        assert "*3.00*" in text
        assert "S[1,1]" in text


class TestComputedMatrix:
    def test_compute_covers_all_rows(self, fig7_stats, fig7_load):
        matrix = CostMatrix.compute(fig7_stats, fig7_load)
        assert matrix.length == 4
        for start, end in matrix.rows():
            for organization in CONFIGURABLE_ORGANIZATIONS:
                assert matrix.cost(start, end, organization) > 0

    def test_breakdowns_available_for_computed(self, fig7_stats, fig7_load):
        matrix = CostMatrix.compute(fig7_stats, fig7_load)
        breakdown = matrix.breakdown(1, 2, NIX)
        assert breakdown is not None
        assert breakdown.total == pytest.approx(matrix.cost(1, 2, NIX))

    def test_breakdown_missing_for_literal(self, fig6):
        assert fig6.breakdown(1, 1, MX) is None

    def test_include_noindex_adds_column(self, fig7_stats, fig7_load):
        matrix = CostMatrix.compute(fig7_stats, fig7_load, include_noindex=True)
        assert IndexOrganization.NONE in matrix.organizations
        assert matrix.cost(1, 1, IndexOrganization.NONE) > 0

    def test_render_with_path(self, fig7_stats, fig7_load):
        matrix = CostMatrix.compute(fig7_stats, fig7_load)
        text = matrix.render(fig7_stats.path)
        assert "Person.owns.man" in text
        assert "Division.name" in text

    def test_missing_row_rejected(self):
        with pytest.raises(OptimizerError):
            CostMatrix(2, (MX,), {(1, 1): {MX: 1.0}, (2, 2): {MX: 1.0}})

    def test_missing_organization_rejected(self):
        entries = {
            (1, 1): {MX: 1.0},
            (1, 2): {MX: 1.0},
            (2, 2): {},
        }
        with pytest.raises(OptimizerError):
            CostMatrix(2, (MX,), entries)

    def test_zero_length_rejected(self):
        with pytest.raises(OptimizerError):
            CostMatrix(0, (MX,), {})

    def test_from_values_rejects_mismatched_row_organizations(self):
        values = {
            (1, 1): {MX: 1.0, NIX: 2.0},
            (1, 2): {MX: 1.0, NIX: 2.0},
            (2, 2): {MX: 1.0, MIX: 2.0},  # MIX instead of NIX
        }
        with pytest.raises(OptimizerError, match=r"row \(2, 2\)"):
            CostMatrix.from_values(2, values)

    def test_from_values_rejects_missing_organization(self):
        values = {
            (1, 1): {MX: 1.0, NIX: 2.0},
            (1, 2): {MX: 1.0, NIX: 2.0},
            (2, 2): {MX: 1.0},
        }
        with pytest.raises(OptimizerError):
            CostMatrix.from_values(2, values)

    def test_from_values_rejects_empty(self):
        with pytest.raises(OptimizerError):
            CostMatrix.from_values(1, {})

    def test_row_index_matches_figure6_order(self, fig6):
        for expected, (start, end) in enumerate(fig6.rows()):
            assert fig6.row_index(start, end) == expected

    def test_rows_outside_triangle_rejected(self):
        values = {
            (1, 1): {MX: 1.0},
            (1, 2): {MX: 1.0},
            (2, 2): {MX: 1.0},
            (3, 3): {MX: 99.0},  # outside a length-2 matrix
        }
        with pytest.raises(OptimizerError, match="outside"):
            CostMatrix.from_values(2, values)

    def test_tie_resolves_to_earliest_organization(self):
        values = {(1, 1): {MX: -10.0, MIX: -10.0, NIX: -10.0}}
        matrix = CostMatrix.from_values(1, values)
        assert matrix.min_cost(1, 1).organization is MX

    def test_negative_costs_pick_true_minimum(self):
        values = {(1, 1): {MX: -9.99, MIX: -10.0}}
        matrix = CostMatrix.from_values(1, values)
        minimum = matrix.min_cost(1, 1)
        assert minimum.organization is MIX
        assert minimum.cost == -10.0

    def test_negative_near_tie_resolves_to_earliest(self):
        # A 5e-10 relative gap is numerical noise: earliest column wins
        # regardless of sign (the old relative formula flipped direction
        # for negative costs and picked the larger value).
        values = {(1, 1): {MX: -9.999999995, MIX: -10.0}}
        matrix = CostMatrix.from_values(1, values)
        assert matrix.min_cost(1, 1).organization is MX
