"""Tests for the measured-vs-analytic validation harness."""

import pytest

from repro.core.configuration import IndexConfiguration
from repro.organizations import IndexOrganization
from repro.validate.compare import (
    ValidationRow,
    render_validation,
    validate_configuration,
)
from tests.conftest import make_small_synth

MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX


class TestValidationRows:
    def test_ratio(self):
        row = ValidationRow("query", "A", analytic=2.0, measured=3.0, samples=5)
        assert row.ratio == pytest.approx(1.5)

    def test_zero_analytic_zero_measured(self):
        row = ValidationRow("query", "A", analytic=0.0, measured=0.0, samples=5)
        assert row.ratio == 1.0

    def test_zero_analytic_nonzero_measured(self):
        row = ValidationRow("query", "A", analytic=0.0, measured=2.0, samples=5)
        assert row.ratio == float("inf")

    def test_render(self):
        text = render_validation(
            [ValidationRow("query", "A", 2.0, 2.2, 5)]
        )
        assert "query" in text and "1.10" in text


@pytest.mark.parametrize(
    "configuration",
    [
        IndexConfiguration.whole_path(3, NIX),
        IndexConfiguration.whole_path(3, MIX),
        IndexConfiguration.of((1, 1, MX), (2, 3, NIX)),
    ],
    ids=lambda c: c.render(),
)
class TestQueryValidationAccuracy:
    def test_query_predictions_within_factor_two(self, configuration):
        _schema, path, database, _specs = make_small_synth(seed=5)
        rows = validate_configuration(
            database, path, configuration, samples=8, seed=11, include_updates=False
        )
        assert rows
        for row in rows:
            assert row.operation == "query"
            assert row.measured > 0
            assert row.analytic > 0
            assert 0.4 <= row.ratio <= 2.5, f"{row.class_name}: {row.ratio}"


class TestUpdateValidation:
    def test_update_rows_produced_and_sane(self):
        _schema, path, database, _specs = make_small_synth(seed=9)
        rows = validate_configuration(
            database,
            path,
            IndexConfiguration.whole_path(3, NIX),
            samples=4,
            seed=2,
            include_updates=True,
        )
        operations = {row.operation for row in rows}
        assert operations == {"query", "insert", "delete"}
        for row in rows:
            if row.operation in ("insert", "delete"):
                assert 0.2 <= row.ratio <= 5.0, (
                    f"{row.operation}/{row.class_name}: {row.ratio}"
                )

    def test_empty_database_rejected(self):
        from repro.errors import ReproError
        from repro.model.objects import OODatabase
        from repro.synth import LevelSpec, linear_path_schema

        schema, path = linear_path_schema([LevelSpec("X"), LevelSpec("Y")])
        database = OODatabase(schema)
        with pytest.raises(ReproError):
            validate_configuration(
                database, path, IndexConfiguration.whole_path(2, NIX)
            )


class TestStorageValidation:
    def test_nix_storage_within_factor_two(self):
        from repro.validate.compare import render_storage, validate_storage

        _schema, path, database, _specs = make_small_synth(seed=5)
        rows = validate_storage(
            database, path, IndexConfiguration.whole_path(3, NIX)
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.organization == "NIX"
        assert row.measured > 0
        assert row.analytic > 0
        assert 0.4 <= row.ratio <= 2.5, f"{row.label}: {row.ratio}"
        assert row.label in render_storage(rows)

    def test_every_organization_measured(self):
        from repro.validate.compare import validate_storage

        _schema, path, database, _specs = make_small_synth(seed=7)
        rows = validate_storage(
            database, path, IndexConfiguration.of((1, 1, MX), (2, 3, NIX))
        )
        assert [row.organization for row in rows] == ["MX", "NIX"]
        for row in rows:
            assert row.measured > 0
            assert 0.3 <= row.ratio <= 3.0, f"{row.label}: {row.ratio}"

    def test_shared_nix_primary_same_pages(self):
        """Configurations sharing a subpath assignment materialize the
        shared part to the same page count — the premise behind comparing
        partitions that differ only elsewhere (shared NIX primaries)."""
        from repro.validate.compare import validate_storage

        _schema, path, database, _specs = make_small_synth(seed=3)
        first = validate_storage(
            database, path, IndexConfiguration.of((1, 1, MX), (2, 3, NIX))
        )
        _schema2, path2, database2, _specs2 = make_small_synth(seed=3)
        second = validate_storage(
            database2, path2, IndexConfiguration.of((1, 1, MIX), (2, 3, NIX))
        )
        shared_first = [r for r in first if r.label == "S[2,3]:NIX"]
        shared_second = [r for r in second if r.label == "S[2,3]:NIX"]
        assert shared_first and shared_second
        assert shared_first[0].measured == shared_second[0].measured
        assert shared_first[0].analytic == shared_second[0].analytic
