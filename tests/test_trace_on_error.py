"""``iter_trace``/``read_trace`` tolerant-read policies (``on_error``).

The strict default (``"raise"``) is the pre-existing contract and must
not move. The tolerant policies exist for long-lived ingestion: a
process tailing an externally produced trace should not die on one
mangled line — but it must *account* for every line it dropped, which is
what :class:`~repro.trace.TraceReadReport` records.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import TraceError
from repro.trace import (
    TraceReadReport,
    generate_trace,
    iter_trace,
    read_trace,
    write_trace,
)

from test_resilience_checkpoint import make_world


@pytest.fixture
def trace_file(tmp_path):
    stats, _load = make_world()
    events = generate_trace(stats.path, "stationary", 50, seed=2)
    path = tmp_path / "trace.jsonl"
    write_trace(events, path)
    return path, events


def mangle(path, line_number, text):
    lines = path.read_text().splitlines()
    lines[line_number - 1] = text
    path.write_text("\n".join(lines) + "\n")


class TestRaisePolicy:
    def test_default_raises_with_the_line_number(self, trace_file):
        path, _events = trace_file
        mangle(path, 7, "{not json")
        with pytest.raises(TraceError, match=":7: invalid JSON"):
            read_trace(path)

    def test_semantic_errors_also_name_the_line(self, trace_file):
        path, _events = trace_file
        mangle(path, 9, json.dumps({"ts": 1.0, "kind": "vacuum", "class": "X"}))
        with pytest.raises(TraceError, match=":9: unknown event kind"):
            read_trace(path)

    def test_clean_file_round_trips(self, trace_file):
        path, events = trace_file
        loaded = read_trace(path)
        assert [e.to_dict() for e in loaded] == [e.to_dict() for e in events]

    def test_unknown_policy_is_rejected(self, trace_file):
        path, _events = trace_file
        with pytest.raises(TraceError, match="unknown on_error policy"):
            list(iter_trace(path, on_error="ignore"))


class TestTolerantPolicies:
    def test_skip_drops_lines_with_empty_messages(self, trace_file):
        path, events = trace_file
        mangle(path, 3, "{not json")
        mangle(path, 11, json.dumps({"ts": -1.0, "kind": "query", "class": "X"}))
        report = TraceReadReport()
        loaded = read_trace(path, on_error="skip", report=report)
        assert len(loaded) == len(events) - 2
        assert report.skipped == [(3, ""), (11, "")]
        assert report.events == len(loaded)

    def test_collect_keeps_the_parse_errors(self, trace_file):
        path, _events = trace_file
        mangle(path, 3, "{not json")
        mangle(path, 11, json.dumps({"ts": -1.0, "kind": "query", "class": "X"}))
        report = TraceReadReport()
        read_trace(path, on_error="collect", report=report)
        assert report.skipped_lines == [3, 11]
        messages = dict(report.skipped)
        assert "invalid JSON" in messages[3]
        assert "timestamp" in messages[11]

    def test_blank_lines_are_not_errors(self, trace_file):
        path, events = trace_file
        raw = path.read_text().splitlines()
        raw.insert(5, "")
        raw.insert(20, "   ")
        path.write_text("\n".join(raw) + "\n")
        report = TraceReadReport()
        loaded = read_trace(path, on_error="collect", report=report)
        assert len(loaded) == len(events)
        assert report.skipped == []

    def test_report_is_optional(self, trace_file):
        path, events = trace_file
        mangle(path, 2, "garbage")
        loaded = read_trace(path, on_error="skip")
        assert len(loaded) == len(events) - 1

    def test_describe_formats(self):
        empty = TraceReadReport(events=312)
        assert empty.describe() == "312 events, 0 lines skipped"
        partial = TraceReadReport(
            events=310, skipped=[(7, ""), (119, "bad")]
        )
        assert partial.describe() == "310 events, 2 lines skipped (7, 119)"
        single = TraceReadReport(events=1, skipped=[(4, "")])
        assert single.describe() == "1 events, 1 line skipped (4)"
