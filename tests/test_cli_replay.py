"""CLI coverage for the ``trace`` and ``replay`` subcommands (PR 5)."""

import json

import pytest

from repro.cli import main
from repro.io import spec_to_dict
from repro.paper import figure7_load, figure7_statistics


@pytest.fixture(scope="module")
def spec_path(tmp_path_factory):
    document = spec_to_dict(figure7_statistics(), figure7_load())
    path = tmp_path_factory.mktemp("replay") / "spec.json"
    path.write_text(json.dumps(document), encoding="utf-8")
    return str(path)


@pytest.fixture(scope="module")
def trace_path(spec_path, tmp_path_factory):
    path = tmp_path_factory.mktemp("replay") / "trace.jsonl"
    code = main(
        [
            "trace",
            spec_path,
            "--regime",
            "mixed_drift",
            "--events",
            "600",
            "--seed",
            "3",
            "--out",
            str(path),
        ]
    )
    assert code == 0
    return str(path)


class TestTraceCommand:
    def test_writes_jsonl_file(self, spec_path, trace_path):
        lines = [
            line
            for line in open(trace_path, encoding="utf-8").read().splitlines()
            if line
        ]
        assert len(lines) == 600
        event = json.loads(lines[0])
        assert set(event) == {"ts", "kind", "class"}

    def test_deterministic_under_seed(self, spec_path, tmp_path):
        paths = []
        for name in ("a.jsonl", "b.jsonl"):
            target = tmp_path / name
            assert (
                main(
                    [
                        "trace",
                        spec_path,
                        "--events",
                        "100",
                        "--seed",
                        "9",
                        "--out",
                        str(target),
                    ]
                )
                == 0
            )
            paths.append(target.read_text(encoding="utf-8"))
        assert paths[0] == paths[1]

    def test_stdout_when_no_out(self, spec_path, capsys):
        code = main(["trace", spec_path, "--events", "5"])
        output = capsys.readouterr().out
        assert code == 0
        lines = [line for line in output.splitlines() if line]
        assert len(lines) == 5
        json.loads(lines[0])

    def test_rejects_unknown_regime(self, spec_path):
        with pytest.raises(SystemExit):
            main(["trace", spec_path, "--regime", "chaotic"])


class TestReplayCommand:
    def test_renders_timeline_table(self, spec_path, trace_path, capsys):
        code = main(
            [
                "replay",
                spec_path,
                "--trace",
                trace_path,
                "--window",
                "100",
                "--slide",
                "50",
                "--threshold",
                "0.2",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "baseline" in output
        assert "dirty rows" in output
        assert "re-advises" in output

    def test_json_payload_structure(self, spec_path, trace_path, capsys):
        code = main(
            [
                "replay",
                spec_path,
                "--trace",
                trace_path,
                "--window",
                "100",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["window"] == 100
        assert payload["events"] == 600
        assert payload["windows"] >= 1
        steps = payload["steps"]
        assert steps[0]["step"] == 0
        assert steps[0]["mode"] is None
        for step in steps[1:]:
            assert step["mode"] in ("incremental", "full")
            assert step["perturbations"] > 0
            assert isinstance(step["configuration"], list)

    def test_missing_trace_file_fails_cleanly(self, spec_path, capsys):
        code = main(
            ["replay", spec_path, "--trace", "/nonexistent/trace.jsonl"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_window_fails_cleanly(self, spec_path, trace_path, capsys):
        code = main(
            ["replay", spec_path, "--trace", trace_path, "--window", "0"]
        )
        assert code == 1
        assert "window" in capsys.readouterr().err

    def test_track_stats_and_noindex_accepted(
        self, spec_path, trace_path, capsys
    ):
        code = main(
            [
                "replay",
                spec_path,
                "--trace",
                trace_path,
                "--window",
                "150",
                "--track-stats",
                "--noindex",
                "--hysteresis",
                "1",
            ]
        )
        assert code == 0
        assert "events" in capsys.readouterr().out
