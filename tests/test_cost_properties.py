"""Property-based tests on cost-model invariants across random statistics.

These are the global sanity properties that make the optimizer's output
trustworthy: costs are finite, non-negative, monotone in workload
frequencies, and the additive decomposition never loses to itself.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_matrix import CostMatrix
from repro.costmodel.params import ClassStats, PathStatistics
from repro.costmodel.subpath import subpath_processing_cost
from repro.organizations import CONFIGURABLE_ORGANIZATIONS, IndexOrganization
from repro.search import get_strategy
from repro.synth import LevelSpec, linear_path_schema
from repro.workload.load import LoadDistribution, LoadTriplet


def optimize(matrix):
    return get_strategy("branch_and_bound").search(matrix)


def exhaustive_search(matrix):
    return get_strategy("exhaustive").search(matrix)


def dynamic_program(matrix):
    return get_strategy("dynamic_program").search(matrix)


@st.composite
def random_world(draw):
    """A random path (length 2-5), statistics, and workload."""
    length = draw(st.integers(min_value=2, max_value=5))
    subclass_flags = [
        draw(st.integers(min_value=0, max_value=2)) for _ in range(length)
    ]
    levels = [
        LevelSpec(f"L{i}", subclasses=subclass_flags[i], multi_valued=bool(i % 2))
        for i in range(length)
    ]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    objects = draw(st.integers(min_value=1_000, max_value=500_000))
    for position in range(1, length + 1):
        for member in path.hierarchy_at(position):
            member_objects = max(
                10, objects // max(1, len(path.hierarchy_at(position)))
            )
            distinct = max(1, member_objects // draw(st.integers(2, 20)))
            fanout = draw(st.sampled_from([1.0, 1.0, 2.0, 3.0]))
            per_class[member] = ClassStats(
                objects=member_objects, distinct=distinct, fanout=fanout
            )
        objects = max(20, objects // draw(st.integers(2, 12)))
    stats = PathStatistics(path, per_class)
    triplets = {
        name: LoadTriplet(
            query=draw(st.floats(min_value=0, max_value=1)),
            insert=draw(st.floats(min_value=0, max_value=0.5)),
            delete=draw(st.floats(min_value=0, max_value=0.5)),
        )
        for name in path.scope
    }
    load = LoadDistribution(path, triplets)
    return stats, load


class TestGlobalCostProperties:
    @given(world=random_world())
    @settings(max_examples=25, deadline=None)
    def test_all_matrix_entries_finite_nonnegative(self, world):
        stats, load = world
        matrix = CostMatrix.compute(stats, load)
        for start, end in matrix.rows():
            for organization in matrix.organizations:
                value = matrix.cost(start, end, organization)
                assert value >= 0.0
                assert value < float("inf")

    @given(world=random_world())
    @settings(max_examples=25, deadline=None)
    def test_optimizers_agree_on_random_statistics(self, world):
        stats, load = world
        matrix = CostMatrix.compute(stats, load)
        bnb = optimize(matrix)
        assert bnb.cost == pytest.approx(exhaustive_search(matrix).cost)
        assert bnb.cost == pytest.approx(dynamic_program(matrix).cost)

    @given(world=random_world(), factor=st.floats(min_value=1.1, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_costs_monotone_in_workload(self, world, factor):
        stats, load = world
        for organization in CONFIGURABLE_ORGANIZATIONS:
            base = subpath_processing_cost(
                stats, load, 1, stats.length, organization
            )
            scaled = subpath_processing_cost(
                stats, load.scaled(factor), 1, stats.length, organization
            )
            assert scaled.total >= base.total - 1e-9

    @given(world=random_world())
    @settings(max_examples=20, deadline=None)
    def test_optimal_never_worse_than_any_single_index(self, world):
        stats, load = world
        matrix = CostMatrix.compute(stats, load)
        best = optimize(matrix).cost
        for organization in matrix.organizations:
            assert best <= matrix.cost(1, stats.length, organization) + 1e-9

    @given(world=random_world(), selectivity=st.floats(min_value=0.01, max_value=0.9))
    @settings(max_examples=15, deadline=None)
    def test_range_workloads_cost_at_least_equality(self, world, selectivity):
        stats, load = world
        for organization in (IndexOrganization.NIX, IndexOrganization.MX):
            equality = subpath_processing_cost(
                stats, load, 1, stats.length, organization
            )
            ranged = subpath_processing_cost(
                stats,
                load,
                1,
                stats.length,
                organization,
                range_selectivity=selectivity,
            )
            assert ranged.total >= equality.total * 0.99
