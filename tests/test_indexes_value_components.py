"""Tests for SIX and IIX (the single-level operational indexes)."""

import pytest

from repro.errors import IndexError_
from repro.indexes.base import IndexContext
from repro.indexes.inherited import InheritedIndex
from repro.indexes.simple import SimpleIndex
from repro.model.examples import populate_vehicle_database
from repro.storage.pager import Pager
from repro.storage.sizes import SizeModel


def make_context(vehicle_db, pexa, start, end):
    sizes = SizeModel()
    return IndexContext(
        database=vehicle_db,
        path=pexa,
        start=start,
        end=end,
        pager=Pager(page_size=sizes.page_size),
        sizes=sizes,
    )


class TestSimpleIndex:
    def test_six_indexes_only_its_class(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa, 2, 2)
        six = SimpleIndex(context, class_name="Vehicle")
        fiat = next(
            c.oid for c in vehicle_db.extent("Company")
            if c.values["name"] == "Fiat"
        )
        oids = six.lookup(fiat, "Vehicle")
        # Only Vehicle[k] references Fiat directly in class Vehicle (not Bus).
        assert all(oid.class_name == "Vehicle" for oid in oids)
        assert len(oids) == 1

    def test_six_rejects_foreign_target(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa, 2, 2)
        six = SimpleIndex(context, class_name="Vehicle")
        with pytest.raises(IndexError_):
            six.lookup("x", "Bus")

    def test_six_requires_length_one_subpath(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa, 1, 2)
        with pytest.raises(IndexError_):
            SimpleIndex(context)

    def test_six_maintenance_round_trip(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa, 1, 1)
        six = SimpleIndex(context)  # Person.owns
        vehicle = next(vehicle_db.extent("Vehicle")).oid
        oid = vehicle_db.create("Person", name="N", age=1, owns=[vehicle])
        six.on_insert(vehicle_db.get(oid))
        assert oid in six.lookup(vehicle, "Person")
        six.on_delete(vehicle_db.get(oid))
        vehicle_db.delete(oid)
        assert oid not in six.lookup(vehicle, "Person")
        six.check_consistency()

    def test_six_ignores_other_classes(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa, 2, 2)
        six = SimpleIndex(context, class_name="Vehicle")
        bus = next(vehicle_db.extent("Bus"))
        six.on_insert(bus)  # no-op: Bus is not Vehicle's own extent
        six.check_consistency()

    def test_remove_key(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa, 2, 2)
        six = SimpleIndex(context, class_name="Vehicle")
        fiat = next(
            c.oid for c in vehicle_db.extent("Company")
            if c.values["name"] == "Fiat"
        )
        assert six.remove_key(fiat) is True
        assert six.lookup(fiat, "Vehicle") == set()
        assert six.remove_key(fiat) is False


class TestInheritedIndex:
    def test_iix_covers_whole_hierarchy(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa, 2, 2)
        iix = InheritedIndex(context)
        fiat = next(
            c.oid for c in vehicle_db.extent("Company")
            if c.values["name"] == "Fiat"
        )
        # MIX example in the paper: (Company[j]=Fiat, {Vehicle[k], Bus[i], Truck[i]}).
        oids = iix.lookup_hierarchy(fiat)
        assert {oid.class_name for oid in oids} == {"Vehicle", "Bus", "Truck"}
        assert len(oids) == 3

    def test_iix_class_scoped_lookup(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa, 2, 2)
        iix = InheritedIndex(context)
        fiat = next(
            c.oid for c in vehicle_db.extent("Company")
            if c.values["name"] == "Fiat"
        )
        buses = iix.lookup(fiat, "Bus")
        assert all(oid.class_name == "Bus" for oid in buses)
        assert len(buses) == 1

    def test_iix_subclass_inclusive_lookup(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa, 2, 2)
        iix = InheritedIndex(context)
        fiat = next(
            c.oid for c in vehicle_db.extent("Company")
            if c.values["name"] == "Fiat"
        )
        everything = iix.lookup(fiat, "Vehicle", include_subclasses=True)
        assert len(everything) == 3

    def test_iix_rejects_foreign_class(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa, 2, 2)
        iix = InheritedIndex(context)
        with pytest.raises(IndexError_):
            iix.lookup("x", "Person")

    def test_iix_maintenance_round_trip(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa, 2, 2)
        iix = InheritedIndex(context)
        daf = next(
            c.oid for c in vehicle_db.extent("Company")
            if c.values["name"] == "Daf"
        )
        oid = vehicle_db.create(
            "Truck",
            vid=77,
            color="Silver",
            max_speed=140,
            man=daf,
            weight=9000,
            availability="always",
        )
        iix.on_insert(vehicle_db.get(oid))
        assert oid in iix.lookup(daf, "Truck")
        iix.check_consistency()
        iix.on_delete(vehicle_db.get(oid))
        vehicle_db.delete(oid)
        assert oid not in iix.lookup(daf, "Truck")
        iix.check_consistency()

    def test_consistency_detects_corruption(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa, 2, 2)
        iix = InheritedIndex(context)
        vehicle = next(vehicle_db.extent("Vehicle"))
        iix.on_delete(vehicle)  # remove from index but not from database
        with pytest.raises(IndexError_):
            iix.check_consistency()
