"""Tests for the subpath processing cost (Definition 4.2)."""

import pytest

from repro.costmodel.subpath import build_model, subpath_processing_cost
from repro.errors import CostModelError
from repro.organizations import IndexOrganization
from repro.workload.load import LoadDistribution, LoadTriplet


class TestComponents:
    def test_components_sum_to_total(self, fig7_stats, fig7_load):
        cost = subpath_processing_cost(
            fig7_stats, fig7_load, 1, 2, IndexOrganization.NIX
        )
        assert cost.total == pytest.approx(
            cost.query + cost.insert + cost.delete + cost.cmd
        )

    def test_all_components_nonnegative(self, fig7_stats, fig7_load):
        for organization in (
            IndexOrganization.MX,
            IndexOrganization.MIX,
            IndexOrganization.NIX,
        ):
            for start in range(1, 5):
                for end in range(start, 5):
                    cost = subpath_processing_cost(
                        fig7_stats, fig7_load, start, end, organization
                    )
                    assert cost.query >= 0
                    assert cost.insert >= 0
                    assert cost.delete >= 0
                    assert cost.cmd >= 0

    def test_cmd_zero_for_path_suffix(self, fig7_stats, fig7_load):
        # A subpath ending at A_n has no following class.
        cost = subpath_processing_cost(
            fig7_stats, fig7_load, 3, 4, IndexOrganization.MX
        )
        assert cost.cmd == 0.0

    def test_cmd_positive_when_following_class_deletes(self, fig7_stats, fig7_load):
        # Subpath ending at man (position 2): Company deletions (0.1) follow.
        cost = subpath_processing_cost(
            fig7_stats, fig7_load, 1, 2, IndexOrganization.NIX
        )
        assert cost.cmd > 0

    def test_organization_recorded(self, fig7_stats, fig7_load):
        cost = subpath_processing_cost(
            fig7_stats, fig7_load, 2, 3, IndexOrganization.MIX
        )
        assert cost.organization is IndexOrganization.MIX
        assert (cost.start, cost.end) == (2, 3)


class TestWorkloadLinearity:
    def test_cost_scales_linearly_with_load(self, fig7_stats, fig7_load):
        base = subpath_processing_cost(
            fig7_stats, fig7_load, 1, 4, IndexOrganization.MIX
        )
        doubled = subpath_processing_cost(
            fig7_stats, fig7_load.scaled(2.0), 1, 4, IndexOrganization.MIX
        )
        assert doubled.total == pytest.approx(2 * base.total)

    def test_zero_load_zero_cost(self, fig7_stats, pexa):
        empty = LoadDistribution(pexa, {})
        cost = subpath_processing_cost(fig7_stats, empty, 1, 4, IndexOrganization.NIX)
        assert cost.total == 0.0

    def test_query_only_load_has_no_maintenance(self, fig7_stats, pexa):
        load = LoadDistribution.uniform(pexa, query=1.0)
        cost = subpath_processing_cost(fig7_stats, load, 1, 4, IndexOrganization.MX)
        assert cost.query > 0
        assert cost.insert == 0.0
        assert cost.delete == 0.0
        assert cost.cmd == 0.0

    def test_update_only_load_has_no_query_cost(self, fig7_stats, pexa):
        load = LoadDistribution(
            pexa,
            {name: LoadTriplet(insert=0.1, delete=0.1) for name in pexa.scope},
        )
        cost = subpath_processing_cost(fig7_stats, load, 1, 4, IndexOrganization.MX)
        assert cost.query == 0.0
        assert cost.insert > 0
        assert cost.delete > 0


class TestProbeSemantics:
    def test_upstream_queries_charge_downstream_subpaths(self, fig7_stats, pexa):
        """A query on Person must pay on the Division subpath too."""
        load = LoadDistribution(pexa, {"Person": LoadTriplet(query=1.0)})
        cost = subpath_processing_cost(fig7_stats, load, 4, 4, IndexOrganization.MX)
        assert cost.query > 0

    def test_downstream_queries_free_for_upstream_subpaths(self, fig7_stats, pexa):
        """A query on Division costs nothing on the Person.owns subpath."""
        load = LoadDistribution(pexa, {"Division": LoadTriplet(query=1.0)})
        cost = subpath_processing_cost(fig7_stats, load, 1, 1, IndexOrganization.MX)
        assert cost.query == 0.0

    def test_non_final_subpaths_pay_fanin_probes(self, fig7_stats, pexa):
        """The oid fan-in makes early subpaths pay more per query."""
        load = LoadDistribution(pexa, {"Person": LoadTriplet(query=1.0)})
        early = subpath_processing_cost(
            fig7_stats, load, 1, 1, IndexOrganization.MX
        )
        # 56 probe keys at Person.owns vs 1 at a suffix subpath.
        single_probe_model = build_model(fig7_stats, 1, 1, IndexOrganization.MX)
        assert early.query > single_probe_model.query_cost(1, "Person", 1.0)

    def test_mismatched_path_rejected(self, fig7_stats, pe):
        load = LoadDistribution.uniform(pe)
        with pytest.raises(CostModelError):
            subpath_processing_cost(fig7_stats, load, 1, 2, IndexOrganization.MX)


class TestModelReuse:
    def test_prebuilt_model_used(self, fig7_stats, fig7_load):
        model = build_model(fig7_stats, 1, 2, IndexOrganization.NIX)
        first = subpath_processing_cost(
            fig7_stats, fig7_load, 1, 2, IndexOrganization.NIX, model=model
        )
        second = subpath_processing_cost(
            fig7_stats, fig7_load, 1, 2, IndexOrganization.NIX
        )
        assert first.total == pytest.approx(second.total)
