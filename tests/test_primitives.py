"""Tests for the CRL/CML/CRT/CMT/CRR cost primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.btree_shape import build_shape
from repro.costmodel.primitives import cml, cmt, crl, crr, crt
from repro.errors import CostModelError
from repro.storage.sizes import SizeModel

SIZES = SizeModel()

SMALL = build_shape(10_000, 100, 16, SIZES)  # fits in page
BIG = build_shape(1_000, 10_000, 16, SIZES)  # oversized (3 pages/record)


class TestCRL:
    def test_record_fits_costs_height(self):
        assert crl(SMALL) == float(SMALL.height)

    def test_oversized_costs_height_minus_one_plus_pr(self):
        assert crl(BIG) == float(BIG.height - 1 + BIG.record_pages)

    def test_oversized_with_explicit_pr(self):
        assert crl(BIG, pr=1.5) == float(BIG.height - 1) + 1.5

    def test_empty_index_costs_nothing(self):
        empty = build_shape(0, 100, 16, SIZES)
        assert crl(empty) == 0.0


class TestCML:
    def test_record_fits_costs_height_plus_rewrite(self):
        assert cml(SMALL) == float(SMALL.height + 1)

    def test_oversized_fetch_and_rewrite_modified_pages(self):
        assert cml(BIG) == float(BIG.height - 1 + 2 * BIG.record_pages)

    def test_explicit_pm(self):
        assert cml(BIG, pm=2.0) == float(BIG.height - 1) + 4.0

    def test_empty_index(self):
        empty = build_shape(0, 100, 16, SIZES)
        assert cml(empty) == 0.0


class TestCRT:
    def test_single_record_equals_crl(self):
        assert crt(SMALL, 1) == pytest.approx(crl(SMALL))
        assert crt(BIG, 1) == pytest.approx(crl(BIG))

    def test_zero_records(self):
        assert crt(SMALL, 0) == 0.0

    def test_request_clamped_to_record_count(self):
        assert crt(SMALL, 10**9) == crt(SMALL, SMALL.record_count)

    def test_negative_request_rejected(self):
        with pytest.raises(CostModelError):
            crt(SMALL, -1)

    def test_monotone_in_t(self):
        values = [crt(SMALL, t) for t in [1, 10, 100, 1000, 10_000]]
        assert values == sorted(values)

    def test_oversized_adds_t_times_pr(self):
        t = 10
        structural = crt(BIG, t) - t * BIG.record_pages
        assert structural > 0
        assert crt(BIG, t, pr=1.0) == pytest.approx(structural + t)

    def test_upper_bound_total_pages(self):
        total_pages = sum(level.pages for level in SMALL.levels)
        assert crt(SMALL, SMALL.record_count) <= total_pages + 1e-6


class TestCMT:
    def test_maintenance_exceeds_retrieval(self):
        for t in [1, 5, 50]:
            assert cmt(SMALL, t) > crt(SMALL, t)

    def test_record_fits_adds_leaf_rewrite_pass(self):
        t = 10
        leaf = SMALL.levels[0]
        from repro.costmodel.yao import npa

        expected = crt(SMALL, t) + npa(t, leaf.records, leaf.pages)
        assert cmt(SMALL, t) == pytest.approx(expected)

    def test_oversized_fetches_and_rewrites(self):
        t = 4
        structural = crt(BIG, t) - t * BIG.record_pages
        assert cmt(BIG, t) == pytest.approx(structural + 2 * t * BIG.record_pages)

    def test_zero(self):
        assert cmt(SMALL, 0) == 0.0


class TestCRR:
    def test_small_records_use_yao(self):
        aux = build_shape(5_000, 60, 8, SIZES)
        from repro.costmodel.yao import npa

        leaf = aux.levels[0]
        assert crr(aux, 10) == pytest.approx(npa(10, leaf.records, leaf.pages))

    def test_oversized_records_pay_per_record(self):
        aux = build_shape(100, 9_000, 8, SIZES)
        assert crr(aux, 5) == 5 * aux.record_pages

    def test_oversized_with_explicit_pm(self):
        aux = build_shape(100, 9_000, 8, SIZES)
        assert crr(aux, 5, pm=1.0) == 5.0

    def test_zero_records(self):
        aux = build_shape(5_000, 60, 8, SIZES)
        assert crr(aux, 0) == 0.0

    def test_empty_aux(self):
        empty = build_shape(0, 60, 8, SIZES)
        assert crr(empty, 3) == 0.0


class TestCrossPrimitiveProperties:
    @given(
        count=st.integers(min_value=1, max_value=100_000),
        length=st.integers(min_value=10, max_value=8_000),
        t=st.floats(min_value=0, max_value=1000),
    )
    @settings(max_examples=150, deadline=None)
    def test_all_costs_finite_and_nonnegative(self, count, length, t):
        shape = build_shape(count, length, 16, SIZES)
        for value in (crl(shape), cml(shape), crt(shape, t), cmt(shape, t)):
            assert value >= 0.0
            assert value < float("inf")

    @given(
        count=st.integers(min_value=10, max_value=50_000),
        t=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=80, deadline=None)
    def test_cmt_at_least_crt(self, count, t):
        shape = build_shape(count, 120, 16, SIZES)
        assert cmt(shape, t) >= crt(shape, t)
