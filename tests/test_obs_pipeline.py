"""End-to-end observability: the recorder threaded through the pipeline.

What PR 10 promises and these tests pin:

* ``advise`` under a :class:`~repro.obs.Recorder` produces the span tree
  the taxonomy in ``docs/OBSERVABILITY.md`` documents — ``advise`` at
  the root, the matrix build and every search nested inside it — and
  the core counters;
* worker-parallel matrix builds merge worker profiles into the parent:
  worker spans land on their own ``tid`` lanes and the merged
  ``matrix.rows_priced`` total equals the serial build's;
* the what-if session, multipath optimizer, continuous advisor and the
  ground-truth backend all record under their documented names;
* the CLI ``--profile`` flag writes a file that
  ``tools/check_trace.py`` validates (the same gate the ``obs`` CI job
  runs), and two ``FakeClock``-driven runs export byte for byte.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.cli import main as cli_main
from repro.core.advisor import advise
from repro.core.cost_matrix import CostMatrix
from repro.core.multipath import PathWorkload, optimize_multipath
from repro.costmodel.params import ClassStats, PathStatistics
from repro.io import spec_to_dict
from repro.obs import Recorder, dumps_profile, profile_document
from repro.paper import figure7_load, figure7_statistics
from repro.resilience import FakeClock
from repro.synth import LevelSpec, linear_path_schema, populate_path_database
from repro.trace import ContinuousAdvisor, generate_trace
from repro.whatif import AdvisorSession, Perturbation
from repro.workload.load import LoadDistribution

ROOT = pathlib.Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_trace", ROOT / "tools" / "check_trace.py"
)
check_trace = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_trace)


def make_world(length=5, objects=40_000):
    levels = [
        LevelSpec(f"L{i}", subclasses=(0, 1, 0, 2, 0)[i % 5])
        for i in range(length)
    ]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    count = objects
    for position in range(1, length + 1):
        for member in path.hierarchy_at(position):
            per_class[member] = ClassStats(
                objects=count, distinct=max(5, count // 4), fanout=1.0
            )
        count = max(50, count // 3)
    stats = PathStatistics(path, per_class)
    load = LoadDistribution.uniform(path, query=0.2, insert=0.1, delete=0.05)
    return stats, load


def span_names(recorder):
    return [span["name"] for span in recorder.spans]


class TestAdviseSpans:
    def test_nested_span_tree_and_counters(self):
        stats, load = make_world()
        recorder = Recorder()
        advise(stats, load, recorder=recorder)
        names = span_names(recorder)
        assert "advise" in names
        assert "matrix.build" in names
        assert any(name.startswith("search.") for name in names)
        root = next(s for s in recorder.spans if s["name"] == "advise")
        build = next(s for s in recorder.spans if s["name"] == "matrix.build")
        assert root["depth"] == 0
        assert build["depth"] > 0
        counters = recorder.profile()["metrics"]["counters"]
        assert counters["advise.calls"] == 1
        assert counters["matrix.builds"] == 1
        assert counters["matrix.rows_priced"] == stats.length * (
            stats.length + 1
        ) // 2

    def test_default_recorder_records_nothing(self):
        stats, load = make_world(length=4)
        result = advise(stats, load)
        assert result.optimal.cost > 0


class TestWorkerAggregation:
    def test_parallel_build_merges_worker_profiles(self):
        stats, load = make_world(length=8)
        serial = Recorder()
        CostMatrix.compute(stats, load, workers=0, recorder=serial)
        parallel = Recorder()
        CostMatrix.compute(stats, load, workers=2, recorder=parallel)
        serial_rows = serial.profile()["metrics"]["counters"][
            "matrix.rows_priced"
        ]
        parallel_rows = parallel.profile()["metrics"]["counters"][
            "matrix.rows_priced"
        ]
        assert serial_rows == parallel_rows == 36
        worker_tids = {s["tid"] for s in parallel.spans if s["tid"] != 0}
        assert worker_tids, "no worker spans were absorbed"
        assert any(
            s["name"] == "matrix.worker_batch" and s["tid"] in worker_tids
            for s in parallel.spans
        )
        # Worker lanes render distinctly in the Chrome trace.
        document = profile_document(parallel)
        assert check_trace.validate(document) == []


class TestSessionSpans:
    def test_apply_and_advise_record(self):
        stats, load = make_world()
        recorder = Recorder()
        session = AdvisorSession(stats, load, recorder=recorder)
        new_stats, new_load = Perturbation("L4", "query", "scale", 2.0).apply(
            stats, load
        )
        session.apply(new_stats, new_load)
        session.advise()
        session.advise()  # cached
        names = span_names(recorder)
        assert "session.apply" in names
        assert "session.advise" in names
        counters = recorder.profile()["metrics"]["counters"]
        assert counters["whatif.applied_steps"] == 1
        assert counters["whatif.advise_cache_hits"] == 1
        assert counters["matrix.recomputes"] == 1


class TestMultipathSpans:
    def test_optimize_records(self):
        stats_a, load_a = make_world(length=4)
        stats_b, load_b = make_world(length=3)
        recorder = Recorder()
        optimize_multipath(
            [
                PathWorkload(stats_a, load_a),
                PathWorkload(stats_b, load_b),
            ],
            recorder=recorder,
        )
        names = span_names(recorder)
        assert "multipath.optimize" in names
        assert "multipath.candidates" in names
        assert "multipath.joint" in names
        counters = recorder.profile()["metrics"]["counters"]
        assert counters["multipath.optimizations"] == 1


class TestReplaySpans:
    def test_continuous_advisor_counts_events(self):
        stats, load = make_world()
        recorder = Recorder()
        advisor = ContinuousAdvisor(
            stats,
            load,
            window=40,
            slide=20,
            threshold=0.1,
            hysteresis=1,
            recorder=recorder,
        )
        trace = generate_trace(stats.path, "mixed_drift", 200, seed=3)
        for event in trace:
            advisor.push(event)
        counters = recorder.profile()["metrics"]["counters"]
        assert counters["replay.events"] == 200
        assert counters["replay.windows"] >= 1
        if advisor.readvise_count:
            assert counters["replay.readvises"] == advisor.readvise_count
            assert "replay.readvise" in span_names(recorder)


class TestBackendSpans:
    def test_replay_trace_records(self):
        from repro.backend import replay_trace
        from repro.core.configuration import IndexConfiguration
        from repro.organizations import IndexOrganization

        schema, path = linear_path_schema(
            [LevelSpec("P"), LevelSpec("V"), LevelSpec("D")]
        )
        specs = {
            "P": ClassStats(objects=30, distinct=15, fanout=2),
            "V": ClassStats(objects=20, distinct=8, fanout=1),
            "D": ClassStats(objects=12, distinct=5, fanout=2),
        }
        database = populate_path_database(schema, path, specs, seed=7)
        events = generate_trace(path, "stationary", 30, seed=1)
        recorder = Recorder()
        replay_trace(
            database,
            path,
            IndexConfiguration.whole_path(3, IndexOrganization.NIX),
            events,
            recorder=recorder,
        )
        names = span_names(recorder)
        assert "backend.materialize" in names
        assert "backend.replay" in names
        counters = recorder.profile()["metrics"]["counters"]
        assert counters["backend.replay.events"] == 30


class TestDeterministicExport:
    def run_once(self):
        stats, load = make_world()
        recorder = Recorder(FakeClock())
        advise(stats, load, recorder=recorder)
        return dumps_profile(recorder, meta={"command": "advise"})

    def test_fake_clock_profiles_are_byte_identical(self):
        assert self.run_once() == self.run_once()


class TestCliProfile:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        document = spec_to_dict(figure7_statistics(), figure7_load())
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        return str(path)

    def test_advise_profile_validates(self, spec_path, tmp_path, capsys):
        profile = tmp_path / "profile.json"
        code = cli_main(
            ["advise", spec_path, "--profile", str(profile), "--stats"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "observability stats" in output
        document = json.loads(profile.read_text(encoding="utf-8"))
        assert document["meta"] == {"command": "advise"}
        failures = check_trace.validate(
            document, required_spans=("advise", "matrix.build")
        )
        assert failures == []

    def test_whatif_profile_validates(self, spec_path, tmp_path):
        profile = tmp_path / "profile.json"
        code = cli_main(
            [
                "whatif",
                spec_path,
                "--perturb",
                "Division:delete*2",
                "--profile",
                str(profile),
            ]
        )
        assert code == 0
        document = json.loads(profile.read_text(encoding="utf-8"))
        failures = check_trace.validate(
            document, required_spans=("session.apply", "session.advise")
        )
        assert failures == []
