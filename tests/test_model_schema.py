"""Tests for repro.model.schema."""

import pytest

from repro.errors import SchemaError
from repro.model.attribute import AtomicType
from repro.model.schema import ClassDef, Schema, atomic, reference


def make_hierarchy_schema() -> Schema:
    schema = Schema()
    schema.define("Company", [atomic("name", AtomicType.STRING)])
    schema.define("Vehicle", [reference("man", "Company")])
    schema.define("Bus", [atomic("height", AtomicType.INTEGER)], superclass="Vehicle")
    schema.define("Minibus", [atomic("seats", AtomicType.INTEGER)], superclass="Bus")
    schema.define("Truck", [atomic("weight", AtomicType.INTEGER)], superclass="Vehicle")
    return schema.freeze()


class TestClassDef:
    def test_declare_duplicate_attribute_rejected(self):
        class_def = ClassDef("C")
        class_def.declare(atomic("a", AtomicType.INTEGER))
        with pytest.raises(SchemaError):
            class_def.declare(atomic("a", AtomicType.STRING))

    def test_mismatched_dict_key_rejected(self):
        with pytest.raises(SchemaError):
            ClassDef("C", attributes={"x": atomic("y", AtomicType.INTEGER)})

    def test_invalid_class_name_rejected(self):
        with pytest.raises(SchemaError):
            ClassDef("not a name")

    def test_str_includes_superclass(self):
        class_def = ClassDef("Bus", superclass="Vehicle")
        assert "(Vehicle)" in str(class_def)


class TestSchemaConstruction:
    def test_duplicate_class_rejected(self):
        schema = Schema()
        schema.define("C")
        with pytest.raises(SchemaError):
            schema.define("C")

    def test_unknown_superclass_rejected_at_freeze(self):
        schema = Schema()
        schema.define("Bus", superclass="Vehicle")
        with pytest.raises(SchemaError):
            schema.freeze()

    def test_unknown_reference_domain_rejected_at_freeze(self):
        schema = Schema()
        schema.define("Person", [reference("owns", "Vehicle")])
        with pytest.raises(SchemaError):
            schema.freeze()

    def test_inheritance_cycle_rejected(self):
        schema = Schema()
        schema.add_class(ClassDef("A", superclass="B"))
        schema.add_class(ClassDef("B", superclass="A"))
        with pytest.raises(SchemaError):
            schema.freeze()

    def test_redeclared_inherited_attribute_rejected(self):
        schema = Schema()
        schema.define("Vehicle", [atomic("color", AtomicType.STRING)])
        schema.define("Bus", [atomic("color", AtomicType.STRING)], superclass="Vehicle")
        with pytest.raises(SchemaError):
            schema.freeze()

    def test_add_after_freeze_rejected(self):
        schema = Schema()
        schema.define("C")
        schema.freeze()
        with pytest.raises(SchemaError):
            schema.define("D")

    def test_freeze_is_idempotent(self):
        schema = Schema()
        schema.define("C")
        assert schema.freeze() is schema.freeze()

    def test_hierarchy_queries_require_freeze(self):
        schema = Schema()
        schema.define("C")
        with pytest.raises(SchemaError):
            schema.hierarchy("C")


class TestHierarchyQueries:
    def test_direct_subclasses(self):
        schema = make_hierarchy_schema()
        assert schema.direct_subclasses("Vehicle") == ["Bus", "Truck"]

    def test_hierarchy_is_transitive_with_root_first(self):
        schema = make_hierarchy_schema()
        hierarchy = schema.hierarchy("Vehicle")
        assert hierarchy[0] == "Vehicle"
        assert set(hierarchy) == {"Vehicle", "Bus", "Minibus", "Truck"}

    def test_hierarchy_of_leaf_is_singleton(self):
        schema = make_hierarchy_schema()
        assert schema.hierarchy("Truck") == ["Truck"]

    def test_hierarchy_size(self):
        schema = make_hierarchy_schema()
        assert schema.hierarchy_size("Vehicle") == 4
        assert schema.hierarchy_size("Bus") == 2

    def test_superclasses_chain(self):
        schema = make_hierarchy_schema()
        assert schema.superclasses("Minibus") == ["Bus", "Vehicle"]
        assert schema.superclasses("Vehicle") == []

    def test_root_of(self):
        schema = make_hierarchy_schema()
        assert schema.root_of("Minibus") == "Vehicle"
        assert schema.root_of("Company") == "Company"

    def test_is_subclass_of(self):
        schema = make_hierarchy_schema()
        assert schema.is_subclass_of("Minibus", "Vehicle")
        assert schema.is_subclass_of("Vehicle", "Vehicle")
        assert not schema.is_subclass_of("Vehicle", "Minibus")
        assert not schema.is_subclass_of("Company", "Vehicle")


class TestAttributeResolution:
    def test_inherited_attribute_resolves(self):
        schema = make_hierarchy_schema()
        attribute = schema.resolve_attribute("Minibus", "man")
        assert attribute.domain == "Company"

    def test_own_attribute_resolves(self):
        schema = make_hierarchy_schema()
        assert schema.resolve_attribute("Bus", "height").name == "height"

    def test_missing_attribute_raises(self):
        schema = make_hierarchy_schema()
        with pytest.raises(SchemaError):
            schema.resolve_attribute("Company", "man")

    def test_all_attributes_merges_chain(self):
        schema = make_hierarchy_schema()
        merged = schema.all_attributes("Minibus")
        assert set(merged) == {"man", "height", "seats"}

    def test_unknown_class_raises(self):
        schema = make_hierarchy_schema()
        with pytest.raises(SchemaError):
            schema.get("Nope")


class TestAggregationEdges:
    def test_edges_listed(self):
        schema = make_hierarchy_schema()
        assert ("Vehicle", "man", "Company") in schema.aggregation_edges()

    def test_len_iter_contains(self):
        schema = make_hierarchy_schema()
        assert len(schema) == 5
        assert "Bus" in schema
        assert {c.name for c in schema} == {
            "Company",
            "Vehicle",
            "Bus",
            "Minibus",
            "Truck",
        }

    def test_describe_mentions_every_class(self):
        schema = make_hierarchy_schema()
        text = schema.describe()
        for name in schema.class_names():
            assert name in text
