"""Tests for the range-predicate extension (analytic + operational)."""

import pytest

from repro.core.configuration import IndexConfiguration
from repro.core.cost_matrix import CostMatrix
from repro.costmodel.btree_shape import build_shape
from repro.costmodel.ranges import range_scan_cost
from repro.costmodel.subpath import build_model, subpath_processing_cost
from repro.errors import CostModelError
from repro.indexes.manager import ConfigurationIndexSet
from repro.model.examples import populate_vehicle_database
from repro.organizations import IndexOrganization
from repro.storage.sizes import SizeModel

MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX
PX = IndexOrganization.PX
NX = IndexOrganization.NX
NONE = IndexOrganization.NONE

SIZES = SizeModel()


class TestRangeScanPrimitive:
    def test_zero_selectivity(self):
        shape = build_shape(10_000, 100, 16, SIZES)
        assert range_scan_cost(shape, 0.0) == 0.0

    def test_full_scan_touches_all_leaves(self):
        shape = build_shape(10_000, 100, 16, SIZES)
        cost = range_scan_cost(shape, 1.0)
        assert cost >= shape.leaf_pages

    def test_point_range_close_to_crl(self):
        from repro.costmodel.primitives import crl

        shape = build_shape(10_000, 100, 16, SIZES)
        tiny = range_scan_cost(shape, 1e-6)
        assert tiny == pytest.approx(crl(shape), abs=1.0)

    def test_monotone_in_selectivity(self):
        shape = build_shape(10_000, 100, 16, SIZES)
        costs = [range_scan_cost(shape, s) for s in (0.01, 0.1, 0.5, 1.0)]
        assert costs == sorted(costs)

    def test_contiguous_cheaper_than_equality_probes(self):
        from repro.costmodel.primitives import crt

        shape = build_shape(10_000, 100, 16, SIZES)
        selectivity = 0.2
        records = selectivity * shape.record_count
        assert range_scan_cost(shape, selectivity) < crt(shape, records)

    def test_oversized_records_paid_per_record(self):
        shape = build_shape(100, 10_000, 16, SIZES)
        cost = range_scan_cost(shape, 0.5)
        assert cost >= 0.5 * shape.record_count * shape.record_pages

    def test_invalid_selectivity_rejected(self):
        shape = build_shape(100, 100, 16, SIZES)
        with pytest.raises(CostModelError):
            range_scan_cost(shape, 1.5)
        with pytest.raises(CostModelError):
            range_scan_cost(shape, -0.1)


class TestAnalyticRangeCosts:
    @pytest.mark.parametrize("organization", [MX, MIX, NIX, PX, NX])
    def test_range_cost_monotone_in_selectivity(self, fig7_stats, organization):
        model = build_model(fig7_stats, 1, 4, organization)
        costs = [
            model.range_query_cost(1, "Person", s) for s in (0.01, 0.1, 0.5)
        ]
        assert costs == sorted(costs)

    def test_nix_range_walk_beats_mx_probe_chain(self, fig7_stats):
        """Where NIX records stay narrow (the Comp.divs.name subpath), the
        contiguous primary walk beats MX's per-value oid probing."""
        nix = build_model(fig7_stats, 3, 4, NIX)
        mx = build_model(fig7_stats, 3, 4, MX)
        assert nix.range_query_cost(3, "Company", 0.3) < mx.range_query_cost(
            3, "Company", 0.3
        )

    def test_wide_records_make_nix_ranges_expensive(self, fig7_stats):
        """On the full path the NIX records are page-spanning: a wide
        range pays per-record page costs and loses to MX — the flip side
        of the same coin."""
        nix = build_model(fig7_stats, 1, 4, NIX)
        mx = build_model(fig7_stats, 1, 4, MX)
        assert nix.range_query_cost(1, "Person", 0.3) > mx.range_query_cost(
            1, "Person", 0.3
        )

    def test_subpath_cost_with_ranges(self, fig7_stats, fig7_load):
        equality = subpath_processing_cost(fig7_stats, fig7_load, 1, 4, NIX)
        ranged = subpath_processing_cost(
            fig7_stats, fig7_load, 1, 4, NIX, range_selectivity=0.2
        )
        assert ranged.query > equality.query
        assert ranged.insert == pytest.approx(equality.insert)
        assert ranged.delete == pytest.approx(equality.delete)

    def test_invalid_selectivity_rejected(self, fig7_stats, fig7_load):
        with pytest.raises(CostModelError):
            subpath_processing_cost(
                fig7_stats, fig7_load, 1, 4, NIX, range_selectivity=2.0
            )

    def test_matrix_with_ranges(self, fig7_stats, fig7_load):
        matrix = CostMatrix.compute(
            fig7_stats, fig7_load, range_selectivity=0.25
        )
        equality = CostMatrix.compute(fig7_stats, fig7_load)
        for start, end in matrix.rows():
            for organization in matrix.organizations:
                assert matrix.cost(start, end, organization) >= equality.cost(
                    start, end, organization
                ) * 0.99

    def test_advise_with_ranges(self, fig7_stats, fig7_load):
        from repro.core.advisor import advise

        report = advise(fig7_stats, fig7_load, range_selectivity=0.3)
        assert report.optimal.cost > 0


RANGE_CONFIGS = [
    IndexConfiguration.whole_path(4, NIX),
    IndexConfiguration.whole_path(4, MX),
    IndexConfiguration.whole_path(4, MIX),
    IndexConfiguration.whole_path(4, PX),
    IndexConfiguration.whole_path(4, NX),
    IndexConfiguration.whole_path(4, NONE),
    IndexConfiguration.of((1, 2, NIX), (3, 4, MX)),
    IndexConfiguration.of((1, 1, MX), (2, 4, PX)),
]


class TestOperationalRangeQueries:
    @pytest.mark.parametrize("config", RANGE_CONFIGS, ids=lambda c: c.render())
    def test_all_organizations_agree(self, vehicle_schema, pexa, config):
        database = populate_vehicle_database(vehicle_schema)
        indexes = ConfigurationIndexSet(database, pexa, config)
        # All division names from 'Daf-cabs' to 'Fiat-movings' (sorted
        # string order) — covers Daf and Fiat divisions.
        result = indexes.range_query("Daf-cabs", "Fiat-movings", "Person")
        names = {database.get(oid).values["name"] for oid in result}
        assert names == {"Piet", "Sonia", "Henk"}

    def test_range_narrower_than_full(self, vehicle_schema, pexa):
        database = populate_vehicle_database(vehicle_schema)
        indexes = ConfigurationIndexSet(
            database, pexa, IndexConfiguration.whole_path(4, NIX)
        )
        narrow = indexes.range_query("Daf-cabs", "Daf-logistics", "Person")
        wide = indexes.range_query("A", "Z", "Person")
        assert narrow <= wide
        assert len(wide) == 4  # every person reaches some division name

    def test_range_on_intermediate_class(self, vehicle_schema, pexa):
        database = populate_vehicle_database(vehicle_schema)
        indexes = ConfigurationIndexSet(
            database, pexa, IndexConfiguration.whole_path(4, MIX)
        )
        companies = indexes.range_query("Fiat-design", "Fiat-movings", "Company")
        assert len(companies) == 1

    def test_measured_range_query(self, vehicle_schema, pexa):
        from repro.indexes.executor import PathQueryExecutor

        database = populate_vehicle_database(vehicle_schema)
        indexes = ConfigurationIndexSet(
            database, pexa, IndexConfiguration.whole_path(4, NIX)
        )
        executor = PathQueryExecutor(indexes)
        measured = executor.range_query("A", "Z", "Person")
        assert measured.stats.total >= 1
        assert len(measured.oids) == 4
