"""Property-based stress tests: random operation sequences keep every
organization consistent and mutually agreeing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configuration import IndexConfiguration
from repro.costmodel.params import ClassStats
from repro.indexes.manager import ConfigurationIndexSet
from repro.organizations import IndexOrganization
from repro.synth import LevelSpec, linear_path_schema, populate_path_database

MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX
PX = IndexOrganization.PX
NX = IndexOrganization.NX

CONFIGS = [
    IndexConfiguration.whole_path(3, NIX),
    IndexConfiguration.whole_path(3, MX),
    IndexConfiguration.whole_path(3, MIX),
    IndexConfiguration.whole_path(3, PX),
    IndexConfiguration.whole_path(3, NX),
    IndexConfiguration.of((1, 1, MX), (2, 3, NIX)),
    IndexConfiguration.of((1, 2, NIX), (3, 3, MIX)),
    IndexConfiguration.of((1, 2, PX), (3, 3, MX)),
]


def build_world(seed: int):
    schema, path = linear_path_schema(
        [
            LevelSpec("P", multi_valued=True),
            LevelSpec("V", subclasses=1, multi_valued=False),
            LevelSpec("D", multi_valued=True),
        ]
    )
    specs = {
        "P": ClassStats(objects=30, distinct=15, fanout=2),
        "V": ClassStats(objects=20, distinct=8, fanout=1),
        "VSub1": ClassStats(objects=10, distinct=6, fanout=1),
        "D": ClassStats(objects=12, distinct=5, fanout=2),
    }
    database = populate_path_database(schema, path, specs, seed=seed)
    return schema, path, database


operation_list = st.lists(
    st.tuples(
        st.sampled_from(
            ["delete_P", "delete_V", "delete_D", "insert_P", "query", "range"]
        ),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=25,
)


@given(seed=st.integers(min_value=0, max_value=50), ops=operation_list)
@settings(max_examples=25, deadline=None)
def test_random_operations_keep_all_organizations_consistent(seed, ops):
    """After any operation sequence every configuration stays consistent
    and all configurations answer queries identically."""
    worlds = []
    for config in CONFIGS:
        schema, path, database = build_world(seed)
        worlds.append(ConfigurationIndexSet(database, path, config))

    reference = worlds[0]

    def pick(extent, number):
        items = sorted(extent, key=lambda i: i.oid)
        if not items:
            return None
        return items[number % len(items)].oid

    for action, number in ops:
        if action in ("query", "range"):
            values = sorted(
                {
                    v
                    for d in reference.database.extent("D")
                    for v in d.value_list("label")
                },
                key=repr,
            )
            if not values:
                continue
            if action == "query":
                value = values[number % len(values)]
                results = [w.query(value, "P") for w in worlds]
            else:
                low = values[number % len(values)]
                high = values[min(len(values) - 1, number % len(values) + 2)]
                if high < low:  # type: ignore[operator]
                    low, high = high, low
                results = [w.range_query(low, high, "P") for w in worlds]
            serialized = [
                sorted((o.class_name, o.serial) for o in r) for r in results
            ]
            assert all(s == serialized[0] for s in serialized)
            continue
        if action == "insert_P":
            target_pool = sorted(
                (i.oid for i in reference.database.hierarchy_extent("V")),
            )
            if not target_pool:
                continue
            chosen = [target_pool[number % len(target_pool)]]
            for world in worlds:
                local = [
                    type(chosen[0])(o.class_name, o.serial) for o in chosen
                ]
                world.insert("P", ref1=local, payload=number)
            continue
        class_name = action.split("_")[1]
        victim = pick(reference.database.extent(class_name), number)
        if victim is None:
            continue
        for world in worlds:
            if world.database.contains(victim):
                world.delete(victim)

    for world in worlds:
        world.check_consistency()


@given(seed=st.integers(min_value=0, max_value=200))
@settings(max_examples=20, deadline=None)
def test_fresh_indexes_agree_on_every_value(seed):
    """All organizations return identical answers on a fresh database."""
    schema, path, database = build_world(seed)
    worlds = [
        ConfigurationIndexSet(database, path, config) for config in CONFIGS[:3]
    ]
    values = sorted(
        {v for d in database.extent("D") for v in d.value_list("label")},
        key=repr,
    )
    for value in values:
        for target in ("P", "V", "VSub1", "D"):
            answers = [
                sorted(w.query(value, target), key=lambda o: (o.class_name, o.serial))
                for w in worlds
            ]
            assert all(a == answers[0] for a in answers)
