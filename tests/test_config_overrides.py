"""Tests for the pr/pm input-parameter overrides.

The paper: "we consider the values for pr_X and pm_X as input parameters"
(and distinguishes pmd/pmi for deletions vs insertions). Each override
must actually reach the corresponding formulas.
"""

import pytest

from repro.costmodel.params import ClassStats, CostModelConfig, PathStatistics
from repro.costmodel.subpath import build_model
from repro.organizations import IndexOrganization
from repro.paper import FIGURE7_ROWS, pexa_path


def stats_with_config(config: CostModelConfig) -> PathStatistics:
    per_class = {
        name: ClassStats(objects=n, distinct=d, fanout=nin)
        for name, (n, d, nin, _l) in FIGURE7_ROWS.items()
    }
    return PathStatistics(pexa_path(), per_class, config=config)


BASE = stats_with_config(CostModelConfig())


class TestOverrides:
    def test_pr_nix_changes_query_cost(self):
        # The NIX primary records span pages on the full path, so pr binds.
        cheap = stats_with_config(CostModelConfig(pr_nix=1.0))
        costly = stats_with_config(CostModelConfig(pr_nix=50.0))
        nix_cheap = build_model(cheap, 1, 4, IndexOrganization.NIX)
        nix_costly = build_model(costly, 1, 4, IndexOrganization.NIX)
        assert nix_costly.query_cost(1, "Person") > nix_cheap.query_cost(
            1, "Person"
        )

    def test_pmd_and_pmi_nix_are_independent(self):
        config = CostModelConfig(pmd_nix=40.0, pmi_nix=1.0)
        stats = stats_with_config(config)
        nix = build_model(stats, 1, 4, IndexOrganization.NIX)
        # Deletion uses pmd (expensive), insertion pmi (cheap): the gap
        # must widen against the symmetric default.
        default = build_model(BASE, 1, 4, IndexOrganization.NIX)
        override_gap = nix.delete_cost(1, "Person") - nix.insert_cost(1, "Person")
        default_gap = default.delete_cost(1, "Person") - default.insert_cost(
            1, "Person"
        )
        assert override_gap > default_gap

    def test_pm_mx_changes_maintenance(self):
        # Make Person's index records oversized so pm binds: tiny pages.
        from repro.storage.sizes import SizeModel

        sizes = SizeModel(page_size=64, atomic_key_size=8, oid_size=8, pointer_size=8)
        cheap = stats_with_config(CostModelConfig(sizes=sizes, pm_mx=1.0))
        costly = stats_with_config(CostModelConfig(sizes=sizes, pm_mx=20.0))
        mx_cheap = build_model(cheap, 1, 1, IndexOrganization.MX)
        mx_costly = build_model(costly, 1, 1, IndexOrganization.MX)
        assert mx_costly.insert_cost(1, "Person") > mx_cheap.insert_cost(
            1, "Person"
        )

    def test_ending_domain_distinct_caps_union(self):
        config = CostModelConfig(ending_domain_distinct=10.0)
        stats = stats_with_config(config)
        assert stats.distinct_union(4) == 10.0

    def test_overrides_do_not_leak_between_configs(self):
        overridden = stats_with_config(CostModelConfig(pr_nix=99.0))
        assert BASE.config.pr_nix is None
        assert overridden.config.pr_nix == 99.0
