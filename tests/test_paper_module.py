"""Tests for repro.paper (figure data) and repro.model.examples."""

import pytest

from repro.model.examples import populate_vehicle_database
from repro.paper import (
    EX51_EXPECTED,
    FIGURE7_ROWS,
    build_vehicle_schema,
    figure6_matrix,
    figure7_load,
    figure7_statistics,
    pe_path,
    pexa_path,
)


class TestVehicleSchema:
    def test_inheritance_hierarchy(self):
        schema = build_vehicle_schema()
        assert schema.direct_subclasses("Vehicle") == ["Bus", "Truck"]

    def test_aggregation_edges(self):
        schema = build_vehicle_schema()
        edges = set(schema.aggregation_edges())
        assert ("Person", "owns", "Vehicle") in edges
        assert ("Vehicle", "man", "Company") in edges
        assert ("Company", "divisions", "Division") in edges

    def test_paths_parse(self):
        assert str(pe_path()) == "Person.owns.man.name"
        assert str(pexa_path()) == "Person.owns.man.divisions.name"


class TestFigure2Database:
    def test_mix_example_entries(self, vehicle_db):
        """Section 2.2's MIX entries: man values per company."""
        by_name = {
            c.values["name"]: c.oid for c in vehicle_db.extent("Company")
        }
        referencing = {
            name: vehicle_db.parents_of(oid, "man") for name, oid in by_name.items()
        }
        assert len(referencing["Renault"]) == 2  # Vehicle[i], Vehicle[j]
        assert len(referencing["Fiat"]) == 3  # Vehicle[k], Bus[i], Truck[i]
        assert len(referencing["Daf"]) == 1  # Bus[j]

    def test_owns_entries(self, vehicle_db):
        persons = list(vehicle_db.extent("Person"))
        owned = [v for p in persons for v in p.value_list("owns")]
        assert len(owned) == 5
        assert len({str(v) for v in owned}) == 5

    def test_every_company_has_two_divisions(self, vehicle_db):
        for company in vehicle_db.extent("Company"):
            assert len(company.value_list("divisions")) == 2


class TestFigure7:
    def test_rows_cover_scope(self):
        assert set(FIGURE7_ROWS) == set(pexa_path().scope)

    def test_statistics_verbatim(self):
        stats = figure7_statistics()
        assert stats.n(1, "Person") == 200_000
        assert stats.d(1, "Person") == 20_000
        assert stats.nin(2, "Vehicle") == 3
        assert stats.n(4, "Division") == 1_000

    def test_load_verbatim(self):
        load = figure7_load()
        assert load.triplet("Person").query == pytest.approx(0.3)
        assert load.triplet("Vehicle").delete == pytest.approx(0.05)
        assert load.triplet("Truck").insert == pytest.approx(0.1)
        assert load.triplet("Division").query == pytest.approx(0.2)

    def test_expected_constants(self):
        assert EX51_EXPECTED["optimal_cost"] == pytest.approx(16.03)
        assert EX51_EXPECTED["whole_path_nix_cost"] == pytest.approx(42.84)
        assert EX51_EXPECTED["total_configurations"] == 8


class TestFigure6:
    def test_matrix_dimensions(self):
        matrix = figure6_matrix()
        assert matrix.length == 4
        assert matrix.entry_count() == 30

    def test_legible_rows_verbatim(self):
        from repro.organizations import IndexOrganization

        matrix = figure6_matrix()
        # "C1.A1: 3 4 6", "C2.A2: 4 4 4", "C3.A3: 2 3 4" from the scan.
        assert [
            matrix.cost(1, 1, org)
            for org in (
                IndexOrganization.MX,
                IndexOrganization.MIX,
                IndexOrganization.NIX,
            )
        ] == [3.0, 4.0, 6.0]
        assert [
            matrix.cost(2, 2, org)
            for org in (
                IndexOrganization.MX,
                IndexOrganization.MIX,
                IndexOrganization.NIX,
            )
        ] == [4.0, 4.0, 4.0]
        assert [
            matrix.cost(3, 3, org)
            for org in (
                IndexOrganization.MX,
                IndexOrganization.MIX,
                IndexOrganization.NIX,
            )
        ] == [2.0, 3.0, 4.0]
