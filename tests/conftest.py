"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.costmodel.params import ClassStats, CostModelConfig, PathStatistics
from repro.model.examples import (
    build_vehicle_schema,
    pe_path,
    pexa_path,
    populate_vehicle_database,
)
from repro.paper import figure6_matrix, figure7_load, figure7_statistics
from repro.storage.pager import Pager
from repro.storage.sizes import SizeModel
from repro.synth import LevelSpec, linear_path_schema, populate_path_database


@pytest.fixture(scope="session")
def vehicle_schema():
    """The Figure 1 schema (immutable; session-scoped)."""
    return build_vehicle_schema()


@pytest.fixture()
def vehicle_db(vehicle_schema):
    """A fresh Figure 2 database per test."""
    return populate_vehicle_database(vehicle_schema)


@pytest.fixture(scope="session")
def pexa(vehicle_schema):
    """The Example 5.1 path ``Person.owns.man.divisions.name``."""
    return pexa_path(vehicle_schema)


@pytest.fixture(scope="session")
def pe(vehicle_schema):
    """The Example 2.1 path ``Person.owns.man.name``."""
    return pe_path(vehicle_schema)


@pytest.fixture(scope="session")
def fig7_stats():
    """Figure 7 statistics."""
    return figure7_statistics()


@pytest.fixture(scope="session")
def fig7_load():
    """Figure 7 workload."""
    return figure7_load()


@pytest.fixture(scope="session")
def fig6():
    """The Figure 6 hypothetical cost matrix."""
    return figure6_matrix()


@pytest.fixture()
def pager():
    """A fresh 4 KiB pager."""
    return Pager(page_size=4096)


@pytest.fixture()
def sizes():
    """Default physical constants."""
    return SizeModel()


@pytest.fixture(scope="session")
def small_synth():
    """A small synthetic 3-level schema/database with inheritance.

    Session-scoped for read-only use; tests that mutate must build their
    own via ``make_small_synth``.
    """
    return make_small_synth()


def make_small_synth(seed: int = 1):
    """Build the standard small synthetic world (schema, path, db, specs)."""
    schema, path = linear_path_schema(
        [
            LevelSpec("A", subclasses=0, multi_valued=True),
            LevelSpec("B", subclasses=2, multi_valued=False),
            LevelSpec("C", subclasses=0, multi_valued=True),
        ]
    )
    specs = {
        "A": ClassStats(objects=400, distinct=150, fanout=2),
        "B": ClassStats(objects=120, distinct=50, fanout=1),
        "BSub1": ClassStats(objects=40, distinct=25, fanout=1),
        "BSub2": ClassStats(objects=40, distinct=25, fanout=1),
        "C": ClassStats(objects=80, distinct=30, fanout=2),
    }
    database = populate_path_database(schema, path, specs, seed=seed)
    return schema, path, database, specs


@pytest.fixture(scope="session")
def small_synth_stats(small_synth):
    """Derived statistics of the small synthetic database."""
    from repro.synth.stats import derive_path_statistics

    _schema, path, database, _specs = small_synth
    return derive_path_statistics(database, path)
