"""Tests for the ``multipath`` CLI subcommand.

Covers flag validation (beam width, budget, workers), the JSON output
shape, multi-spec handling, and the text report.
"""

import json

import pytest

from repro.cli import main
from repro.io import spec_to_dict
from repro.paper import FIGURE7_ROWS, figure7_load, figure7_statistics, pe_path


@pytest.fixture()
def fig7_spec_document():
    return spec_to_dict(figure7_statistics(), figure7_load())


@pytest.fixture()
def pexa_spec(tmp_path, fig7_spec_document):
    path = tmp_path / "pexa.json"
    path.write_text(json.dumps(fig7_spec_document))
    return str(path)


@pytest.fixture()
def pe_spec(tmp_path):
    from repro.costmodel.params import ClassStats, PathStatistics
    from repro.workload.load import LoadDistribution, LoadTriplet

    path = pe_path()
    per_class = {
        name: ClassStats(objects=n, distinct=d, fanout=nin)
        for name, (n, d, nin, _) in FIGURE7_ROWS.items()
        if name in path.scope
    }
    document = spec_to_dict(
        PathStatistics(path, per_class),
        LoadDistribution(
            path,
            {name: LoadTriplet(*FIGURE7_ROWS[name][3]) for name in path.scope},
        ),
    )
    spec_path = tmp_path / "pe.json"
    spec_path.write_text(json.dumps(document))
    return str(spec_path)


class TestMultipathCLI:
    def test_text_output(self, capsys, pexa_spec, pe_spec):
        assert main(["multipath", pexa_spec, pe_spec]) == 0
        out = capsys.readouterr().out
        assert "chosen configuration" in out
        assert "independent optima total" in out
        assert "sharing savings" in out
        assert "Person.owns.man" in out
        # The summary appears exactly once (table only, no duplicate
        # render block).
        assert out.count("sharing savings") == 1

    def test_json_output_shape(self, capsys, pexa_spec, pe_spec):
        assert main(["multipath", pexa_spec, pe_spec, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["paths"]) == 2
        assert payload["paths"][0]["path"] == "Person.owns.man.divisions.name"
        first = payload["paths"][0]["configuration"][0]
        assert set(first) == {"subpath", "start", "end", "organization"}
        assert payload["total_cost"] <= payload["independent_cost"] + 1e-9
        assert payload["shared_savings"] >= 0.0
        assert payload["budget_pages"] is None
        assert payload["exact"] is True
        assert payload["storage_pages"] > 0.0

    def test_single_spec_accepted(self, capsys, pexa_spec):
        assert main(["multipath", pexa_spec, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["paths"]) == 1
        assert payload["shared_savings"] == pytest.approx(0.0)

    def test_beam_width_flag(self, capsys, pexa_spec, pe_spec):
        assert main(
            ["multipath", pexa_spec, pe_spec, "--beam-width", "54", "--json"]
        ) == 0
        beam = json.loads(capsys.readouterr().out)
        assert main(["multipath", pexa_spec, pe_spec, "--json"]) == 0
        exact = json.loads(capsys.readouterr().out)
        # Width 54 covers the length-4 candidate space: parity with exact.
        assert beam["total_cost"] == pytest.approx(exact["total_cost"])

    def test_zero_beam_width_rejected(self, capsys, pexa_spec):
        assert main(["multipath", pexa_spec, "--beam-width", "0"]) == 1
        assert "beam width" in capsys.readouterr().err

    def test_negative_budget_rejected(self, capsys, pexa_spec):
        assert main(["multipath", pexa_spec, "--budget-pages", "-5"]) == 1
        assert "negative" in capsys.readouterr().err

    def test_nan_budget_rejected(self, capsys, pexa_spec):
        assert main(["multipath", pexa_spec, "--budget-pages", "nan"]) == 1
        assert "storage budget" in capsys.readouterr().err

    def test_noindex_respects_spec_organizations(
        self, capsys, tmp_path, fig7_spec_document
    ):
        # A spec that restricts organizations keeps its restriction under
        # --noindex (NONE is already present, nothing else is added).
        fig7_spec_document["options"]["organizations"] = ["MX", "NONE"]
        spec_path = tmp_path / "restricted.json"
        spec_path.write_text(json.dumps(fig7_spec_document))
        assert main(["multipath", str(spec_path), "--noindex", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        used = {
            entry["organization"]
            for path in payload["paths"]
            for entry in path["configuration"]
        }
        assert used <= {"MX", "NONE"}

    def test_budget_flag_reported(self, capsys, pexa_spec, pe_spec):
        assert main(
            [
                "multipath",
                pexa_spec,
                pe_spec,
                "--budget-pages",
                "1e9",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["budget_pages"] == pytest.approx(1e9)
        assert payload["storage_pages"] <= 1e9
        assert payload["unconstrained_cost"] is not None

    def test_tight_budget_with_noindex_feasible(
        self, capsys, pexa_spec, pe_spec
    ):
        assert main(
            [
                "multipath",
                pexa_spec,
                pe_spec,
                "--noindex",
                "--budget-pages",
                "0",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["storage_pages"] == 0.0
        organizations = {
            entry["organization"]
            for path in payload["paths"]
            for entry in path["configuration"]
        }
        assert organizations == {"NONE"}

    def test_tight_budget_without_noindex_is_error(
        self, capsys, pexa_spec, pe_spec
    ):
        assert main(
            ["multipath", pexa_spec, pe_spec, "--budget-pages", "0"]
        ) == 1
        assert "NONE organization" in capsys.readouterr().err

    def test_negative_workers_rejected(self, capsys, pexa_spec):
        assert main(["multipath", pexa_spec, "--workers", "-2"]) == 1
        assert "workers" in capsys.readouterr().err

    def test_workers_do_not_change_the_answer(
        self, capsys, pexa_spec, pe_spec
    ):
        assert main(
            ["multipath", pexa_spec, pe_spec, "--workers", "2", "--json"]
        ) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert main(
            ["multipath", pexa_spec, pe_spec, "--workers", "0", "--json"]
        ) == 0
        serial = json.loads(capsys.readouterr().out)
        assert parallel == serial

    def test_per_row_organizations_validated(self, capsys, pexa_spec):
        assert main(
            ["multipath", pexa_spec, "--per-row-organizations", "0"]
        ) == 1
        assert "organizations per block" in capsys.readouterr().err

    def test_missing_spec_is_error(self, capsys):
        assert main(["multipath", "/nonexistent/spec.json"]) == 1
        assert "error:" in capsys.readouterr().err
