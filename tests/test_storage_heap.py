"""Tests for repro.storage.heap (class extents)."""

import pytest

from repro.errors import StorageError
from repro.model.objects import OID
from repro.storage.heap import ClassExtent
from repro.storage.pager import Pager
from repro.storage.sizes import SizeModel


def make_extent(object_size: int = 100, page_size: int = 4096):
    sizes = SizeModel(page_size=page_size)
    pager = Pager(page_size=page_size)
    return pager, ClassExtent(pager, sizes, "C", object_size)


class TestPlacement:
    def test_objects_pack_into_pages(self):
        pager, extent = make_extent(object_size=100, page_size=4096)
        # 100 + 16 overhead = 116 bytes -> 35 per page.
        assert extent.objects_per_page == 35
        for i in range(70):
            extent.place(OID("C", i))
        assert extent.page_count() == 2

    def test_double_placement_rejected(self):
        _, extent = make_extent()
        extent.place(OID("C", 1))
        with pytest.raises(StorageError):
            extent.place(OID("C", 1))

    def test_remove_frees_emptied_page(self):
        pager, extent = make_extent(object_size=4000)
        for i in range(3):
            extent.place(OID("C", i))
        pages_before = extent.page_count()
        extent.remove(OID("C", 0))
        assert extent.page_count() == pages_before - 1

    def test_remove_unplaced_rejected(self):
        _, extent = make_extent()
        with pytest.raises(StorageError):
            extent.remove(OID("C", 9))

    def test_zero_object_size_rejected(self):
        sizes = SizeModel()
        pager = Pager()
        with pytest.raises(StorageError):
            ClassExtent(pager, sizes, "C", 0)


class TestAccessCounting:
    def test_fetch_charges_one_read(self):
        pager, extent = make_extent()
        oid = OID("C", 1)
        extent.place(oid)
        before = pager.stats()
        extent.fetch(oid)
        assert (pager.stats() - before).reads == 1

    def test_fetch_unplaced_rejected(self):
        _, extent = make_extent()
        with pytest.raises(StorageError):
            extent.fetch(OID("C", 5))

    def test_fetch_many_counts_distinct_pages(self):
        pager, extent = make_extent(object_size=100)
        oids = [OID("C", i) for i in range(40)]
        for oid in oids:
            extent.place(oid)
        before = pager.stats()
        pages = extent.fetch_many(oids)
        delta = pager.stats() - before
        assert pages == delta.reads
        assert pages == extent.page_count()

    def test_fetch_many_with_unplaced_rejected(self):
        _, extent = make_extent()
        extent.place(OID("C", 0))
        with pytest.raises(StorageError):
            extent.fetch_many([OID("C", 0), OID("C", 9)])

    def test_scan_reads_every_populated_page(self):
        pager, extent = make_extent(object_size=2000)
        for i in range(5):
            extent.place(OID("C", i))
        before = pager.stats()
        pages = extent.scan()
        assert pages == extent.page_count()
        assert (pager.stats() - before).reads == pages

    def test_object_count(self):
        _, extent = make_extent()
        for i in range(7):
            extent.place(OID("C", i))
        extent.remove(OID("C", 3))
        assert extent.object_count() == 6
