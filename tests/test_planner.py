"""Tests for the EXPLAIN-style planner."""

import pytest

from repro.core.configuration import IndexConfiguration
from repro.core.evaluation import per_class_analytic_costs
from repro.core.planner import explain_query, explain_update
from repro.errors import OptimizerError
from repro.organizations import IndexOrganization

MX = IndexOrganization.MX
NIX = IndexOrganization.NIX

SPLIT = IndexConfiguration.of((1, 2, NIX), (3, 4, MX))
WHOLE = IndexConfiguration.whole_path(4, NIX)


class TestQueryPlans:
    def test_one_step_per_relevant_subpath(self, fig7_stats):
        plan = explain_query(fig7_stats, SPLIT, "Person")
        assert len(plan.steps) == 2  # probe tail subpath, retrieve prefix
        assert plan.steps[0].action == "probe"
        assert plan.steps[-1].action == "retrieve"

    def test_target_in_last_subpath_is_single_step(self, fig7_stats):
        plan = explain_query(fig7_stats, SPLIT, "Division")
        assert len(plan.steps) == 1
        assert plan.steps[0].action == "retrieve"

    def test_totals_match_per_class_costs(self, fig7_stats):
        costs = per_class_analytic_costs(fig7_stats, SPLIT)
        for position, member in [(1, "Person"), (2, "Bus"), (4, "Division")]:
            plan = explain_query(fig7_stats, SPLIT, member)
            assert plan.estimated_pages == pytest.approx(
                costs[(position, member)]["query"], rel=0.35
            )

    def test_whole_path_single_lookup(self, fig7_stats):
        plan = explain_query(fig7_stats, WHOLE, "Person")
        assert len(plan.steps) == 1
        assert "NIX" in plan.steps[0].structure

    def test_range_plan(self, fig7_stats):
        equality = explain_query(fig7_stats, SPLIT, "Person")
        ranged = explain_query(
            fig7_stats, SPLIT, "Person", range_selectivity=0.2
        )
        assert ranged.estimated_pages > equality.estimated_pages
        assert "range" in ranged.operation

    def test_unknown_class_rejected(self, fig7_stats):
        with pytest.raises(OptimizerError):
            explain_query(fig7_stats, SPLIT, "Nothing")

    def test_render(self, fig7_stats):
        text = explain_query(fig7_stats, SPLIT, "Person").render()
        assert "plan: query" in text
        assert "estimated total" in text
        assert "MX(Company.divisions.name)" in text
        assert "NIX(Person.owns.man)" in text


class TestUpdatePlans:
    def test_insert_single_step(self, fig7_stats):
        plan = explain_update(fig7_stats, SPLIT, "Vehicle", "insert")
        assert len(plan.steps) == 1
        assert plan.estimated_pages > 0

    def test_delete_on_boundary_adds_cmd_step(self, fig7_stats):
        plan = explain_update(fig7_stats, SPLIT, "Company", "delete")
        assert len(plan.steps) == 2
        assert "CMD" in plan.steps[1].detail

    def test_delete_inside_subpath_no_cmd(self, fig7_stats):
        plan = explain_update(fig7_stats, SPLIT, "Vehicle", "delete")
        assert len(plan.steps) == 1

    def test_totals_match_per_class_costs(self, fig7_stats):
        costs = per_class_analytic_costs(fig7_stats, SPLIT)
        for member, position in [("Company", 3), ("Person", 1)]:
            for kind in ("insert", "delete"):
                plan = explain_update(fig7_stats, SPLIT, member, kind)
                assert plan.estimated_pages == pytest.approx(
                    costs[(position, member)][kind]
                )

    def test_unknown_kind_rejected(self, fig7_stats):
        with pytest.raises(OptimizerError):
            explain_update(fig7_stats, SPLIT, "Person", "upsert")
