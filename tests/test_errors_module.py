"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CostModelError,
    IndexError_,
    OptimizerError,
    PathError,
    ReproError,
    SchemaError,
    StorageError,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            SchemaError,
            PathError,
            StorageError,
            IndexError_,
            CostModelError,
            WorkloadError,
            OptimizerError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)
        with pytest.raises(ReproError):
            raise exception_type("boom")

    def test_index_error_does_not_shadow_builtin(self):
        assert IndexError_ is not IndexError
        assert not issubclass(IndexError_, IndexError)

    def test_single_except_catches_everything(self):
        caught = []
        for exception_type in (SchemaError, StorageError, OptimizerError):
            try:
                raise exception_type("x")
            except ReproError as error:
                caught.append(type(error))
        assert caught == [SchemaError, StorageError, OptimizerError]
