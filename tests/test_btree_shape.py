"""Tests for the analytic B+-tree shape model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.btree_shape import build_shape
from repro.errors import CostModelError
from repro.storage.btree import BPlusTree
from repro.storage.pager import Pager
from repro.storage.sizes import SizeModel

SIZES = SizeModel()


class TestSmallRecords:
    def test_single_record_single_level(self):
        shape = build_shape(1, 100, 16, SIZES)
        assert shape.height == 1
        assert shape.leaf_pages == 1.0
        assert not shape.oversized

    def test_empty_index(self):
        shape = build_shape(0, 100, 16, SIZES)
        assert shape.empty
        assert shape.height == 1
        assert shape.levels == ()

    def test_two_levels(self):
        # 4096/100 = 40 records/page; 1000 records -> 25 leaves -> root.
        shape = build_shape(1000, 100, 16, SIZES)
        assert shape.height == 2
        assert shape.leaf_pages == pytest.approx(25.0)

    def test_three_levels(self):
        # 100k records of 100B: 2500 leaves; fanout 170 -> 15 internal -> root.
        shape = build_shape(100_000, 100, 16, SIZES)
        assert shape.height == 3

    def test_levels_leaf_first(self):
        shape = build_shape(1000, 100, 16, SIZES)
        assert shape.levels[0].records == 1000
        assert shape.levels[-1].pages == 1.0

    def test_record_pages_is_one(self):
        shape = build_shape(1000, 100, 16, SIZES)
        assert shape.record_pages == 1


class TestOversizedRecords:
    def test_record_pages(self):
        shape = build_shape(100, 10_000, 16, SIZES)
        assert shape.oversized
        assert shape.record_pages == math.ceil(10_000 / 4096)

    def test_height_counts_record_level(self):
        shape = build_shape(100, 10_000, 16, SIZES)
        # 100 stubs of 24B fit in one page -> stub tree height 1, +1 records.
        assert shape.height == 2

    def test_big_index_grows_stub_tree(self):
        shape = build_shape(100_000, 10_000, 16, SIZES)
        stub_only = build_shape(100_000, 24, 16, SIZES)
        assert shape.height == stub_only.height + 1


class TestValidation:
    def test_negative_count_rejected(self):
        with pytest.raises(CostModelError):
            build_shape(-1, 100, 16, SIZES)

    def test_zero_length_with_records_rejected(self):
        with pytest.raises(CostModelError):
            build_shape(10, 0, 16, SIZES)

    def test_zero_key_rejected(self):
        with pytest.raises(CostModelError):
            build_shape(10, 100, 0, SIZES)


class TestAgainstOperationalTree:
    @pytest.mark.parametrize("count", [1, 50, 500, 5000])
    def test_height_matches_operational_btree(self, count):
        """The shape model predicts the real tree's height (±1 level).

        The operational tree splits at half-full nodes, so its occupancy
        is lower than the shape model's full packing; heights may differ
        by one level but never more.
        """
        record_size = 64
        sizes = SizeModel(page_size=1024, atomic_key_size=16)
        pager = Pager(page_size=1024)
        tree = BPlusTree(pager, sizes, atomic_keys=True)
        for i in range(count):
            tree.insert(f"key{i:06d}", i, record_size)
        shape = build_shape(count, record_size, 16, sizes)
        assert abs(tree.height - shape.height) <= 1


class TestShapeProperties:
    @given(
        count=st.integers(min_value=1, max_value=1_000_000),
        length=st.integers(min_value=8, max_value=20_000),
    )
    @settings(max_examples=150, deadline=None)
    def test_invariants(self, count, length):
        shape = build_shape(count, length, 16, SIZES)
        assert shape.height >= 1
        assert shape.record_pages >= 1
        assert shape.oversized == (length > SIZES.page_size)
        assert shape.levels[-1].pages == 1.0  # single root page
        # Monotone page counts up the tree.
        pages = [level.pages for level in shape.levels]
        assert all(a >= b for a, b in zip(pages, pages[1:]))

    @given(count=st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=60, deadline=None)
    def test_height_monotone_in_count(self, count):
        small = build_shape(count, 100, 16, SIZES)
        bigger = build_shape(count * 2, 100, 16, SIZES)
        assert bigger.height >= small.height
