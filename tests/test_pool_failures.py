"""Worker-pool failure paths: the serial fallback is loud and lossless.

The parallel fan-out in :class:`~repro.core.cost_matrix.CostMatrix` may
fail for real reasons (a worker OOM-killed, an OS refusing to fork, a
spawn-only platform hitting an unpicklable payload). The contract under
test: the failure is retried with backoff, the eventual serial fallback
produces a **byte-identical** matrix, and the cause is reported three
ways — :attr:`~repro.core.cost_matrix.CostMatrix.parallel_fallback_reason`,
a ``RuntimeWarning``, and a structured
:class:`~repro.resilience.DegradationReport` event. Never silently.
"""

from __future__ import annotations

import pickle

import pytest

import repro.core.cost_matrix as cost_matrix_module
import repro.resilience.retry as retry_module
from repro.core.cost_matrix import CostMatrix
from repro.resilience import DegradationReport, RetryPolicy
from repro.resilience.faults import FaultInjector
from repro.whatif import AdvisorSession, Perturbation
from repro.workload.load import LoadDistribution

from test_resilience_checkpoint import make_world


@pytest.fixture
def patched_sleep():
    """Capture retry backoff naps instead of actually sleeping."""
    naps: list[float] = []
    original = retry_module._sleep
    retry_module._sleep = naps.append
    try:
        yield naps
    finally:
        retry_module._sleep = original


@pytest.fixture
def raise_from_pool():
    """Patch the pool seam to always raise a given exception."""
    original = cost_matrix_module._run_pool_once

    def patch(error: Exception):
        def failing(pool_options, payloads):
            raise error

        cost_matrix_module._run_pool_once = failing

    try:
        yield patch
    finally:
        cost_matrix_module._run_pool_once = original


class TestSerialFallback:
    def test_broken_pool_falls_back_byte_identically(self, patched_sleep):
        stats, load = make_world()
        serial = CostMatrix.compute(stats, load, workers=0)
        report = DegradationReport()
        with FaultInjector(seed=0).broken_pool(times=10):
            with pytest.warns(RuntimeWarning, match="fell back to serial"):
                fallen = CostMatrix.compute(
                    stats, load, workers=2, degradation=report
                )
        assert fallen._values == serial._values
        assert fallen._row_min_cost == serial._row_min_cost
        reason = fallen.parallel_fallback_reason
        assert reason is not None
        assert "BrokenProcessPool" in reason
        assert "after 2 attempts" in reason
        assert patched_sleep == [0.05]  # one backoff between two attempts

    def test_fallback_is_recorded_structurally(self):
        stats, load = make_world()
        report = DegradationReport()
        with FaultInjector(seed=0).broken_pool(times=10):
            with pytest.warns(RuntimeWarning):
                CostMatrix.compute(stats, load, workers=2, degradation=report)
        assert report.count(layer="matrix", action="serial_fallback") == 1
        event = report.events[-1]
        assert event.detail["workers"] == 2
        assert event.detail["rows"] == 10  # length-4 path: 4*5/2 rows

    def test_successful_pool_reports_no_fallback(self):
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load, workers=2)
        assert matrix.parallel_fallback_reason is None

    def test_os_refusing_to_fork(self, raise_from_pool):
        stats, load = make_world()
        raise_from_pool(OSError("cannot allocate memory"))
        serial = CostMatrix.compute(stats, load, workers=0)
        with pytest.warns(RuntimeWarning):
            fallen = CostMatrix.compute(stats, load, workers=2)
        assert fallen._values == serial._values
        assert "OSError: cannot allocate memory" in (
            fallen.parallel_fallback_reason or ""
        )

    def test_spawn_only_platform_pickling_failure(
        self, raise_from_pool, monkeypatch
    ):
        """Simulate macOS/Windows: no fork context, and the pickling
        path hits an unpicklable payload."""
        monkeypatch.setattr(cost_matrix_module, "_fork_context", lambda: None)
        raise_from_pool(pickle.PicklingError("cannot pickle local object"))
        stats, load = make_world()
        serial = CostMatrix.compute(stats, load, workers=0)
        with pytest.warns(RuntimeWarning):
            fallen = CostMatrix.compute(stats, load, workers=2)
        assert fallen._values == serial._values
        assert "PicklingError" in (fallen.parallel_fallback_reason or "")

    def test_spawn_only_platform_still_parallelizes(self, monkeypatch):
        """Without fork, the pickling path itself is still bit-identical."""
        monkeypatch.setattr(cost_matrix_module, "_fork_context", lambda: None)
        stats, load = make_world()
        parallel = CostMatrix.compute(stats, load, workers=2)
        serial = CostMatrix.compute(stats, load, workers=0)
        assert parallel._values == serial._values
        assert parallel.parallel_fallback_reason is None


class TestRetryPolicyPlumbing:
    def test_custom_policy_controls_the_backoff(self, patched_sleep):
        stats, load = make_world()
        policy = RetryPolicy(attempts=3, backoff_seconds=0.01, multiplier=2.0)
        with FaultInjector(seed=0).broken_pool(times=10):
            with pytest.warns(RuntimeWarning):
                fallen = CostMatrix.compute(
                    stats, load, workers=2, retry_policy=policy
                )
        assert patched_sleep == [0.01, 0.02]
        assert "after 3 attempts" in (fallen.parallel_fallback_reason or "")

    def test_second_attempt_success_needs_no_fallback(self, patched_sleep):
        stats, load = make_world()
        with FaultInjector(seed=0).broken_pool(times=1) as crashes:
            matrix = CostMatrix.compute(stats, load, workers=2)
        assert crashes[0] == 1
        assert matrix.parallel_fallback_reason is None
        assert patched_sleep == [0.05]


class TestRecomputeFallback:
    def test_parallel_recompute_falls_back_byte_identically(self):
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load)
        triplets = dict(load.items())
        triplets["L0"] = triplets["L0"].scaled(4.0)
        scaled = LoadDistribution(load.path, triplets)
        clean = matrix.recompute(load=scaled, workers=0)
        report = DegradationReport()
        with FaultInjector(seed=0).broken_pool(times=10):
            with pytest.warns(RuntimeWarning):
                fallen = matrix.recompute(
                    load=scaled, workers=2, degradation=report
                )
        assert fallen._values == clean._values
        assert "BrokenProcessPool" in (fallen.parallel_fallback_reason or "")
        assert report.count(layer="matrix", action="serial_fallback") == 1

    def test_session_surfaces_the_fallback(self):
        """A parallel session keeps answering through pool crashes, and
        its degradation report says so."""
        stats, load = make_world()
        with FaultInjector(seed=0).broken_pool(times=10):
            with pytest.warns(RuntimeWarning):
                session = AdvisorSession(stats, load, workers=2)
                session.advise()
        reference = AdvisorSession(stats, load).advise()
        degraded_matrix = session.advise()
        assert degraded_matrix.cost == reference.cost
        assert degraded_matrix.configuration == reference.configuration
        assert session.degradation.count(
            layer="matrix", action="serial_fallback"
        ) >= 1

    def test_session_perturbation_survives_pool_crash(self):
        stats, load = make_world()
        chaotic = AdvisorSession(stats, load, workers=2)
        steady = AdvisorSession(stats, load)
        step = Perturbation("L1", "insert", "scale", 3.0)
        with FaultInjector(seed=0).broken_pool(times=100):
            with pytest.warns(RuntimeWarning):
                chaotic.perturb(step)
                crashed = chaotic.advise()
        steady.perturb(step)
        expected = steady.advise()
        assert crashed.cost == expected.cost
        assert crashed.configuration == expected.configuration
