"""Tests for index configurations (Definition 4.1)."""

import pytest

from repro.core.configuration import IndexConfiguration, IndexedSubpath
from repro.errors import OptimizerError
from repro.organizations import IndexOrganization

MX = IndexOrganization.MX
NIX = IndexOrganization.NIX


class TestIndexedSubpath:
    def test_length(self):
        assert IndexedSubpath(2, 4, MX).length == 3

    def test_invalid_bounds_rejected(self):
        with pytest.raises(OptimizerError):
            IndexedSubpath(0, 2, MX)
        with pytest.raises(OptimizerError):
            IndexedSubpath(3, 2, MX)

    def test_render_positional(self):
        assert IndexedSubpath(1, 2, NIX).render() == "(S[1,2], NIX)"

    def test_render_with_path(self, pexa):
        assert IndexedSubpath(1, 2, NIX).render(pexa) == "(Person.owns.man, NIX)"


class TestIndexConfiguration:
    def test_whole_path(self):
        config = IndexConfiguration.whole_path(4, NIX)
        assert config.degree == 1
        assert config.length == 4
        assert config.partition() == ((1, 4),)

    def test_of_builder(self):
        config = IndexConfiguration.of((1, 2, NIX), (3, 4, MX))
        assert config.degree == 2
        assert config.partition() == ((1, 2), (3, 4))

    def test_assignments_sorted_by_start(self):
        config = IndexConfiguration.of((3, 4, MX), (1, 2, NIX))
        assert config.partition() == ((1, 2), (3, 4))

    def test_gap_rejected(self):
        with pytest.raises(OptimizerError):
            IndexConfiguration.of((1, 1, MX), (3, 4, NIX))

    def test_overlap_rejected(self):
        with pytest.raises(OptimizerError):
            IndexConfiguration.of((1, 2, MX), (2, 4, NIX))

    def test_not_starting_at_one_rejected(self):
        with pytest.raises(OptimizerError):
            IndexConfiguration.of((2, 4, MX))

    def test_empty_rejected(self):
        with pytest.raises(OptimizerError):
            IndexConfiguration(())

    def test_organization_at(self):
        config = IndexConfiguration.of((1, 2, NIX), (3, 4, MX))
        assert config.organization_at(1) is NIX
        assert config.organization_at(2) is NIX
        assert config.organization_at(3) is MX
        with pytest.raises(OptimizerError):
            config.organization_at(5)

    def test_render_matches_paper_style(self, pexa):
        config = IndexConfiguration.of((1, 2, NIX), (3, 4, MX))
        assert (
            config.render(pexa)
            == "{(Person.owns.man, NIX), (Company.divisions.name, MX)}"
        )
