"""Unit tests for the resilience primitives.

Deadlines, degradation accounting, retry policies and the
exact → shrinking-beam → last-known-good ladder — each exercised in
isolation with deterministic fake clocks, no sleeping and no real
worker pools.
"""

from __future__ import annotations

import pytest

from repro.core.cost_matrix import CostMatrix
from repro.errors import DeadlineExceeded, ResilienceError
from repro.resilience import (
    DEFAULT_RETRY_POLICY,
    Deadline,
    DegradationReport,
    RetryPolicy,
    degraded_search,
    run_with_retry,
)
from repro.resilience.degrade import BEAM_LADDER, LAST_KNOWN_GOOD
from repro.resilience.faults import FakeClock
from repro.search import get_strategy


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
class TestDeadline:
    def test_fresh_deadline_is_not_expired(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert not deadline.expired
        assert deadline.remaining() == 1.0
        deadline.check()  # must not raise

    def test_expiry_tracks_the_clock(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        clock.advance(0.25)
        assert not deadline.expired
        assert deadline.elapsed() == 0.25
        clock.advance(0.25)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_check_raises_with_label_and_budget(self):
        clock = FakeClock()
        deadline = Deadline(0.1, clock=clock)
        clock.advance(0.2)
        with pytest.raises(DeadlineExceeded, match="branch_and_bound"):
            deadline.check("branch_and_bound")

    def test_after_ms_converts_milliseconds(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(250.0, clock=clock)
        assert deadline.budget_seconds == 0.25

    @pytest.mark.parametrize("budget", [-1.0, float("inf"), float("nan")])
    def test_invalid_budgets_are_rejected(self, budget):
        with pytest.raises(ResilienceError):
            Deadline(budget)

    def test_zero_budget_is_immediately_expired(self):
        deadline = Deadline(0.0, clock=FakeClock())
        assert deadline.expired


# ----------------------------------------------------------------------
# DegradationReport
# ----------------------------------------------------------------------
class TestDegradationReport:
    def test_empty_report_is_falsy(self):
        report = DegradationReport()
        assert not report
        assert len(report) == 0
        assert report.describe() == ""

    def test_record_and_filtered_count(self):
        report = DegradationReport()
        report.record("matrix", "serial_fallback", "BrokenProcessPool", rows=3)
        report.record("session", "greedy_beam", "deadline_expired", width=4)
        report.record("session", "last_known_good", "deadline_expired")
        assert bool(report)
        assert report.count() == 3
        assert report.count(layer="session") == 2
        assert report.count(layer="session", action="greedy_beam") == 1
        assert report.count(layer="kernel") == 0

    def test_describe_carries_layer_action_reason_and_detail(self):
        report = DegradationReport()
        report.record("matrix", "serial_fallback", "OSError", workers=2)
        assert (
            report.describe()
            == "[matrix] serial_fallback: OSError workers=2"
        )

    def test_to_dicts_round_trips_detail(self):
        report = DegradationReport()
        report.record("kernel", "legacy_fallback", "numpy unavailable", rows=55)
        assert report.to_dicts() == [
            {
                "layer": "kernel",
                "action": "legacy_fallback",
                "reason": "numpy unavailable",
                "detail": {"rows": 55},
            }
        ]


# ----------------------------------------------------------------------
# RetryPolicy / run_with_retry
# ----------------------------------------------------------------------
class TestRetry:
    def test_delays_ramp_exponentially(self):
        policy = RetryPolicy(attempts=4, backoff_seconds=0.1, multiplier=2.0)
        assert list(policy.delays()) == [0.0, 0.1, 0.2, 0.4]

    def test_invalid_policies_are_rejected(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(backoff_seconds=-1.0)
        with pytest.raises(ResilienceError):
            RetryPolicy(multiplier=0.0)

    def test_success_on_first_attempt_never_sleeps(self, monkeypatch):
        import repro.resilience.retry as retry_module

        sleeps: list[float] = []
        monkeypatch.setattr(retry_module, "_sleep", sleeps.append)
        value, attempts, error = run_with_retry(
            lambda: 42, (OSError,), DEFAULT_RETRY_POLICY
        )
        assert (value, attempts, error) == (42, 1, None)
        assert sleeps == []

    def test_transient_failure_retries_with_backoff(self, monkeypatch):
        import repro.resilience.retry as retry_module

        sleeps: list[float] = []
        monkeypatch.setattr(retry_module, "_sleep", sleeps.append)
        calls = [0]

        def flaky():
            calls[0] += 1
            if calls[0] == 1:
                raise OSError("transient")
            return "ok"

        value, attempts, error = run_with_retry(
            flaky, (OSError,), RetryPolicy(attempts=2, backoff_seconds=0.05)
        )
        assert (value, attempts, error) == ("ok", 2, None)
        assert sleeps == [0.05]

    def test_exhaustion_returns_the_last_error(self, monkeypatch):
        import repro.resilience.retry as retry_module

        monkeypatch.setattr(retry_module, "_sleep", lambda _delay: None)

        def always_broken():
            raise OSError("still down")

        value, attempts, error = run_with_retry(
            always_broken, (OSError,), RetryPolicy(attempts=3)
        )
        assert value is None
        assert attempts == 3
        assert isinstance(error, OSError)

    def test_unexpected_exceptions_propagate(self):
        def typo():
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            run_with_retry(typo, (OSError,), DEFAULT_RETRY_POLICY)

    def test_on_retry_hook_sees_every_failure(self, monkeypatch):
        import repro.resilience.retry as retry_module

        monkeypatch.setattr(retry_module, "_sleep", lambda _delay: None)
        seen: list[tuple[int, str]] = []

        def always_broken():
            raise OSError("down")

        run_with_retry(
            always_broken,
            (OSError,),
            RetryPolicy(attempts=2),
            on_retry=lambda attempt, error: seen.append((attempt, str(error))),
        )
        assert seen == [(1, "down"), (2, "down")]


# ----------------------------------------------------------------------
# the degradation ladder
# ----------------------------------------------------------------------
class TestDegradedSearch:
    def test_beam_rung_answers_when_time_remains(self, fig7_stats, fig7_load):
        matrix = CostMatrix.compute(fig7_stats, fig7_load)
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)  # plenty of time left
        report = DegradationReport()
        result = degraded_search(matrix, deadline=deadline, degradation=report)
        assert result.extras["degraded"] is True
        assert result.extras["rung"] == f"greedy_beam:{BEAM_LADDER[0]}"
        assert report.count(action="greedy_beam") == 1
        # The widest beam matches the exact optimum on the Figure 7 path.
        exact = get_strategy("dynamic_program").search(matrix)
        assert result.cost == exact.cost

    def test_last_known_good_rung_reprices_against_current_matrix(
        self, fig7_stats, fig7_load
    ):
        matrix = CostMatrix.compute(fig7_stats, fig7_load)
        exact = get_strategy("dynamic_program").search(matrix)
        clock = FakeClock()
        deadline = Deadline(0.001, clock=clock)
        clock.advance(1.0)  # expired: every beam rung is skipped
        report = DegradationReport()
        result = degraded_search(
            matrix,
            deadline=deadline,
            last_known_good=exact,
            degradation=report,
        )
        assert result.strategy == LAST_KNOWN_GOOD
        assert result.extras["rung"] == LAST_KNOWN_GOOD
        assert result.configuration == exact.configuration
        assert result.cost == exact.cost  # re-priced, same matrix
        assert report.count(action=LAST_KNOWN_GOOD) == 1

    def test_width_one_overrun_when_nothing_known_good(
        self, fig7_stats, fig7_load
    ):
        matrix = CostMatrix.compute(fig7_stats, fig7_load)
        clock = FakeClock()
        deadline = Deadline(0.001, clock=clock)
        clock.advance(1.0)
        report = DegradationReport()
        result = degraded_search(matrix, deadline=deadline, degradation=report)
        assert result.extras["rung"] == "greedy_beam:1:overrun"
        assert result.configuration.assignments  # still a real answer
        assert report.count(action="greedy_beam_overrun") == 1


# ----------------------------------------------------------------------
# deadline threading through the strategies
# ----------------------------------------------------------------------
class TestStrategyDeadlines:
    @pytest.mark.parametrize(
        "name",
        [
            "branch_and_bound",
            "dynamic_program",
            "incremental_dynamic_program",
            "greedy_beam",
            "exhaustive",
        ],
    )
    def test_expired_deadline_interrupts_every_strategy(
        self, name, fig7_stats, fig7_load
    ):
        matrix = CostMatrix.compute(fig7_stats, fig7_load)
        clock = FakeClock()
        deadline = Deadline(0.001, clock=clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceeded):
            get_strategy(name).search(matrix, deadline=deadline)

    @pytest.mark.parametrize(
        "name",
        [
            "branch_and_bound",
            "dynamic_program",
            "incremental_dynamic_program",
            "greedy_beam",
            "exhaustive",
        ],
    )
    def test_generous_deadline_changes_nothing(
        self, name, fig7_stats, fig7_load
    ):
        matrix = CostMatrix.compute(fig7_stats, fig7_load)
        unbounded = get_strategy(name).search(matrix)
        bounded = get_strategy(name).search(
            matrix, deadline=Deadline(3600.0, clock=FakeClock())
        )
        assert bounded.cost == unbounded.cost
        assert bounded.configuration == unbounded.configuration

    def test_interrupted_refine_leaves_session_consistent(
        self, fig7_stats, fig7_load
    ):
        """A mid-refine expiry must not corrupt the incremental tables."""
        from repro.whatif import AdvisorSession, Perturbation

        session = AdvisorSession(fig7_stats, fig7_load)
        exact_baseline = session.advise()
        perturbation = Perturbation(
            class_name="Division", component="delete", mode="scale", value=9.0
        )
        session.perturb(perturbation)
        clock = FakeClock()
        deadline = Deadline(0.001, clock=clock)
        clock.advance(1.0)
        degraded = session.advise(deadline=deadline)
        assert degraded.extras.get("degraded") is True
        assert session.degradation.count(layer="session") >= 1
        # The degraded answer did not consume the dirty set: the next
        # unbounded advise refines it and is bit-identical to a fresh
        # pipeline run over the current inputs.
        recovered = session.advise()
        from repro.core.advisor import advise

        fresh = advise(
            session.stats,
            session.load,
            strategy="dynamic_program",
            run_baselines=False,
        )
        assert recovered.cost == fresh.optimal.cost
        assert recovered.configuration == fresh.optimal.configuration
        assert recovered.cost != exact_baseline.cost  # the perturbation bit


# ----------------------------------------------------------------------
# deadline-bounded advise() and optimize_multipath()
# ----------------------------------------------------------------------
class TestBoundedPipelines:
    def test_advise_degrades_and_skips_baselines(self, fig7_stats, fig7_load):
        from repro.core.advisor import advise

        clock = FakeClock()
        deadline = Deadline(0.001, clock=clock)
        clock.advance(1.0)
        report = DegradationReport()
        bounded = advise(
            fig7_stats, fig7_load, deadline=deadline, degradation=report
        )
        assert bounded.optimal.extras.get("degraded") is True
        assert bounded.dynprog is None
        assert bounded.single_index_costs == {}
        assert report.count(layer="advise", action="exact_abandoned") == 1
        assert report.count(layer="advise", action="baselines_skipped") == 1

    def test_multipath_expired_deadline_degrades_every_stage(
        self, fig7_stats, fig7_load
    ):
        from repro.core.multipath import PathWorkload, optimize_multipath

        workloads = [PathWorkload(stats=fig7_stats, load=fig7_load)] * 2
        clock = FakeClock()
        deadline = Deadline(0.001, clock=clock)
        clock.advance(1.0)
        report = DegradationReport()
        bounded = optimize_multipath(
            workloads, deadline=deadline, degradation=report
        )
        assert not bounded.exact
        assert bounded.degradations  # every fallback is listed
        assert any(
            "joint_independent" in entry for entry in bounded.degradations
        )
        assert report.count(layer="multipath") == len(bounded.degradations)
        # Degraded selections are still valid, fully priced selections.
        unbounded = optimize_multipath(workloads)
        assert bounded.total_cost >= unbounded.total_cost
        assert unbounded.degradations == ()

    def test_multipath_generous_deadline_is_bit_identical(
        self, fig7_stats, fig7_load
    ):
        from repro.core.multipath import PathWorkload, optimize_multipath

        workloads = [PathWorkload(stats=fig7_stats, load=fig7_load)] * 2
        unbounded = optimize_multipath(workloads)
        bounded = optimize_multipath(
            workloads, deadline=Deadline(3600.0, clock=FakeClock())
        )
        assert bounded.total_cost == unbounded.total_cost
        assert bounded.configurations == unbounded.configurations
        assert bounded.degradations == ()
