"""Tests for the ``repro.trace`` building blocks (PR 5).

Covers the event model and its strict JSONL persistence, the seeded
trace generators (determinism, regime shapes), the count-based window
aggregation (exact frequency arithmetic, sliding vs tumbling emission,
statistics tracking) and the hysteresis drift detector.
"""

import pytest

from repro.costmodel.params import ClassStats, PathStatistics
from repro.errors import TraceError
from repro.synth import LevelSpec, linear_path_schema
from repro.trace import (
    EVENT_KINDS,
    TRACE_REGIMES,
    DriftDetector,
    TraceEvent,
    WindowAggregator,
    generate_trace,
    read_trace,
    write_trace,
)
from repro.workload.load import LoadDistribution, LoadTriplet


def make_world(length=5, subclasses=(0, 1, 0, 0, 0), objects=20_000):
    levels = [
        LevelSpec(f"L{i}", subclasses=subclasses[i % len(subclasses)])
        for i in range(length)
    ]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    remaining = objects
    for position in range(1, length + 1):
        for member in path.hierarchy_at(position):
            per_class[member] = ClassStats(
                objects=remaining, distinct=max(10, remaining // 6), fanout=1.0
            )
        remaining = max(50, remaining // 5)
    stats = PathStatistics(path, per_class)
    load = LoadDistribution.uniform(path, query=0.3, insert=0.1, delete=0.05)
    return stats, load


class TestTraceEvent:
    def test_valid_event(self):
        event = TraceEvent(timestamp=1.5, kind="query", class_name="A")
        assert event.to_dict() == {"ts": 1.5, "kind": "query", "class": "A"}
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_rejects_bad_kind(self):
        with pytest.raises(TraceError, match="kind"):
            TraceEvent(timestamp=0.0, kind="update", class_name="A")

    def test_rejects_bad_timestamp(self):
        for timestamp in (-1.0, float("inf"), float("nan")):
            with pytest.raises(TraceError, match="timestamp"):
                TraceEvent(timestamp=timestamp, kind="query", class_name="A")

    def test_rejects_empty_class(self):
        with pytest.raises(TraceError, match="class name"):
            TraceEvent(timestamp=0.0, kind="query", class_name="")

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(TraceError, match="object"):
            TraceEvent.from_dict([1, 2])
        with pytest.raises(TraceError, match="unknown"):
            TraceEvent.from_dict(
                {"ts": 0, "kind": "query", "class": "A", "extra": 1}
            )
        with pytest.raises(TraceError, match="missing"):
            TraceEvent.from_dict({"ts": 0, "kind": "query"})
        with pytest.raises(TraceError, match="number"):
            TraceEvent.from_dict({"ts": "soon", "kind": "query", "class": "A"})
        with pytest.raises(TraceError, match="number"):
            TraceEvent.from_dict({"ts": True, "kind": "query", "class": "A"})


class TestTraceJsonl:
    def test_round_trip(self, tmp_path):
        events = [
            TraceEvent(timestamp=float(i), kind=EVENT_KINDS[i % 3], class_name="A")
            for i in range(10)
        ]
        target = tmp_path / "trace.jsonl"
        assert write_trace(events, target) == 10
        assert read_trace(target) == events

    def test_blank_lines_skipped(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        target.write_text(
            '{"ts":0,"kind":"query","class":"A"}\n\n'
            '{"ts":1,"kind":"insert","class":"B"}\n',
            encoding="utf-8",
        )
        assert len(read_trace(target)) == 2

    def test_malformed_line_names_line_number(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        target.write_text(
            '{"ts":0,"kind":"query","class":"A"}\nnot json\n', encoding="utf-8"
        )
        with pytest.raises(TraceError, match=":2:"):
            read_trace(target)

    def test_invalid_event_names_line_number(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        target.write_text(
            '{"ts":0,"kind":"nope","class":"A"}\n', encoding="utf-8"
        )
        with pytest.raises(TraceError, match=":1:"):
            read_trace(target)


class TestGenerators:
    def test_deterministic_under_seed(self):
        stats, _load = make_world()
        for regime in TRACE_REGIMES:
            first = generate_trace(stats.path, regime, 300, seed=7)
            second = generate_trace(stats.path, regime, 300, seed=7)
            assert first == second, regime
            different = generate_trace(stats.path, regime, 300, seed=8)
            assert first != different, regime

    def test_events_valid_and_timestamps_increase(self):
        stats, _load = make_world()
        scope = set(stats.path.scope)
        for regime in TRACE_REGIMES:
            trace = generate_trace(stats.path, regime, 200, seed=3)
            assert len(trace) == 200
            previous = 0.0
            for event in trace:
                assert event.class_name in scope
                assert event.kind in EVENT_KINDS
                assert event.timestamp > previous
                previous = event.timestamp

    def test_edge_share_concentrates_mass(self):
        stats, _load = make_world()
        path = stats.path
        edge = set()
        for position in (path.length - 1, path.length):
            edge.update(path.hierarchy_at(position))
        trace = generate_trace(
            path, "edge_drift", 500, seed=1, edge_share=1.0
        )
        assert all(event.class_name in edge for event in trace)

    def test_rejects_bad_inputs(self):
        stats, _load = make_world()
        with pytest.raises(TraceError, match="regime"):
            generate_trace(stats.path, "chaotic", 10)
        with pytest.raises(TraceError, match="non-negative"):
            generate_trace(stats.path, "stationary", -1)
        with pytest.raises(TraceError, match="edge share"):
            generate_trace(stats.path, "edge_drift", 10, edge_share=1.5)
        with pytest.raises(TraceError, match="weights"):
            generate_trace(
                stats.path, "stationary", 10, query_weight=0, update_weight=0
            )

    def test_all_zero_rates_rejected_not_crashed(self):
        # edge_share=0 on a path whose whole scope is "edge" (length 2)
        # zeroes every rate; that must be a TraceError, not a raw
        # ValueError out of random.choices.
        levels = [LevelSpec("A"), LevelSpec("B")]
        _schema, path = linear_path_schema(levels)
        with pytest.raises(TraceError, match="zero"):
            generate_trace(path, "edge_drift", 10, edge_share=0.0)

    def test_zero_events(self):
        stats, _load = make_world()
        assert generate_trace(stats.path, "stationary", 0) == []


class TestWindowAggregator:
    def test_tumbling_counts_are_exact_fractions(self):
        stats, _load = make_world()
        start = stats.path.class_at(1)
        ending = stats.path.class_at(stats.length)
        aggregator = WindowAggregator(stats, window=4)
        events = [
            TraceEvent(1.0, "query", start),
            TraceEvent(2.0, "query", start),
            TraceEvent(3.0, "insert", ending),
            TraceEvent(4.0, "delete", ending),
        ]
        snapshots = [s for s in aggregator.feed(events)]
        assert len(snapshots) == 1
        snapshot = snapshots[0]
        assert snapshot.events == 4
        assert snapshot.load.triplet(start) == LoadTriplet(query=0.5)
        assert snapshot.load.triplet(ending) == LoadTriplet(
            insert=0.25, delete=0.25
        )
        assert snapshot.first_timestamp == 1.0
        assert snapshot.last_timestamp == 4.0
        assert "window 0" in snapshot.describe()

    def test_rate_scale_multiplies(self):
        stats, _load = make_world()
        start = stats.path.class_at(1)
        aggregator = WindowAggregator(stats, window=2, rate_scale=4.0)
        snapshot = None
        for event in [
            TraceEvent(1.0, "query", start),
            TraceEvent(2.0, "query", start),
        ]:
            snapshot = aggregator.push(event) or snapshot
        assert snapshot.load.triplet(start).query == 4.0

    def test_sliding_emits_every_slide(self):
        stats, _load = make_world()
        start = stats.path.class_at(1)
        aggregator = WindowAggregator(stats, window=4, slide=2)
        emitted = []
        for i in range(10):
            snapshot = aggregator.push(TraceEvent(float(i + 1), "query", start))
            if snapshot is not None:
                emitted.append(i + 1)
        # First at the 4th event, then every 2 events.
        assert emitted == [4, 6, 8, 10]
        assert aggregator.windows_emitted == 4
        assert aggregator.events_seen == 10

    def test_unknown_class_rejected(self):
        stats, _load = make_world()
        aggregator = WindowAggregator(stats, window=2)
        with pytest.raises(TraceError, match="scope"):
            aggregator.push(TraceEvent(1.0, "query", "Nope"))

    def test_validation(self):
        stats, _load = make_world()
        with pytest.raises(TraceError, match="window"):
            WindowAggregator(stats, window=0)
        with pytest.raises(TraceError, match="slide"):
            WindowAggregator(stats, window=2, slide=3)
        with pytest.raises(TraceError, match="rate scale"):
            WindowAggregator(stats, window=2, rate_scale=0.0)

    def test_statistics_tracking_adjusts_objects(self):
        stats, _load = make_world()
        ending = stats.path.class_at(stats.length)
        aggregator = WindowAggregator(stats, window=3, track_statistics=True)
        events = [
            TraceEvent(1.0, "insert", ending),
            TraceEvent(2.0, "insert", ending),
            TraceEvent(3.0, "delete", ending),
        ]
        snapshot = [s for s in aggregator.feed(events)][0]
        assert (
            snapshot.stats.stats_of(ending).objects
            == stats.stats_of(ending).objects + 1
        )
        # Untouched classes keep their statistics.
        start = stats.path.class_at(1)
        assert snapshot.stats.stats_of(start) == stats.stats_of(start)

    def test_statistics_untracked_passthrough(self):
        stats, _load = make_world()
        ending = stats.path.class_at(stats.length)
        aggregator = WindowAggregator(stats, window=2)
        events = [
            TraceEvent(1.0, "insert", ending),
            TraceEvent(2.0, "insert", ending),
        ]
        snapshot = [s for s in aggregator.feed(events)][0]
        assert snapshot.stats is stats

    def test_statistics_never_drop_below_one_object(self):
        stats, _load = make_world()
        ending = stats.path.class_at(stats.length)
        aggregator = WindowAggregator(stats, window=1, track_statistics=True)
        deletes = int(stats.stats_of(ending).objects) + 50
        snapshot = None
        for i in range(deletes):
            snapshot = aggregator.push(TraceEvent(float(i + 1), "delete", ending))
        adjusted = snapshot.stats.stats_of(ending)
        assert adjusted.objects == 1.0
        assert adjusted.distinct == 1.0


class TestDriftDetector:
    def test_first_observation_adopts_reference(self):
        stats, load = make_world()
        detector = DriftDetector(threshold=0.1, hysteresis=1)
        decision = detector.observe(load)
        assert not decision.fired
        assert decision.change == 0.0

    def test_fires_after_hysteresis_consecutive_windows(self):
        stats, load = make_world()
        detector = DriftDetector(threshold=0.1, hysteresis=2)
        detector.reset(load)
        drifted = load.scaled(2.0)
        first = detector.observe(drifted)
        assert not first.fired and first.streak == 1
        second = detector.observe(drifted)
        assert second.fired and second.streak == 2
        assert second.trigger is not None
        assert "re-advise" in second.describe()

    def test_streak_resets_on_calm_window(self):
        stats, load = make_world()
        detector = DriftDetector(threshold=0.1, hysteresis=2)
        detector.reset(load)
        assert detector.observe(load.scaled(2.0)).streak == 1
        assert detector.observe(load).streak == 0
        assert not detector.observe(load.scaled(2.0)).fired

    def test_reference_resets_on_fire(self):
        stats, load = make_world()
        detector = DriftDetector(threshold=0.1, hysteresis=1)
        detector.reset(load)
        drifted = load.scaled(2.0)
        assert detector.observe(drifted).fired
        # The drifted load is now the reference: observing it again is calm.
        calm = detector.observe(drifted)
        assert not calm.fired and calm.change == 0.0

    def test_small_changes_hold(self):
        stats, load = make_world()
        detector = DriftDetector(threshold=0.5, hysteresis=1)
        detector.reset(load)
        assert not detector.observe(load.scaled(1.2)).fired

    def test_statistics_changes_register(self):
        stats, load = make_world()
        detector = DriftDetector(threshold=0.1, hysteresis=1)
        detector.reset(load, stats)
        ending = stats.path.class_at(stats.length)
        per_class = {
            member: stats.stats_of(member)
            for position in range(1, stats.length + 1)
            for member in stats.members(position)
        }
        grown = per_class[ending]
        per_class[ending] = ClassStats(
            objects=grown.objects * 2,
            distinct=grown.distinct,
            fanout=grown.fanout,
        )
        new_stats = PathStatistics(stats.path, per_class, stats.config)
        decision = detector.observe(load, new_stats)
        assert decision.fired
        assert decision.trigger == f"{ending}:objects"

    def test_validation(self):
        with pytest.raises(TraceError, match="threshold"):
            DriftDetector(threshold=-0.1)
        with pytest.raises(TraceError, match="hysteresis"):
            DriftDetector(hysteresis=0)
        with pytest.raises(TraceError, match="floor"):
            DriftDetector(floor=0.0)


class TestWallClockWindows:
    def test_mode_property(self):
        stats, _load = make_world()
        assert WindowAggregator(stats, window=4).mode == "count"
        assert (
            WindowAggregator(stats, window_seconds=10.0).mode == "wall_clock"
        )
        assert (
            WindowAggregator(stats, window=4, window_seconds=10.0).mode
            == "hybrid"
        )

    def test_wall_clock_frequencies_are_rates(self):
        stats, _load = make_world()
        start = stats.path.class_at(1)
        aggregator = WindowAggregator(stats, window_seconds=4.0)
        snapshot = None
        for timestamp in (0.0, 1.0, 2.0, 4.0):
            snapshot = (
                aggregator.push(TraceEvent(timestamp, "query", start))
                or snapshot
            )
        # 3 events remain in the (0, 4] span (the t=0 event aged out);
        # frequencies are per second of window span.
        assert snapshot is not None
        assert snapshot.events == 3
        assert snapshot.load.triplet(start).query == 3 / 4.0
        assert aggregator.windows_emitted == 1

    def test_wall_clock_slide_seconds_cadence(self):
        stats, _load = make_world()
        start = stats.path.class_at(1)
        aggregator = WindowAggregator(
            stats, window_seconds=4.0, slide_seconds=2.0
        )
        emitted = []
        for timestamp in range(11):
            snapshot = aggregator.push(
                TraceEvent(float(timestamp), "query", start)
            )
            if snapshot is not None:
                emitted.append(timestamp)
        # First at t=4 (window filled), then every 2 seconds of progress.
        assert emitted == [4, 6, 8, 10]

    def test_wall_clock_timestamp_jump_emits_once(self):
        stats, _load = make_world()
        start = stats.path.class_at(1)
        aggregator = WindowAggregator(
            stats, window_seconds=1.0, slide_seconds=1.0
        )
        assert aggregator.push(TraceEvent(0.0, "query", start)) is None
        # A jump across many slide boundaries yields one snapshot, and the
        # next boundary is beyond the jump.
        assert aggregator.push(TraceEvent(50.0, "query", start)) is not None
        assert aggregator.push(TraceEvent(50.5, "query", start)) is None

    def test_hybrid_evicts_stale_events(self):
        stats, _load = make_world()
        start = stats.path.class_at(1)
        aggregator = WindowAggregator(stats, window=4, window_seconds=10.0)
        events = [
            TraceEvent(0.0, "insert", start),
            TraceEvent(1.0, "insert", start),
            TraceEvent(2.0, "query", start),
            TraceEvent(100.0, "query", start),
        ]
        snapshot = None
        for event in events:
            snapshot = aggregator.push(event) or snapshot
        # Count cadence (4th event) but only the fresh event survives the
        # age-out; the denominator stays the count window.
        assert snapshot is not None
        assert snapshot.events == 1
        assert snapshot.load.triplet(start) == LoadTriplet(query=1 / 4.0)

    def test_hybrid_dense_traffic_matches_count_mode(self):
        stats, _load = make_world()
        start = stats.path.class_at(1)
        count = WindowAggregator(stats, window=3, slide=2)
        hybrid = WindowAggregator(
            stats, window=3, slide=2, window_seconds=1000.0
        )
        events = [
            TraceEvent(float(i), ("query", "insert")[i % 2], start)
            for i in range(9)
        ]
        count_snapshots = list(count.feed(events))
        hybrid_snapshots = list(hybrid.feed(events))
        assert len(count_snapshots) == len(hybrid_snapshots)
        for left, right in zip(count_snapshots, hybrid_snapshots):
            assert left.load.triplet(start) == right.load.triplet(start)
            assert left.events == right.events

    def test_invalid_combinations_rejected(self):
        stats, _load = make_world()
        with pytest.raises(TraceError, match="window is required"):
            WindowAggregator(stats)
        with pytest.raises(TraceError, match="slide="):
            WindowAggregator(stats, window_seconds=5.0, slide=2)
        with pytest.raises(TraceError, match="slide_seconds"):
            WindowAggregator(
                stats, window_seconds=5.0, slide_seconds=6.0
            )
        with pytest.raises(TraceError, match="wall-clock mode only"):
            WindowAggregator(
                stats, window=4, window_seconds=5.0, slide_seconds=1.0
            )
        with pytest.raises(TraceError, match="window_seconds"):
            WindowAggregator(stats, window_seconds=0.0)


class TestAdaptiveThreshold:
    def test_anchors_historical_default_at_window_100(self):
        detector = DriftDetector.adaptive(100)
        assert detector.threshold == 0.2

    def test_shrinks_with_sqrt_window(self):
        assert DriftDetector.adaptive(400).threshold == 0.1
        assert DriftDetector.adaptive(25).threshold == 0.4

    def test_bottoms_out_at_minimum(self):
        detector = DriftDetector.adaptive(1_000_000)
        assert detector.threshold == 0.05

    def test_custom_scale_and_minimum(self):
        detector = DriftDetector.adaptive(
            100, noise_scale=1.0, min_threshold=0.0
        )
        assert detector.threshold == 0.1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(TraceError, match="positive window"):
            DriftDetector.adaptive(0)
        with pytest.raises(TraceError, match="noise scale"):
            DriftDetector.adaptive(100, noise_scale=0.0)
        with pytest.raises(TraceError, match="minimum threshold"):
            DriftDetector.adaptive(100, min_threshold=-0.1)
