"""Unit tests for ``repro.obs``: clock seam, metrics, recorder, export.

The determinism contract is the load-bearing property: under a
:class:`~repro.resilience.FakeClock` two identical runs must serialize
byte for byte, because the CI ``obs`` job and the workflow docs both
promise that a profile is a pure function of the work performed, not of
the wall clock it happened to run on.
"""

import json

import pytest

from repro.obs import (
    NULL_RECORDER,
    MetricsRegistry,
    NullRecorder,
    Recorder,
    chrome_trace_events,
    dumps_profile,
    metric_key,
    profile_document,
    resolve_recorder,
    stats_table,
    write_profile,
)
from repro.resilience import FakeClock


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("matrix.builds", {}) == "matrix.builds"

    def test_labels_sorted(self):
        key = metric_key("x", {"zeta": 1, "alpha": "two"})
        assert key == "x{alpha=two,zeta=1}"


class TestMetricsRegistry:
    def test_counter_identity_and_accumulation(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", layer="kernel")
        counter.add()
        registry.counter("hits", layer="kernel").add(4)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"hits{layer=kernel}": 5}

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3.0)
        registry.gauge("depth").set(1.5)
        assert registry.snapshot()["gauges"] == {"depth": 1.5}

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (2.0, 8.0, 5.0):
            registry.histogram("lat").observe(value)
        summary = registry.snapshot()["histograms"]["lat"]
        assert summary == {"count": 3, "sum": 15.0, "min": 2.0, "max": 8.0}

    def test_merge_adds_counters_and_histograms(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("rows").add(10)
        worker.counter("rows").add(7)
        worker.histogram("ms").observe(3.0)
        worker.gauge("depth").set(2.0)
        parent.merge(worker.snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"]["rows"] == 17
        assert snapshot["histograms"]["ms"]["count"] == 1
        assert snapshot["gauges"]["depth"] == 2.0

    def test_merge_empty_histogram_is_noop(self):
        parent = MetricsRegistry()
        parent.merge({"histograms": {"ms": {"count": 0, "sum": 0.0}}})
        assert parent.snapshot()["histograms"]["ms"]["count"] == 0

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta").add()
        registry.counter("alpha").add()
        assert list(registry.snapshot()["counters"]) == ["alpha", "zeta"]


class TestNullRecorder:
    def test_resolve_none_is_the_shared_null(self):
        assert resolve_recorder(None) is NULL_RECORDER
        real = Recorder(FakeClock())
        assert resolve_recorder(real) is real

    def test_every_operation_discards(self):
        recorder = NullRecorder()
        assert not recorder.enabled
        with recorder.span("x", a=1) as span:
            span.note(b=2)
        recorder.counter("c").add(5)
        recorder.gauge("g").set(1.0)
        recorder.histogram("h").observe(2.0)
        recorder.absorb({"spans": [{"name": "w"}], "metrics": {}}, tid=1)
        assert recorder.profile() == {
            "spans": [],
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }

    def test_shared_singletons(self):
        assert NULL_RECORDER.span("a") is NULL_RECORDER.span("b")
        assert NULL_RECORDER.counter("a") is NULL_RECORDER.histogram("b")


class TestRecorderSpans:
    def test_nesting_depth_and_timing(self):
        clock = FakeClock()
        recorder = Recorder(clock)
        with recorder.span("outer"):
            clock.advance(1.0)
            with recorder.span("inner", detail="x") as inner:
                clock.advance(0.25)
                inner.note(rows=3)
            clock.advance(0.5)
        inner_span, outer_span = recorder.spans
        assert inner_span["name"] == "inner"
        assert inner_span["depth"] == 1
        assert inner_span["ts"] == 1.0
        assert inner_span["dur"] == 0.25
        assert inner_span["args"] == {"detail": "x", "rows": 3}
        assert outer_span["depth"] == 0
        assert outer_span["ts"] == 0.0
        assert outer_span["dur"] == 1.75

    def test_span_records_on_exception(self):
        clock = FakeClock()
        recorder = Recorder(clock)
        with pytest.raises(ValueError):
            with recorder.span("failing"):
                clock.advance(2.0)
                raise ValueError("boom")
        assert recorder.spans[0]["name"] == "failing"
        assert recorder.spans[0]["dur"] == 2.0
        assert recorder._depth == 0

    def test_absorb_rewrites_tid_and_merges_metrics(self):
        worker_clock = FakeClock()
        worker = Recorder(worker_clock)
        with worker.span("kernel.fold"):
            worker_clock.advance(0.5)
        worker.counter("matrix.rows_priced").add(9)
        parent = Recorder(FakeClock())
        parent.counter("matrix.rows_priced").add(1)
        parent.absorb(worker.profile(), tid=2)
        assert parent.spans[0]["tid"] == 2
        snapshot = parent.profile()["metrics"]
        assert snapshot["counters"]["matrix.rows_priced"] == 10

    def test_absorb_empty_profile_is_noop(self):
        parent = Recorder(FakeClock())
        parent.absorb({}, tid=3)
        parent.absorb(None, tid=4)
        assert parent.spans == []


class TestExport:
    def make_recorder(self):
        clock = FakeClock()
        recorder = Recorder(clock)
        with recorder.span("advise"):
            clock.advance(0.01)
            with recorder.span("matrix.build", rows=6):
                clock.advance(0.002)
        recorder.counter("advise.calls").add()
        worker_clock = FakeClock()
        worker = Recorder(worker_clock)
        with worker.span("matrix.worker_batch"):
            worker_clock.advance(0.003)
        recorder.absorb(worker.profile(), tid=1)
        return recorder

    def test_chrome_events_shape(self):
        events = chrome_trace_events(self.make_recorder())
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert metadata[0]["args"]["name"] == "repro"
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in metadata
            if e["name"] == "thread_name"
        }
        assert thread_names == {0: "main", 1: "worker-1"}
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        build = next(e for e in complete if e["name"] == "matrix.build")
        assert build["cat"] == "matrix"
        assert build["ts"] == pytest.approx(10_000.0)
        assert build["dur"] == pytest.approx(2_000.0)
        assert build["args"] == {"rows": 6, "depth": 1}

    def test_profile_document_shape(self):
        document = profile_document(self.make_recorder(), meta={"command": "t"})
        assert document["displayTimeUnit"] == "ms"
        assert document["meta"] == {"command": "t"}
        assert document["metrics"]["counters"]["advise.calls"] == 1

    def test_fake_clock_runs_export_byte_identically(self):
        first = dumps_profile(self.make_recorder(), meta={"seed": 7})
        second = dumps_profile(self.make_recorder(), meta={"seed": 7})
        assert first == second
        json.loads(first)  # and it is valid JSON

    def test_write_profile_round_trips(self, tmp_path):
        target = write_profile(
            self.make_recorder(), tmp_path / "profile.json", meta={"a": 1}
        )
        document = json.loads(target.read_text(encoding="utf-8"))
        assert document["meta"] == {"a": 1}
        assert any(e["ph"] == "X" for e in document["traceEvents"])

    def test_stats_table_sections(self):
        recorder = self.make_recorder()
        recorder.gauge("pool.workers").set(2.0)
        recorder.histogram("batch.ms").observe(1.5)
        table = stats_table(recorder)
        assert "observability stats" in table
        assert "matrix.build" in table
        assert "advise.calls" in table
        assert "pool.workers" in table
        assert "batch.ms" in table

    def test_stats_table_empty_recorder(self):
        table = stats_table(Recorder(FakeClock()))
        assert "span" in table
