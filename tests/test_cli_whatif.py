"""CLI coverage for the ``whatif`` subcommand and the multipath restarts flag."""

import json

import pytest

from repro.cli import main
from repro.io import spec_to_dict
from repro.paper import figure7_load, figure7_statistics


@pytest.fixture(scope="module")
def spec_path(tmp_path_factory):
    document = spec_to_dict(figure7_statistics(), figure7_load())
    path = tmp_path_factory.mktemp("whatif") / "spec.json"
    path.write_text(json.dumps(document), encoding="utf-8")
    return str(path)


class TestWhatIfCommand:
    def test_perturb_flags_render_table(self, spec_path, capsys):
        code = main(
            [
                "whatif",
                spec_path,
                "--perturb",
                "Division:delete*2",
                "--perturb",
                "Division:query*4",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "baseline" in output
        assert "Division:delete*2" in output
        assert "configuration changes" in output

    def test_steps_file(self, spec_path, tmp_path, capsys):
        steps = tmp_path / "steps.json"
        steps.write_text(
            json.dumps(
                {
                    "steps": [
                        {"class": "Division", "component": "delete", "scale": 2},
                        {"class": "Vehicle", "component": "insert", "set": 0.4},
                    ]
                }
            ),
            encoding="utf-8",
        )
        code = main(["whatif", spec_path, "--steps", str(steps)])
        output = capsys.readouterr().out
        assert code == 0
        assert "Vehicle:insert=0.4" in output

    def test_json_payload_structure(self, spec_path, capsys):
        code = main(
            ["whatif", spec_path, "--perturb", "Division:delete*2", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["strategy"] == "incremental_dynamic_program"
        assert [step["step"] for step in payload["steps"]] == [0, 1]
        baseline, step = payload["steps"]
        assert baseline["mode"] is None
        assert step["mode"] == "incremental"
        assert step["rows_recomputed"] > 0
        assert step["rows_patched"] > 0  # the delete-at-Division CMD patch
        assert step["configuration"]

    def test_no_perturbations_is_an_error(self, spec_path, capsys):
        code = main(["whatif", spec_path])
        assert code == 1
        assert "no perturbations" in capsys.readouterr().err

    def test_bad_perturbation_is_an_error(self, spec_path, capsys):
        code = main(["whatif", spec_path, "--perturb", "Division:nope*2"])
        assert code == 1
        assert "component" in capsys.readouterr().err

    def test_unknown_class_is_an_error(self, spec_path, capsys):
        code = main(["whatif", spec_path, "--perturb", "Martian:query*2"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_explicit_strategy(self, spec_path, capsys):
        code = main(
            [
                "whatif",
                spec_path,
                "--perturb",
                "Division:query*2",
                "--strategy",
                "branch_and_bound",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["strategy"] == "branch_and_bound"


class TestMultipathRestartsFlag:
    def test_restarts_flag_accepted(self, spec_path, capsys):
        code = main(["multipath", spec_path, spec_path, "--restarts", "2"])
        assert code == 0
        assert "joint" in capsys.readouterr().out

    def test_negative_restarts_rejected(self, spec_path, capsys):
        code = main(["multipath", spec_path, "--restarts", "-1"])
        assert code == 1
        assert "restarts" in capsys.readouterr().err
