"""Tests for the operational B+-tree, including hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.btree import BPlusTree
from repro.storage.pager import Pager
from repro.storage.sizes import SizeModel

SMALL = SizeModel(page_size=256, atomic_key_size=16, record_header_size=8)


def make_tree(page_size: int = 256) -> BPlusTree:
    sizes = SizeModel(page_size=page_size, atomic_key_size=16)
    pager = Pager(page_size=page_size)
    return BPlusTree(pager, sizes, atomic_keys=True, name="t")


class TestBasicOperations:
    def test_empty_tree(self):
        tree = make_tree()
        assert tree.height == 1
        assert tree.record_count == 0
        assert tree.search("missing") is None

    def test_insert_and_search(self):
        tree = make_tree()
        tree.insert("k", {"v": 1}, 20)
        assert tree.search("k") == {"v": 1}
        assert tree.record_count == 1

    def test_duplicate_insert_rejected(self):
        tree = make_tree()
        tree.insert("k", 1, 20)
        with pytest.raises(StorageError):
            tree.insert("k", 2, 20)

    def test_update_replaces_value(self):
        tree = make_tree()
        tree.insert("k", 1, 20)
        tree.update("k", 2, 30)
        assert tree.search("k") == 2

    def test_update_missing_rejected(self):
        tree = make_tree()
        with pytest.raises(StorageError):
            tree.update("k", 1, 20)

    def test_upsert(self):
        tree = make_tree()
        tree.upsert("k", 1, 20)
        tree.upsert("k", 2, 20)
        assert tree.search("k") == 2
        assert tree.record_count == 1

    def test_delete_returns_value(self):
        tree = make_tree()
        tree.insert("k", 7, 20)
        assert tree.delete("k") == 7
        assert tree.search("k") is None

    def test_delete_missing_rejected(self):
        tree = make_tree()
        with pytest.raises(StorageError):
            tree.delete("k")

    def test_zero_size_record_rejected(self):
        tree = make_tree()
        with pytest.raises(StorageError):
            tree.insert("k", 1, 0)

    def test_items_in_key_order(self):
        tree = make_tree()
        for key in ["d", "a", "c", "b"]:
            tree.insert(key, key.upper(), 20)
        assert [k for k, _ in tree.items()] == ["a", "b", "c", "d"]


class TestGrowthAndShrink:
    def test_splits_grow_height(self):
        tree = make_tree(page_size=256)
        for i in range(200):
            tree.insert(f"key{i:04d}", i, 40)
        assert tree.height >= 2
        tree.check_invariants()
        assert tree.record_count == 200
        for i in range(0, 200, 17):
            assert tree.search(f"key{i:04d}") == i

    def test_range_scan(self):
        tree = make_tree()
        for i in range(100):
            tree.insert(f"{i:03d}", i, 30)
        result = tree.range_scan("010", "020")
        assert [value for _, value in result] == list(range(10, 21))

    def test_range_scan_empty_range(self):
        tree = make_tree()
        for i in range(10):
            tree.insert(f"{i:03d}", i, 30)
        assert tree.range_scan("900", "999") == []

    def test_deletes_shrink_to_empty(self):
        tree = make_tree(page_size=256)
        keys = [f"key{i:04d}" for i in range(150)]
        for i, key in enumerate(keys):
            tree.insert(key, i, 40)
        for key in keys:
            tree.delete(key)
        assert tree.record_count == 0
        assert list(tree.items()) == []
        tree.check_invariants()

    def test_leaf_page_count_tracks_chain(self):
        tree = make_tree(page_size=256)
        for i in range(120):
            tree.insert(f"key{i:04d}", i, 40)
        # The chain must contain every leaf reachable from the root.
        tree.check_invariants()
        assert tree.leaf_page_count() >= 120 * 40 // 256


class TestOversizedRecords:
    def test_oversized_record_round_trip(self):
        tree = make_tree(page_size=256)
        tree.insert("big", list(range(100)), 2000)
        assert tree.search("big") == list(range(100))

    def test_oversized_record_charges_overflow_pages(self):
        sizes = SizeModel(page_size=256, atomic_key_size=16)
        pager = Pager(page_size=256)
        tree = BPlusTree(pager, sizes, atomic_keys=True)
        tree.insert("big", "x", 1024)  # 4 overflow pages
        before = pager.stats()
        tree.search("big")
        delta = pager.stats() - before
        assert delta.reads == tree.height - 1 + 4 + 1  # descent + stub leaf math
        # Partial retrieval reads fewer pages.
        before = pager.stats()
        tree.search("big", partial_pages=1)
        partial = pager.stats() - before
        assert partial.reads < delta.reads

    def test_oversized_then_shrunk_record_frees_overflow(self):
        sizes = SizeModel(page_size=256, atomic_key_size=16)
        pager = Pager(page_size=256)
        tree = BPlusTree(pager, sizes, atomic_keys=True)
        tree.insert("big", "x", 1024)
        live_before = pager.live_pages
        tree.update("big", "y", 20)
        assert pager.live_pages < live_before

    def test_delete_frees_overflow_pages(self):
        sizes = SizeModel(page_size=256, atomic_key_size=16)
        pager = Pager(page_size=256)
        tree = BPlusTree(pager, sizes, atomic_keys=True)
        baseline = pager.live_pages
        tree.insert("big", "x", 5000)
        tree.delete("big")
        assert pager.live_pages == baseline


class TestDirectAccess:
    def test_search_direct_charges_no_descent(self):
        sizes = SizeModel(page_size=4096)
        pager = Pager(page_size=4096)
        tree = BPlusTree(pager, sizes, atomic_keys=True)
        for i in range(500):
            tree.insert(f"key{i:04d}", i, 60)
        before = pager.stats()
        assert tree.search_direct("key0100") == 100
        delta = pager.stats() - before
        assert delta.reads == 1  # just the leaf page

    def test_search_direct_missing_returns_none(self):
        tree = make_tree()
        assert tree.search_direct("missing") is None

    def test_update_direct_rewrites_without_descent_reads(self):
        sizes = SizeModel(page_size=4096)
        pager = Pager(page_size=4096)
        tree = BPlusTree(pager, sizes, atomic_keys=True)
        for i in range(100):
            tree.insert(f"key{i:04d}", i, 60)
        before = pager.stats()
        tree.update_direct("key0050", -50, 60)
        delta = pager.stats() - before
        assert delta.reads == 0
        assert delta.writes == 1
        assert tree.get("key0050") == -50

    def test_update_direct_missing_rejected(self):
        tree = make_tree()
        with pytest.raises(StorageError):
            tree.update_direct("missing", 1, 20)


class TestAccessCounting:
    def test_search_costs_height_reads(self):
        sizes = SizeModel(page_size=256, atomic_key_size=16)
        pager = Pager(page_size=256)
        tree = BPlusTree(pager, sizes, atomic_keys=True)
        for i in range(200):
            tree.insert(f"key{i:04d}", i, 40)
        before = pager.stats()
        tree.search("key0123")
        delta = pager.stats() - before
        assert delta.reads == tree.height

    def test_insert_charges_descent_and_leaf_write(self):
        sizes = SizeModel(page_size=4096)
        pager = Pager(page_size=4096)
        tree = BPlusTree(pager, sizes, atomic_keys=True)
        tree.insert("a", 1, 60)
        before = pager.stats()
        tree.insert("b", 2, 60)
        delta = pager.stats() - before
        assert delta == type(delta)(reads=1, writes=1)


# ---------------------------------------------------------------------------
# property-based tests
# ---------------------------------------------------------------------------

operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "update"]),
        st.integers(min_value=0, max_value=60),
    ),
    min_size=1,
    max_size=120,
)


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_btree_matches_dict_model(ops):
    """The tree behaves exactly like a sorted dict under random workloads."""
    tree = make_tree(page_size=256)
    model: dict[str, int] = {}
    for action, number in ops:
        key = f"k{number:03d}"
        if action == "insert" and key not in model:
            tree.insert(key, number, 30 + number)
            model[key] = number
        elif action == "delete" and key in model:
            tree.delete(key)
            del model[key]
        elif action == "update" and key in model:
            tree.update(key, number + 1000, 30 + number)
            model[key] = number + 1000
    assert dict(tree.items()) == model
    assert tree.record_count == len(model)
    tree.check_invariants()


@given(
    keys=st.sets(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=300),
    sizes_choice=st.sampled_from([20, 40, 80, 300]),
)
@settings(max_examples=40, deadline=None)
def test_btree_bulk_insert_sorted_iteration(keys, sizes_choice):
    """All inserted keys come back in sorted order, at uniform leaf depth."""
    tree = make_tree(page_size=256)
    for key in keys:
        tree.insert(key, key, sizes_choice)
    assert [k for k, _ in tree.items()] == sorted(keys)
    tree.check_invariants()


@given(keys=st.sets(st.integers(min_value=0, max_value=500), min_size=2, max_size=200))
@settings(max_examples=40, deadline=None)
def test_btree_range_scan_matches_filter(keys):
    tree = make_tree(page_size=256)
    for key in keys:
        tree.insert(key, -key, 30)
    ordered = sorted(keys)
    low, high = ordered[0], ordered[-1]
    middle_low = ordered[len(ordered) // 3]
    middle_high = ordered[2 * len(ordered) // 3]
    expected = [k for k in ordered if middle_low <= k <= middle_high]
    result = [k for k, _ in tree.range_scan(middle_low, middle_high)]
    assert result == expected
    assert [k for k, _ in tree.range_scan(low, high)] == ordered
