"""Tests for the synthetic schema/data generators and stats derivation."""

import pytest

from repro.costmodel.params import ClassStats
from repro.errors import SchemaError
from repro.synth import (
    LevelSpec,
    derive_path_statistics,
    linear_path_schema,
    populate_path_database,
)


class TestSchemaGeneration:
    def test_linear_schema_shape(self):
        schema, path = linear_path_schema(
            [LevelSpec("X"), LevelSpec("Y", subclasses=2), LevelSpec("Z")]
        )
        assert path.length == 3
        assert path.classes == ("X", "Y", "Z")
        assert set(path.scope) == {"X", "Y", "YSub1", "YSub2", "Z"}

    def test_attribute_names(self):
        _, path = linear_path_schema([LevelSpec("X"), LevelSpec("Y")])
        assert path.attribute_names == ("ref1", "label")

    def test_multi_valued_marker(self):
        schema, path = linear_path_schema(
            [LevelSpec("X", multi_valued=True), LevelSpec("Y")]
        )
        assert path.attribute_def_at(1).multi_valued

    def test_custom_ending_attribute(self):
        _, path = linear_path_schema(
            [LevelSpec("X"), LevelSpec("Y")], ending_attribute="title"
        )
        assert path.ending_attribute == "title"

    def test_empty_levels_rejected(self):
        with pytest.raises(SchemaError):
            linear_path_schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            linear_path_schema([LevelSpec("X"), LevelSpec("X")])

    def test_negative_subclasses_rejected(self):
        with pytest.raises(SchemaError):
            LevelSpec("X", subclasses=-1)


class TestPopulation:
    def test_population_counts(self, small_synth):
        _schema, path, database, specs = small_synth
        for name, spec in specs.items():
            assert database.extent_size(name) == spec.objects

    def test_distinct_targets_hit(self, small_synth):
        _schema, path, database, specs = small_synth
        assert database.distinct_values("A", "ref1") == specs["A"].distinct
        assert database.distinct_values("C", "label") == specs["C"].distinct

    def test_fanout_targets_hit(self, small_synth):
        _schema, path, database, specs = small_synth
        assert database.average_fanout("A", "ref1") == pytest.approx(
            specs["A"].fanout, rel=0.01
        )

    def test_missing_spec_rejected(self):
        schema, path = linear_path_schema([LevelSpec("X"), LevelSpec("Y")])
        with pytest.raises(SchemaError):
            populate_path_database(schema, path, {"X": ClassStats(10, 5)})

    def test_references_point_to_next_level(self, small_synth):
        _schema, path, database, _specs = small_synth
        for instance in database.extent("A"):
            for value in instance.value_list("ref1"):
                assert value.class_name in {"B", "BSub1", "BSub2"}
                assert database.contains(value)

    def test_too_many_distinct_references_rejected(self):
        schema, path = linear_path_schema([LevelSpec("X"), LevelSpec("Y")])
        specs = {
            "X": ClassStats(objects=10, distinct=8, fanout=1),
            "Y": ClassStats(objects=4, distinct=4, fanout=1),
        }
        # X wants 8 distinct Y references but only 4 Y objects exist:
        # the pool clamp reduces it, so this should succeed with d=4.
        database = populate_path_database(schema, path, specs)
        assert database.distinct_values("X", "ref1") <= 4

    def test_deterministic_for_seed(self):
        schema, path = linear_path_schema([LevelSpec("X"), LevelSpec("Y")])
        specs = {
            "X": ClassStats(objects=20, distinct=10, fanout=1),
            "Y": ClassStats(objects=10, distinct=5, fanout=1),
        }
        first = populate_path_database(schema, path, specs, seed=3)
        second = populate_path_database(schema, path, specs, seed=3)
        values_first = [
            i.values["ref1"] for i in first.extent("X")
        ]
        values_second = [
            i.values["ref1"] for i in second.extent("X")
        ]
        assert values_first == values_second


class TestStatsDerivation:
    def test_derived_stats_match_specs(self, small_synth):
        _schema, path, database, specs = small_synth
        stats = derive_path_statistics(database, path)
        for position in range(1, path.length + 1):
            for member in path.hierarchy_at(position):
                spec = specs[member]
                assert stats.n(position, member) == spec.objects
                assert stats.nin(position, member) == pytest.approx(
                    spec.fanout, rel=0.01
                )

    def test_derived_stats_usable_by_advisor(self, small_synth):
        from repro.core.advisor import advise
        from repro.workload.load import LoadDistribution

        _schema, path, database, _specs = small_synth
        stats = derive_path_statistics(database, path)
        load = LoadDistribution.uniform(path, query=0.3, insert=0.05, delete=0.05)
        report = advise(stats, load)
        assert report.optimal.cost > 0

    def test_empty_class_stats(self):
        schema, path = linear_path_schema(
            [LevelSpec("X"), LevelSpec("Y", subclasses=1)]
        )
        specs = {
            "X": ClassStats(objects=10, distinct=5, fanout=1),
            "Y": ClassStats(objects=5, distinct=3, fanout=1),
            "YSub1": ClassStats(objects=0, distinct=0, fanout=0),
        }
        database = populate_path_database(schema, path, specs)
        stats = derive_path_statistics(database, path)
        assert stats.n(2, "YSub1") == 0
