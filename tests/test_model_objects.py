"""Tests for repro.model.objects (the object store)."""

import pytest

from repro.errors import SchemaError
from repro.model.objects import OID, OODatabase


class TestOID:
    def test_ordering_by_class_then_serial(self):
        assert OID("A", 1) < OID("A", 2) < OID("B", 0)

    def test_str_matches_paper_convention(self):
        assert str(OID("Vehicle", 3)) == "Vehicle[3]"

    def test_hashable(self):
        assert len({OID("A", 1), OID("A", 1), OID("A", 2)}) == 2


class TestCreation:
    def test_create_assigns_sequential_serials(self, vehicle_schema):
        database = OODatabase(vehicle_schema)
        first = database.create("Division", name="d0", budget=1)
        second = database.create("Division", name="d1", budget=2)
        assert (first.serial, second.serial) == (0, 1)

    def test_missing_attribute_rejected_no_nulls(self, vehicle_schema):
        database = OODatabase(vehicle_schema)
        with pytest.raises(SchemaError, match="NULL"):
            database.create("Division", name="d0")

    def test_unknown_attribute_rejected(self, vehicle_schema):
        database = OODatabase(vehicle_schema)
        with pytest.raises(SchemaError):
            database.create("Division", name="d0", budget=1, bogus=2)

    def test_atomic_domain_checked(self, vehicle_schema):
        database = OODatabase(vehicle_schema)
        with pytest.raises(SchemaError):
            database.create("Division", name=42, budget=1)

    def test_scalar_for_multi_valued_rejected(self, vehicle_db):
        vehicle = next(vehicle_db.extent("Vehicle")).oid
        with pytest.raises(SchemaError):
            vehicle_db.create("Person", name="X", age=1, owns=vehicle)

    def test_collection_for_single_valued_rejected(self, vehicle_db):
        company = next(vehicle_db.extent("Company")).oid
        with pytest.raises(SchemaError):
            vehicle_db.create(
                "Vehicle", vid=1, color="c", max_speed=1, man=[company]
            )

    def test_dangling_forward_reference_rejected(self, vehicle_schema):
        database = OODatabase(vehicle_schema)
        with pytest.raises(SchemaError, match="dangling"):
            database.create(
                "Vehicle", vid=1, color="c", max_speed=1, man=OID("Company", 99)
            )

    def test_reference_must_match_domain_hierarchy(self, vehicle_db):
        division = next(vehicle_db.extent("Division")).oid
        with pytest.raises(SchemaError):
            vehicle_db.create(
                "Vehicle", vid=9, color="c", max_speed=1, man=division
            )

    def test_subclass_reference_accepted(self, vehicle_db):
        bus = next(vehicle_db.extent("Bus")).oid
        person = vehicle_db.create("Person", name="Y", age=2, owns=[bus])
        assert vehicle_db.get(person).value_list("owns") == [bus]

    def test_inherited_attributes_required(self, vehicle_db):
        company = next(vehicle_db.extent("Company")).oid
        with pytest.raises(SchemaError, match="missing"):
            vehicle_db.create("Bus", height=3, seats=10, man=company)


class TestLookupAndExtents:
    def test_extent_counts(self, vehicle_db):
        assert vehicle_db.extent_size("Vehicle") == 3
        assert vehicle_db.extent_size("Bus") == 2
        assert vehicle_db.extent_size("Truck") == 1

    def test_hierarchy_extent(self, vehicle_db):
        oids = [i.oid for i in vehicle_db.hierarchy_extent("Vehicle")]
        assert len(oids) == 6
        assert {oid.class_name for oid in oids} == {"Vehicle", "Bus", "Truck"}

    def test_get_missing_raises(self, vehicle_db):
        with pytest.raises(SchemaError):
            vehicle_db.get(OID("Person", 999))

    def test_total_objects(self, vehicle_db):
        assert vehicle_db.total_objects() == 6 + 3 + 6 + 4  # div+comp+veh+per

    def test_value_list_wraps_scalars(self, vehicle_db):
        vehicle = next(vehicle_db.extent("Vehicle"))
        assert isinstance(vehicle.value_list("man"), list)


class TestDeletionAndParents:
    def test_delete_removes_from_extent(self, vehicle_db):
        person = next(vehicle_db.extent("Person")).oid
        vehicle_db.delete(person)
        assert not vehicle_db.contains(person)

    def test_delete_missing_raises(self, vehicle_db):
        with pytest.raises(SchemaError):
            vehicle_db.delete(OID("Person", 999))

    def test_parents_of_tracks_references(self, vehicle_db):
        vehicle = next(vehicle_db.extent("Vehicle")).oid
        parents = vehicle_db.parents_of(vehicle, "owns")
        assert all(p.class_name == "Person" for p in parents)
        assert len(parents) == 1

    def test_parents_of_all_attributes(self, vehicle_db):
        company = next(vehicle_db.extent("Company")).oid
        assert vehicle_db.parents_of(company) == vehicle_db.parents_of(company, "man")

    def test_delete_unregisters_outgoing_references(self, vehicle_db):
        person = next(vehicle_db.extent("Person"))
        owned = [v for v in person.value_list("owns")]
        vehicle_db.delete(person.oid)
        for vehicle in owned:
            assert person.oid not in vehicle_db.parents_of(vehicle, "owns")

    def test_parents_reflect_multiple_referrers(self, vehicle_db):
        bus = next(vehicle_db.extent("Bus")).oid
        extra = vehicle_db.create("Person", name="Z", age=3, owns=[bus])
        assert extra in vehicle_db.parents_of(bus, "owns")


class TestStatisticsHelpers:
    def test_distinct_values(self, vehicle_db):
        # Figure 2: vehicles reference Renault and Fiat (2 distinct).
        assert vehicle_db.distinct_values("Vehicle", "man") == 2

    def test_average_fanout_single_valued(self, vehicle_db):
        assert vehicle_db.average_fanout("Vehicle", "man") == 1.0

    def test_average_fanout_multi_valued(self, vehicle_db):
        assert vehicle_db.average_fanout("Company", "divisions") == 2.0

    def test_average_fanout_empty_extent(self, vehicle_schema):
        database = OODatabase(vehicle_schema)
        assert database.average_fanout("Person", "owns") == 0.0
