"""Tests for the operational no-index (scan) evaluation."""

import pytest

from repro.core.configuration import IndexConfiguration
from repro.indexes.manager import ConfigurationIndexSet
from repro.model.examples import populate_vehicle_database
from repro.organizations import IndexOrganization

NIX = IndexOrganization.NIX
NONE = IndexOrganization.NONE


def build(vehicle_schema, pexa, config):
    database = populate_vehicle_database(vehicle_schema)
    return ConfigurationIndexSet(database, pexa, config)


class TestScanIndex:
    def test_scan_answers_match_indexed(self, vehicle_schema, pexa):
        scanned = build(vehicle_schema, pexa, IndexConfiguration.whole_path(4, NONE))
        indexed = build(vehicle_schema, pexa, IndexConfiguration.whole_path(4, NIX))
        for target in ("Person", "Vehicle", "Bus", "Company", "Division"):
            assert {
                (o.class_name, o.serial)
                for o in scanned.query("Fiat-movings", target)
            } == {
                (o.class_name, o.serial)
                for o in indexed.query("Fiat-movings", target)
            }

    def test_scan_charges_extent_pages(self, vehicle_schema, pexa):
        indexes = build(
            vehicle_schema, pexa, IndexConfiguration.whole_path(4, NONE)
        )
        with indexes.pager.measure() as measurement:
            indexes.query("Fiat-movings", "Person")
        assert measurement.result.reads >= 1

    def test_scan_maintenance_free(self, vehicle_schema, pexa):
        indexes = build(
            vehicle_schema, pexa, IndexConfiguration.whole_path(4, NONE)
        )
        vehicle = next(indexes.database.extent("Vehicle")).oid
        with indexes.pager.measure() as measurement:
            indexes.insert("Person", name="S", age=1, owns=[vehicle])
        # Only the heap placement (no page traffic in our model).
        assert measurement.result.total == 0

    def test_mixed_scan_and_index_configuration(self, vehicle_schema, pexa):
        config = IndexConfiguration.of((1, 2, NIX), (3, 4, NONE))
        indexes = build(vehicle_schema, pexa, config)
        result = indexes.query("Fiat-movings", "Person")
        names = {indexes.database.get(oid).values["name"] for oid in result}
        assert names == {"Piet", "Sonia", "Henk"}
        indexes.check_consistency()

    def test_scan_respects_subclass_flag(self, vehicle_schema, pexa):
        indexes = build(
            vehicle_schema, pexa, IndexConfiguration.whole_path(4, NONE)
        )
        with_subs = indexes.query(
            "Fiat-movings", "Vehicle", include_subclasses=True
        )
        without = indexes.query("Fiat-movings", "Vehicle")
        assert len(with_subs) > len(without)
