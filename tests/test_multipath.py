"""Tests for the multi-path extension (Section 6)."""

import pytest

from repro.core.multipath import (
    MultiPathResult,
    PathWorkload,
    optimize_multipath,
)
from repro.errors import OptimizerError
from repro.paper import figure7_load, figure7_statistics, pe_path, pexa_path
from repro.workload.load import LoadDistribution, LoadTriplet


def pe_workload(schema=None):
    """Statistics and workload for the shorter path Pe (shares Per.owns.man)."""
    from repro.costmodel.params import ClassStats, PathStatistics
    from repro.paper import FIGURE7_ROWS

    path = pe_path()
    per_class = {
        name: ClassStats(objects=n, distinct=d, fanout=nin)
        for name, (n, d, nin, _) in FIGURE7_ROWS.items()
        if name in path.scope
    }
    stats = PathStatistics(path, per_class)
    load = LoadDistribution(
        path,
        {
            name: LoadTriplet(*FIGURE7_ROWS[name][3])
            for name in path.scope
        },
    )
    return PathWorkload(stats=stats, load=load)


def pexa_workload():
    return PathWorkload(stats=figure7_statistics(), load=figure7_load())


class TestSinglePath:
    def test_degenerates_to_single_path_optimum(self):
        workload = pexa_workload()
        result = optimize_multipath([workload])
        from repro.core.advisor import advise

        single = advise(workload.stats, workload.load)
        assert result.total_cost <= single.optimal.cost + 1e-6
        assert result.exact

    def test_empty_input_rejected(self):
        with pytest.raises(OptimizerError):
            optimize_multipath([])


class TestTwoOverlappingPaths:
    def test_joint_cost_at_most_independent(self):
        result = optimize_multipath([pexa_workload(), pe_workload()])
        assert result.total_cost <= result.independent_cost + 1e-6
        assert result.shared_savings >= 0.0

    def test_configurations_cover_both_paths(self):
        workloads = [pexa_workload(), pe_workload()]
        result = optimize_multipath(workloads)
        assert len(result.configurations) == 2
        assert result.configurations[0].length == 4
        assert result.configurations[1].length == 3

    def test_render(self):
        workloads = [pexa_workload(), pe_workload()]
        result = optimize_multipath(workloads)
        text = result.render(workloads)
        assert "joint cost" in text
        assert "Person.owns.man" in text

    def test_sharing_reported_when_identical_subpath_chosen(self):
        """Two identical paths must share everything."""
        workloads = [pexa_workload(), pexa_workload()]
        result = optimize_multipath(workloads)
        assert result.shared_savings > 0.0
        assert result.configurations[0].partition() == result.configurations[
            1
        ].partition()

    def test_per_row_organizations_widens_search(self):
        workloads = [pexa_workload(), pe_workload()]
        narrow = optimize_multipath(workloads, per_row_organizations=1)
        wide = optimize_multipath(workloads, per_row_organizations=2)
        assert wide.total_cost <= narrow.total_cost + 1e-6
