"""Tests for the multi-path extension (Section 6)."""

import pytest

from repro.core.multipath import (
    MultiPathResult,
    PathWorkload,
    optimize_multipath,
)
from repro.errors import OptimizerError
from repro.paper import figure7_load, figure7_statistics, pe_path, pexa_path
from repro.workload.load import LoadDistribution, LoadTriplet


def pe_workload(schema=None):
    """Statistics and workload for the shorter path Pe (shares Per.owns.man)."""
    from repro.costmodel.params import ClassStats, PathStatistics
    from repro.paper import FIGURE7_ROWS

    path = pe_path()
    per_class = {
        name: ClassStats(objects=n, distinct=d, fanout=nin)
        for name, (n, d, nin, _) in FIGURE7_ROWS.items()
        if name in path.scope
    }
    stats = PathStatistics(path, per_class)
    load = LoadDistribution(
        path,
        {
            name: LoadTriplet(*FIGURE7_ROWS[name][3])
            for name in path.scope
        },
    )
    return PathWorkload(stats=stats, load=load)


def pexa_workload():
    return PathWorkload(stats=figure7_statistics(), load=figure7_load())


class TestSinglePath:
    def test_degenerates_to_single_path_optimum(self):
        workload = pexa_workload()
        result = optimize_multipath([workload])
        from repro.core.advisor import advise

        single = advise(workload.stats, workload.load)
        assert result.total_cost <= single.optimal.cost + 1e-6
        assert result.exact

    def test_empty_input_rejected(self):
        with pytest.raises(OptimizerError):
            optimize_multipath([])


class TestTwoOverlappingPaths:
    def test_joint_cost_at_most_independent(self):
        result = optimize_multipath([pexa_workload(), pe_workload()])
        assert result.total_cost <= result.independent_cost + 1e-6
        assert result.shared_savings >= 0.0

    def test_configurations_cover_both_paths(self):
        workloads = [pexa_workload(), pe_workload()]
        result = optimize_multipath(workloads)
        assert len(result.configurations) == 2
        assert result.configurations[0].length == 4
        assert result.configurations[1].length == 3

    def test_render(self):
        workloads = [pexa_workload(), pe_workload()]
        result = optimize_multipath(workloads)
        text = result.render(workloads)
        assert "joint cost" in text
        assert "Person.owns.man" in text

    def test_sharing_reported_when_identical_subpath_chosen(self):
        """Two identical paths must share everything."""
        workloads = [pexa_workload(), pexa_workload()]
        result = optimize_multipath(workloads)
        assert result.shared_savings > 0.0
        assert result.configurations[0].partition() == result.configurations[
            1
        ].partition()

    def test_per_row_organizations_widens_search(self):
        workloads = [pexa_workload(), pe_workload()]
        narrow = optimize_multipath(workloads, per_row_organizations=1)
        wide = optimize_multipath(workloads, per_row_organizations=2)
        assert wide.total_cost <= narrow.total_cost + 1e-6


class TestPrecomputedMatrices:
    def test_precomputed_matrices_match_internal_computation(self):
        from repro.core.cost_matrix import CostMatrix

        workloads = [pexa_workload(), pe_workload()]
        matrices = [
            CostMatrix.compute(w.stats, w.load) for w in workloads
        ]
        reused = optimize_multipath(workloads, matrices=matrices)
        computed = optimize_multipath(workloads)
        assert reused.total_cost == pytest.approx(computed.total_cost)
        assert reused.shared_savings == pytest.approx(computed.shared_savings)

    def test_recomputed_matrices_feed_what_if_loop(self):
        from repro.core.cost_matrix import CostMatrix
        from repro.workload.load import LoadDistribution

        workloads = [pexa_workload(), pe_workload()]
        matrices = [CostMatrix.compute(w.stats, w.load) for w in workloads]
        # Perturb the first path's workload and reuse its matrix
        # incrementally instead of recomputing both from scratch.
        first = workloads[0]
        new_load = LoadDistribution(
            first.load.path,
            {
                name: (
                    triplet.scaled(2.0) if name == "Person" else triplet
                )
                for name, triplet in first.load.items()
            },
        )
        new_workloads = [PathWorkload(first.stats, new_load), workloads[1]]
        new_matrices = [matrices[0].recompute(load=new_load), matrices[1]]
        incremental = optimize_multipath(new_workloads, matrices=new_matrices)
        fresh = optimize_multipath(new_workloads)
        assert incremental.total_cost == pytest.approx(fresh.total_cost)

    def test_matrix_count_mismatch_rejected(self):
        from repro.core.cost_matrix import CostMatrix

        workloads = [pexa_workload(), pe_workload()]
        matrix = CostMatrix.compute(
            workloads[0].stats, workloads[0].load
        )
        with pytest.raises(OptimizerError, match="matrices"):
            optimize_multipath(workloads, matrices=[matrix])

    def test_matrix_length_mismatch_rejected(self):
        from repro.core.cost_matrix import CostMatrix

        workloads = [pexa_workload(), pe_workload()]
        long_matrix = CostMatrix.compute(
            workloads[0].stats, workloads[0].load
        )
        with pytest.raises(OptimizerError, match="length"):
            optimize_multipath(workloads, matrices=[long_matrix, long_matrix])

    def test_workers_parameter_accepted(self):
        workloads = [pexa_workload()]
        serial = optimize_multipath(workloads, workers=0)
        parallel = optimize_multipath(workloads, workers=2)
        assert serial.total_cost == parallel.total_cost
