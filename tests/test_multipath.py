"""Tests for the multi-path extension (Section 6).

Covers the beam-backed candidate generation (k-best sweep parity against
the exact enumeration oracle, property-tested), the joint cross-path
search, and the storage-budget variant (never exceeds the budget,
degrades monotonically as it tightens).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_matrix import CostMatrix
from repro.core.multipath import (
    MultiPathResult,
    PathWorkload,
    optimize_multipath,
)
from repro.costmodel.params import ClassStats, PathStatistics
from repro.errors import OptimizerError
from repro.model.path import Path
from repro.organizations import EXTENDED_ORGANIZATIONS, IndexOrganization
from repro.paper import figure7_load, figure7_statistics, pe_path, pexa_path
from repro.search.partitions import configuration_count
from repro.synth import LevelSpec, linear_path_schema
from repro.workload.load import LoadDistribution, LoadTriplet


def pe_workload(schema=None):
    """Statistics and workload for the shorter path Pe (shares Per.owns.man)."""
    from repro.costmodel.params import ClassStats, PathStatistics
    from repro.paper import FIGURE7_ROWS

    path = pe_path()
    per_class = {
        name: ClassStats(objects=n, distinct=d, fanout=nin)
        for name, (n, d, nin, _) in FIGURE7_ROWS.items()
        if name in path.scope
    }
    stats = PathStatistics(path, per_class)
    load = LoadDistribution(
        path,
        {
            name: LoadTriplet(*FIGURE7_ROWS[name][3])
            for name in path.scope
        },
    )
    return PathWorkload(stats=stats, load=load)


def pexa_workload():
    return PathWorkload(stats=figure7_statistics(), load=figure7_load())


class TestSinglePath:
    def test_degenerates_to_single_path_optimum(self):
        workload = pexa_workload()
        result = optimize_multipath([workload])
        from repro.core.advisor import advise

        single = advise(workload.stats, workload.load)
        assert result.total_cost <= single.optimal.cost + 1e-6
        assert result.exact

    def test_empty_input_rejected(self):
        with pytest.raises(OptimizerError):
            optimize_multipath([])


class TestTwoOverlappingPaths:
    def test_joint_cost_at_most_independent(self):
        result = optimize_multipath([pexa_workload(), pe_workload()])
        assert result.total_cost <= result.independent_cost + 1e-6
        assert result.shared_savings >= 0.0

    def test_configurations_cover_both_paths(self):
        workloads = [pexa_workload(), pe_workload()]
        result = optimize_multipath(workloads)
        assert len(result.configurations) == 2
        assert result.configurations[0].length == 4
        assert result.configurations[1].length == 3

    def test_render(self):
        workloads = [pexa_workload(), pe_workload()]
        result = optimize_multipath(workloads)
        text = result.render(workloads)
        assert "joint cost" in text
        assert "Person.owns.man" in text

    def test_sharing_reported_when_identical_subpath_chosen(self):
        """Two identical paths must share everything."""
        workloads = [pexa_workload(), pexa_workload()]
        result = optimize_multipath(workloads)
        assert result.shared_savings > 0.0
        assert result.configurations[0].partition() == result.configurations[
            1
        ].partition()

    def test_per_row_organizations_widens_search(self):
        workloads = [pexa_workload(), pe_workload()]
        narrow = optimize_multipath(workloads, per_row_organizations=1)
        wide = optimize_multipath(workloads, per_row_organizations=2)
        assert wide.total_cost <= narrow.total_cost + 1e-6


class TestPrecomputedMatrices:
    def test_precomputed_matrices_match_internal_computation(self):
        from repro.core.cost_matrix import CostMatrix

        workloads = [pexa_workload(), pe_workload()]
        matrices = [
            CostMatrix.compute(w.stats, w.load) for w in workloads
        ]
        reused = optimize_multipath(workloads, matrices=matrices)
        computed = optimize_multipath(workloads)
        assert reused.total_cost == pytest.approx(computed.total_cost)
        assert reused.shared_savings == pytest.approx(computed.shared_savings)

    def test_recomputed_matrices_feed_what_if_loop(self):
        from repro.core.cost_matrix import CostMatrix
        from repro.workload.load import LoadDistribution

        workloads = [pexa_workload(), pe_workload()]
        matrices = [CostMatrix.compute(w.stats, w.load) for w in workloads]
        # Perturb the first path's workload and reuse its matrix
        # incrementally instead of recomputing both from scratch.
        first = workloads[0]
        new_load = LoadDistribution(
            first.load.path,
            {
                name: (
                    triplet.scaled(2.0) if name == "Person" else triplet
                )
                for name, triplet in first.load.items()
            },
        )
        new_workloads = [PathWorkload(first.stats, new_load), workloads[1]]
        new_matrices = [matrices[0].recompute(load=new_load), matrices[1]]
        incremental = optimize_multipath(new_workloads, matrices=new_matrices)
        fresh = optimize_multipath(new_workloads)
        assert incremental.total_cost == pytest.approx(fresh.total_cost)

    def test_matrix_count_mismatch_rejected(self):
        from repro.core.cost_matrix import CostMatrix

        workloads = [pexa_workload(), pe_workload()]
        matrix = CostMatrix.compute(
            workloads[0].stats, workloads[0].load
        )
        with pytest.raises(OptimizerError, match="matrices"):
            optimize_multipath(workloads, matrices=[matrix])

    def test_matrix_length_mismatch_rejected(self):
        from repro.core.cost_matrix import CostMatrix

        workloads = [pexa_workload(), pe_workload()]
        long_matrix = CostMatrix.compute(
            workloads[0].stats, workloads[0].load
        )
        with pytest.raises(OptimizerError, match="length"):
            optimize_multipath(workloads, matrices=[long_matrix, long_matrix])

    def test_workers_parameter_accepted(self):
        workloads = [pexa_workload()]
        serial = optimize_multipath(workloads, workers=0)
        parallel = optimize_multipath(workloads, workers=2)
        assert serial.total_cost == parallel.total_cost


def synthetic_workload(length: int, scale: float = 1.0) -> PathWorkload:
    """A deterministic linear-chain workload of the given length."""
    levels = [LevelSpec(f"L{i}") for i in range(length)]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    objects = 20_000
    for position in range(1, length + 1):
        name = path.class_at(position)
        per_class[name] = ClassStats(
            objects=objects, distinct=max(5, objects // 4), fanout=1.5
        )
        objects = max(50, int(objects // 2.5))
    stats = PathStatistics(path, per_class)
    load = LoadDistribution.uniform(
        path, query=0.2 * scale, insert=0.05, delete=0.05
    )
    return PathWorkload(stats=stats, load=load)


@st.composite
def chain_workloads(draw):
    """Two overlapping random workloads: a chain and its suffix path."""
    length = draw(st.integers(min_value=3, max_value=5))
    levels = [LevelSpec(f"L{i}") for i in range(length)]
    schema, full_path = linear_path_schema(levels)
    per_class = {}
    triplets = {}
    frequency = st.floats(
        min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
    )
    for position in range(length):
        name = f"L{position}"
        objects = draw(st.integers(min_value=50, max_value=5_000))
        per_class[name] = ClassStats(
            objects=objects,
            distinct=draw(st.integers(min_value=1, max_value=objects)),
            fanout=draw(
                st.floats(
                    min_value=1.0,
                    max_value=3.0,
                    allow_nan=False,
                    allow_infinity=False,
                )
            ),
        )
        triplets[name] = LoadTriplet(
            query=draw(frequency), insert=draw(frequency), delete=draw(frequency)
        )
    full = PathWorkload(
        stats=PathStatistics(full_path, per_class),
        load=LoadDistribution(full_path, triplets),
    )
    suffix_expression = ".".join(
        ["L1", *[f"ref{i}" for i in range(2, length)], "label"]
    )
    suffix_path = Path.parse(schema, suffix_expression)
    suffix = PathWorkload(
        stats=PathStatistics(
            suffix_path,
            {name: s for name, s in per_class.items() if name in suffix_path.scope},
        ),
        load=LoadDistribution(
            suffix_path,
            {name: t for name, t in triplets.items() if name in suffix_path.scope},
        ),
    )
    return [full, suffix]


class TestBeamCandidateGeneration:
    def test_full_width_beam_matches_exact_oracle_on_paper_paths(self):
        workloads = [pexa_workload(), pe_workload()]
        width = max(
            configuration_count(w.stats.length, 2) for w in workloads
        )
        exact = optimize_multipath(workloads)
        beam = optimize_multipath(workloads, beam_width=width)
        assert exact.exact
        assert beam.total_cost == pytest.approx(exact.total_cost)
        assert beam.shared_savings == pytest.approx(exact.shared_savings)

    def test_beam_matches_oracle_on_all_lengths_up_to_8(self):
        for length in range(2, 9):
            workload = synthetic_workload(length)
            matrix = CostMatrix.compute(workload.stats, workload.load)
            width = configuration_count(length, 2)
            exact = optimize_multipath([workload], matrices=[matrix])
            beam = optimize_multipath(
                [workload], matrices=[matrix], beam_width=width
            )
            assert exact.exact, f"length {length} oracle was not exact"
            assert beam.total_cost == pytest.approx(exact.total_cost), (
                f"beam diverged from oracle at length {length}"
            )

    @settings(max_examples=15, deadline=None)
    @given(chain_workloads())
    def test_beam_joint_selection_matches_exact_oracle(self, workloads):
        matrices = [
            CostMatrix.compute(w.stats, w.load) for w in workloads
        ]
        width = max(
            configuration_count(w.stats.length, 2) for w in workloads
        )
        exact = optimize_multipath(workloads, matrices=matrices)
        beam = optimize_multipath(
            workloads, matrices=matrices, beam_width=width
        )
        assert exact.exact
        assert beam.total_cost == pytest.approx(exact.total_cost)

    def test_narrow_beam_bounded_by_independent_and_oracle(self):
        workloads = [pexa_workload(), pe_workload()]
        exact = optimize_multipath(workloads)
        narrow = optimize_multipath(workloads, beam_width=2)
        assert narrow.total_cost >= exact.total_cost - 1e-9
        assert narrow.total_cost <= narrow.independent_cost + 1e-9
        assert not narrow.exact

    def test_long_path_auto_switches_to_beam(self):
        workload = synthetic_workload(12)
        result = optimize_multipath([workload])
        assert not result.exact
        single = optimize_multipath([workload], beam_width=1)
        assert result.total_cost <= single.total_cost + 1e-9

    def test_beam_width_validation(self):
        with pytest.raises(OptimizerError, match="beam width"):
            optimize_multipath([pexa_workload()], beam_width=0)

    def test_per_row_organizations_validation(self):
        with pytest.raises(OptimizerError, match="organizations per block"):
            optimize_multipath([pexa_workload()], per_row_organizations=0)


class TestStorageBudget:
    @pytest.fixture(scope="class")
    def workloads(self):
        return [pexa_workload(), pe_workload()]

    @pytest.fixture(scope="class")
    def matrices(self, workloads):
        return [
            CostMatrix.compute(
                w.stats, w.load, organizations=EXTENDED_ORGANIZATIONS
            )
            for w in workloads
        ]

    def test_generous_budget_matches_unconstrained(self, workloads, matrices):
        unconstrained = optimize_multipath(workloads, matrices=matrices)
        budgeted = optimize_multipath(
            workloads, matrices=matrices, budget_pages=10**12
        )
        assert budgeted.total_cost == pytest.approx(unconstrained.total_cost)
        assert budgeted.unconstrained_cost is not None
        assert budgeted.budget_pages == 10**12

    def test_budget_never_exceeded(self, workloads, matrices):
        generous = optimize_multipath(
            workloads, matrices=matrices, budget_pages=10**12
        )
        for fraction in (0.0, 0.1, 0.25, 0.5, 0.75, 1.0):
            budget = generous.storage_pages * fraction
            result = optimize_multipath(
                workloads, matrices=matrices, budget_pages=budget
            )
            assert result.storage_pages <= budget

    def test_monotone_in_budget_exact_regime(self, workloads, matrices):
        generous = optimize_multipath(
            workloads, matrices=matrices, budget_pages=10**12
        )
        budgets = [
            0.0,
            generous.storage_pages * 0.25,
            generous.storage_pages * 0.5,
            generous.storage_pages,
            10**12,
        ]
        costs = [
            optimize_multipath(
                workloads, matrices=matrices, budget_pages=budget
            ).total_cost
            for budget in budgets
        ]
        assert costs == sorted(costs, reverse=True)

    def test_monotone_in_budget_beam_candidates_exact_product(
        self, workloads, matrices
    ):
        # Two paths with width-8 beam candidates: the cross product stays
        # under _EXACT_LIMIT, so this covers beam *generation* feeding
        # the exact filtered product (the sweep branch is covered by
        # test_sweep_regime_budget_properties).
        generous = optimize_multipath(
            workloads, matrices=matrices, budget_pages=10**12, beam_width=8
        )
        budgets = [
            0.0,
            generous.storage_pages * 0.25,
            generous.storage_pages * 0.5,
            generous.storage_pages,
            10**12,
        ]
        results = [
            optimize_multipath(
                workloads, matrices=matrices, budget_pages=budget, beam_width=8
            )
            for budget in budgets
        ]
        costs = [result.total_cost for result in results]
        assert costs == sorted(costs, reverse=True)
        for budget, result in zip(budgets, results):
            assert result.storage_pages <= budget

    def test_sweep_regime_budget_properties(self):
        # Five paths with >= 16 candidates each put the cross product
        # (>= 16^5 ~ 1M) past _EXACT_LIMIT, forcing the greedy
        # _budget_sweep branch rather than the exact filtered product.
        workloads = [
            synthetic_workload(6, scale=1.0 + 0.2 * index) for index in range(5)
        ]
        matrices = [
            CostMatrix.compute(
                w.stats, w.load, organizations=EXTENDED_ORGANIZATIONS
            )
            for w in workloads
        ]
        generous = optimize_multipath(
            workloads, matrices=matrices, beam_width=16, budget_pages=10**12
        )
        assert not generous.exact
        budgets = [
            0.0,
            generous.storage_pages * 0.25,
            generous.storage_pages * 0.5,
            generous.storage_pages,
            10**12,
        ]
        results = [
            optimize_multipath(
                workloads, matrices=matrices, beam_width=16, budget_pages=budget
            )
            for budget in budgets
        ]
        costs = [result.total_cost for result in results]
        assert costs == sorted(costs, reverse=True)
        for budget, result in zip(budgets, results):
            assert result.storage_pages <= budget
        # Zero budget is feasible through the storage-ranked candidates.
        assert results[0].storage_pages == 0.0
        # A generous budget recovers the seeded unconstrained optimum.
        unconstrained = optimize_multipath(
            workloads, matrices=matrices, beam_width=16
        )
        assert results[-1].total_cost <= unconstrained.total_cost + 1e-9

    def test_generous_beam_budget_recovers_unconstrained(
        self, workloads, matrices
    ):
        unconstrained = optimize_multipath(
            workloads, matrices=matrices, beam_width=8
        )
        budgeted = optimize_multipath(
            workloads, matrices=matrices, beam_width=8, budget_pages=10**12
        )
        assert budgeted.total_cost <= unconstrained.total_cost + 1e-9

    def test_zero_budget_uses_none_everywhere(self, workloads, matrices):
        result = optimize_multipath(
            workloads, matrices=matrices, budget_pages=0.0
        )
        assert result.storage_pages == 0.0
        for configuration in result.configurations:
            used = {a.organization for a in configuration.assignments}
            assert used == {IndexOrganization.NONE}

    def test_impossible_budget_raises(self, workloads):
        # MX/MIX/NIX only: no zero-storage fallback exists.
        with pytest.raises(OptimizerError, match="pages"):
            optimize_multipath(workloads, budget_pages=0.0)

    def test_negative_budget_rejected(self, workloads):
        with pytest.raises(OptimizerError, match="negative"):
            optimize_multipath(workloads, budget_pages=-1.0)

    def test_nan_budget_rejected(self, workloads):
        # NaN would silently disable the constraint: every
        # `storage <= nan` comparison is false.
        with pytest.raises(OptimizerError, match="storage budget"):
            optimize_multipath(workloads, budget_pages=float("nan"))

    def test_single_path_matches_optimize_with_budget(self):
        from repro.core.budget import optimize_with_budget

        workload = pexa_workload()
        matrix = CostMatrix.compute(
            workload.stats, workload.load, organizations=EXTENDED_ORGANIZATIONS
        )
        for budget in (10**9, 4_000.0, 2_000.0, 0.0):
            single = optimize_with_budget(matrix, budget_pages=budget)
            joint = optimize_multipath(
                [workload], matrices=[matrix], budget_pages=budget
            )
            # Cost parity; equal-cost ties may resolve to configurations
            # with slightly different footprints, so only feasibility is
            # asserted for storage.
            assert joint.total_cost == pytest.approx(single.cost)
            assert joint.storage_pages <= budget

    def test_literal_matrix_rejected(self, fig6):
        workload = synthetic_workload(fig6.length)
        with pytest.raises(OptimizerError, match="computed cost matrix"):
            optimize_multipath(
                [workload], matrices=[fig6], budget_pages=100.0
            )

    def test_budget_render_mentions_budget(self, workloads, matrices):
        result = optimize_multipath(
            workloads, matrices=matrices, budget_pages=10**9
        )
        text = result.render(workloads)
        assert "budget pages" in text


class TestBatchedPricing:
    """The batched candidate pricer must be bit-identical to the scalar
    per-candidate loop it replaces (PR 9) — same query folds, same
    per-key maintenance/storage splits, same candidate order."""

    @staticmethod
    def _snapshot(candidates):
        return [
            (c.configuration, c.query_cost, c.maintenance, c.storage)
            for c in candidates
        ]

    @pytest.mark.parametrize("generator", ["exact", "beam", "budget"])
    def test_batched_matches_scalar_pricing(self, generator, monkeypatch):
        pytest.importorskip("numpy")
        from repro.core import multipath as mp

        workload = synthetic_workload(7)
        matrix = CostMatrix.compute(
            workload.stats,
            workload.load,
            organizations=EXTENDED_ORGANIZATIONS,
        )
        run = {
            "exact": lambda: mp._candidates_exact(workload, matrix, 2),
            "beam": lambda: mp._candidates_beam(workload, matrix, 2, 16),
            "budget": lambda: mp._candidates_budget(workload, matrix, 16),
        }[generator]
        batched = self._snapshot(run())
        monkeypatch.setattr(mp, "_BATCH_PRICING_MIN", 10**9)
        scalar = self._snapshot(run())
        assert batched == scalar

    def test_small_sets_and_missing_numpy_use_the_scalar_path(self):
        """Below the batching threshold the scalar loop prices directly
        (no numpy import), so candidate generation works without it."""
        from repro.core import multipath as mp

        workload = synthetic_workload(3)
        matrix = CostMatrix.compute(workload.stats, workload.load)
        candidates = mp._candidates_beam(workload, matrix, 1, 2)
        assert 0 < len(candidates) <= 2
        for candidate in candidates:
            assert candidate.total == candidate.query_cost + sum(
                candidate.maintenance.values()
            )

    def test_joint_selection_unchanged_by_batching(self, monkeypatch):
        pytest.importorskip("numpy")
        from repro.core import multipath as mp

        workloads = [synthetic_workload(6), synthetic_workload(6, scale=2.0)]
        batched = optimize_multipath(workloads)
        monkeypatch.setattr(mp, "_BATCH_PRICING_MIN", 10**9)
        scalar = optimize_multipath(workloads)
        assert batched.configurations == scalar.configurations
        assert batched.total_cost == scalar.total_cost
        assert batched.shared_savings == scalar.shared_savings
        assert batched.storage_pages == scalar.storage_pages
