"""Chaos suite: seeded infrastructure failures against the full pipeline.

Every test injects faults through :class:`repro.resilience.faults.FaultInjector`
and then asserts two things the resilience layer promises:

1. the pipeline **completes** — a replay never dies or hangs because a
   worker pool crashed, a trace line was garbage, or a deadline expired;
2. every injected fault leaves a **visible record** — a degradation
   event, a skip entry in the :class:`~repro.trace.TraceReadReport`, or
   a degraded step rung. Nothing is swallowed silently.

All randomness is seeded; a failing chaos test replays exactly.
"""

from __future__ import annotations

import pytest

from repro.core.cost_matrix import CostMatrix
from repro.resilience import restore_advisor, save_advisor
from repro.resilience.faults import FaultInjector
from repro.trace import (
    ContinuousAdvisor,
    TraceReadReport,
    generate_trace,
    iter_trace,
    write_trace,
)

from test_resilience_checkpoint import make_world, timeline


@pytest.mark.timeout(120)
@pytest.mark.filterwarnings("ignore::RuntimeWarning")
class TestPoolCrashChaos:
    def test_replay_survives_pool_crashes(self):
        """Worker-pool crashes degrade to serial; the replay completes
        bit-identically and each fallback is recorded."""
        stats, load = make_world()
        trace = generate_trace(stats.path, "edge_drift", 400, seed=7)

        clean = ContinuousAdvisor(stats, load, window=80, workers=0)
        clean.replay(trace)

        injector = FaultInjector(seed=7)
        chaotic = ContinuousAdvisor(stats, load, window=80, workers=2)
        with injector.broken_pool(times=100) as crashes:
            chaotic.replay(trace)

        assert crashes[0] > 0, "the fault never fired"
        assert timeline(chaotic) == timeline(clean)
        fallbacks = [
            event
            for event in chaotic.degradation.events
            if event.layer == "matrix" and event.action == "serial_fallback"
        ]
        assert fallbacks, "pool crash produced no degradation record"
        assert all("BrokenProcessPool" in e.reason for e in fallbacks)
        # every injection is in the injector's own log too
        assert sum(
            1 for kind, _ in injector.log if kind == "broken_pool"
        ) == crashes[0]

    def test_transient_crash_recovers_through_retry(self):
        """A single crash is absorbed by the retry policy: the pool is
        retried, succeeds, and no serial fallback is recorded."""
        import repro.resilience.retry as retry_module

        stats, load = make_world()
        naps: list[float] = []
        original_sleep = retry_module._sleep
        retry_module._sleep = naps.append
        try:
            with FaultInjector(seed=1).broken_pool(times=1):
                matrix = CostMatrix.compute(stats, load, workers=2)
        finally:
            retry_module._sleep = original_sleep
        assert matrix.parallel_fallback_reason is None
        assert naps == [0.05]
        serial = CostMatrix.compute(stats, load, workers=0)
        assert matrix._values == serial._values


@pytest.mark.timeout(120)
class TestCorruptTraceChaos:
    def test_replay_skips_exactly_the_corrupted_lines(self, tmp_path):
        stats, load = make_world()
        events = generate_trace(stats.path, "mixed_drift", 600, seed=13)
        path = tmp_path / "stream.jsonl"
        write_trace(events, path)

        injector = FaultInjector(seed=13)
        corrupted = injector.corrupt_trace(path, corruptions=6)
        assert len(corrupted) == 6

        report = TraceReadReport()
        advisor = ContinuousAdvisor(stats, load, window=100)
        advisor.replay(iter_trace(path, on_error="collect", report=report))

        assert report.skipped_lines == corrupted
        assert all(message for _line, message in report.skipped)
        assert report.events == len(events) - len(corrupted)
        assert advisor.events_seen == report.events

    def test_collect_and_skip_agree_on_what_survives(self, tmp_path):
        stats, _load = make_world()
        events = generate_trace(stats.path, "bursty", 200, seed=3)
        path = tmp_path / "stream.jsonl"
        write_trace(events, path)
        FaultInjector(seed=3).corrupt_trace(path, corruptions=4)

        collected = list(iter_trace(path, on_error="collect"))
        skipped = list(iter_trace(path, on_error="skip"))
        assert [e.to_dict() for e in collected] == [
            e.to_dict() for e in skipped
        ]


@pytest.mark.timeout(120)
class TestDeadlineChaos:
    def test_expired_deadlines_degrade_every_step_but_finish(self):
        """With a zero budget every advise degrades — and the replay
        still consumes the whole trace, recording each rung."""
        stats, load = make_world()
        trace = generate_trace(stats.path, "edge_drift", 300, seed=5)
        advisor = ContinuousAdvisor(
            stats, load, window=60, threshold=0.05, deadline_ms=0.0
        )
        advisor.replay(trace)

        assert advisor.events_seen == len(trace)
        assert advisor.steps, "no steps emitted"
        assert all(step.rung != "exact" for step in advisor.steps)
        assert advisor.degradation, "deadline expiry left no record"
        assert advisor.degradation.count(layer="session") >= len(advisor.steps)

    def test_unbounded_advisor_stays_exact(self):
        stats, load = make_world()
        trace = generate_trace(stats.path, "edge_drift", 300, seed=5)
        advisor = ContinuousAdvisor(stats, load, window=60, threshold=0.05)
        advisor.replay(trace)
        assert all(step.rung == "exact" for step in advisor.steps)
        assert not advisor.degradation


@pytest.mark.timeout(180)
@pytest.mark.filterwarnings("ignore::RuntimeWarning")
class TestCombinedChaos:
    def test_everything_at_once(self, tmp_path):
        """Pool crashes + corrupt trace + a mid-stream kill/restore, in
        one run: the trace completes and every fault is accounted for."""
        stats, load = make_world()
        events = generate_trace(stats.path, "mixed_drift", 500, seed=21)
        path = tmp_path / "stream.jsonl"
        write_trace(events, path)

        injector = FaultInjector(seed=21)
        corrupted = injector.corrupt_trace(path, corruptions=5)

        report = TraceReadReport()
        survivors = list(iter_trace(path, on_error="collect", report=report))
        cut = len(survivors) // 2

        advisor = ContinuousAdvisor(stats, load, window=80, workers=2)
        with injector.broken_pool(times=100) as crashes:
            advisor.process(survivors[:cut])
            checkpoint = tmp_path / "mid.ckpt"
            save_advisor(advisor, checkpoint)
            del advisor  # the process dies here

            resumed = restore_advisor(checkpoint, stats, load, workers=2)
            resumed.process(survivors[cut:])
            resumed.flush()

        # the stream completed despite everything
        assert resumed.events_seen == len(events) - len(corrupted)
        # fault accounting: corrupt lines in the read report ...
        assert report.skipped_lines == corrupted
        # ... pool crashes in the degradation report (when the pool was
        # actually exercised this run) ...
        if crashes[0]:
            assert resumed.degradation.count(
                layer="matrix", action="serial_fallback"
            )
        # ... and the injector's own log covers every injection made.
        injected = [kind for kind, _ in injector.log]
        assert injected.count("corrupt_trace") == len(corrupted)
        assert injected.count("broken_pool") == crashes[0]

        # despite the chaos, the answers match a clean serial run
        clean = ContinuousAdvisor(stats, load, window=80, workers=0)
        clean.process(survivors)
        clean.flush()
        assert timeline(resumed) == timeline(clean)
