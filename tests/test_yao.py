"""Tests for Yao's formula, including the published reference behaviour."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.yao import npa
from repro.errors import CostModelError


class TestDegenerateCases:
    def test_zero_requests_cost_nothing(self):
        assert npa(0, 100, 10) == 0.0

    def test_zero_records(self):
        assert npa(5, 0, 10) == 0.0

    def test_zero_pages(self):
        assert npa(5, 100, 0) == 0.0

    def test_all_records_touch_all_pages(self):
        assert npa(100, 100, 10) == 10.0

    def test_more_requests_than_records_clamped(self):
        assert npa(500, 100, 10) == 10.0

    def test_one_record_per_page_costs_t(self):
        assert npa(3, 10, 10) == 3.0
        assert npa(3, 10, 20) == 3.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(CostModelError):
            npa(-1, 10, 5)

    def test_non_finite_rejected(self):
        with pytest.raises(CostModelError):
            npa(float("nan"), 10, 5)
        with pytest.raises(CostModelError):
            npa(1, float("inf"), 5)


class TestKnownValues:
    def test_single_record(self):
        # npa(1, n, m) = 1 exactly: one record lives on one page.
        assert npa(1, 1000, 100) == pytest.approx(1.0)

    def test_half_records_leave_few_pages_untouched(self):
        # With 10 records/page, fetching half the records leaves the
        # probability of an untouched page tiny but positive.
        value = npa(500, 1000, 100)
        assert 99.0 < value < 100.0

    def test_agrees_with_direct_product_formula(self):
        n, m, t = 100, 10, 7
        records_per_page = n / m
        product = 1.0
        for i in range(1, t + 1):
            product *= (n - records_per_page - i + 1) / (n - i + 1)
        assert npa(t, n, m) == pytest.approx(m * (1 - product))

    def test_fractional_t_interpolates(self):
        low = npa(3, 100, 10)
        high = npa(4, 100, 10)
        mid = npa(3.5, 100, 10)
        assert mid == pytest.approx((low + high) / 2)

    def test_large_t_falls_back_to_cardenas(self):
        # 200k requested from 1M records: approximation must stay bounded.
        value = npa(200_000, 1_000_000, 50_000)
        assert 0 < value <= 50_000


class TestProperties:
    @given(
        n=st.integers(min_value=1, max_value=5_000),
        m=st.integers(min_value=1, max_value=500),
        t=st.integers(min_value=0, max_value=5_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_bounds(self, n, m, t):
        value = npa(t, n, m)
        assert 0.0 <= value <= m
        assert value <= min(t, n) + 1e-9 or value <= m

    @given(
        n=st.integers(min_value=10, max_value=2_000),
        m=st.integers(min_value=2, max_value=100),
        t=st.integers(min_value=1, max_value=400),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_t(self, n, m, t):
        assert npa(t, n, m) <= npa(t + 1, n, m) + 1e-9

    @given(
        n=st.integers(min_value=10, max_value=2_000),
        m=st.integers(min_value=2, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_fetching_everything_touches_every_occupied_page(self, n, m):
        # With fewer records than pages only `n` pages can be occupied.
        assert npa(n, n, m) == pytest.approx(min(n, m))

    @given(
        n=st.integers(min_value=100, max_value=2_000),
        m=st.integers(min_value=10, max_value=100),
        t=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_at_most_t_pages(self, n, m, t):
        # Fetching t records can never touch more than t pages.
        assert npa(t, n, m) <= t + 1e-9
