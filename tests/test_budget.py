"""Tests for storage-budget-constrained selection."""

import pytest

from repro.core.budget import optimize_with_budget
from repro.core.cost_matrix import CostMatrix
from repro.search import get_strategy
from repro.errors import OptimizerError
from repro.organizations import EXTENDED_ORGANIZATIONS, IndexOrganization


@pytest.fixture(scope="module")
def fig7_matrix():
    from repro.paper import figure7_load, figure7_statistics

    return CostMatrix.compute(figure7_statistics(), figure7_load())


@pytest.fixture(scope="module")
def fig7_matrix_with_none():
    from repro.paper import figure7_load, figure7_statistics

    return CostMatrix.compute(
        figure7_statistics(), figure7_load(), organizations=EXTENDED_ORGANIZATIONS
    )


class TestBudgetedSelection:
    def test_generous_budget_matches_unconstrained(self, fig7_matrix):
        unconstrained = get_strategy("branch_and_bound").search(fig7_matrix)
        budgeted = optimize_with_budget(fig7_matrix, budget_pages=10**9)
        assert budgeted.cost == pytest.approx(unconstrained.cost)
        assert budgeted.cost_of_constraint == pytest.approx(0.0)

    def test_tight_budget_costs_more(self, fig7_matrix):
        generous = optimize_with_budget(fig7_matrix, budget_pages=10**9)
        tight = optimize_with_budget(
            fig7_matrix, budget_pages=generous.unconstrained_storage * 0.5
        )
        assert tight.storage_pages <= generous.unconstrained_storage * 0.5
        assert tight.cost >= generous.cost

    def test_budget_respected(self, fig7_matrix):
        budget = 2_000.0
        result = optimize_with_budget(fig7_matrix, budget_pages=budget)
        assert result.storage_pages <= budget

    def test_monotone_in_budget(self, fig7_matrix):
        budgets = [2_000.0, 4_000.0, 8_000.0, 10**9]
        costs = [
            optimize_with_budget(fig7_matrix, budget_pages=b).cost
            for b in budgets
        ]
        assert costs == sorted(costs, reverse=True)

    def test_impossible_budget_raises(self, fig7_matrix):
        with pytest.raises(OptimizerError):
            optimize_with_budget(fig7_matrix, budget_pages=1.0)

    def test_none_organization_always_fits(self, fig7_matrix_with_none):
        result = optimize_with_budget(fig7_matrix_with_none, budget_pages=0.0)
        assert result.storage_pages == 0.0
        used = {
            assignment.organization
            for assignment in result.configuration.assignments
        }
        assert used == {IndexOrganization.NONE}

    def test_negative_budget_rejected(self, fig7_matrix):
        with pytest.raises(OptimizerError):
            optimize_with_budget(fig7_matrix, budget_pages=-1.0)

    def test_literal_matrix_rejected(self, fig6):
        with pytest.raises(OptimizerError):
            optimize_with_budget(fig6, budget_pages=100.0)

    def test_render(self, fig7_matrix):
        result = optimize_with_budget(fig7_matrix, budget_pages=10**9)
        text = result.render()
        assert "budget pages" in text

    def test_evaluated_counts_full_product(self, fig7_matrix):
        result = optimize_with_budget(fig7_matrix, budget_pages=10**9)
        # Partitions of a length-4 path with 3 organizations per block:
        # sum over partitions of 3^m = 3^1 + 3*3^2 + 3*3^3 + 3^4 = 192.
        assert result.evaluated == 192
