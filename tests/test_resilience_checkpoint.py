"""Checkpoint/restore: kill a process mid-stream, resume bit-identically.

The headline property (Hypothesis-pinned): for every seeded trace
regime and an arbitrary cut point, checkpointing a
:class:`~repro.trace.ContinuousAdvisor`, discarding the process state,
restoring from disk and feeding the remainder of the trace yields a
:class:`~repro.trace.ReplayStep` timeline *bit-identical* (via the
canonical serialization) to the run that was never interrupted.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.params import ClassStats, PathStatistics
from repro.errors import CheckpointError
from repro.resilience import (
    restore_advisor,
    restore_multipath,
    restore_session,
    save_advisor,
    save_multipath,
    save_session,
)
from repro.resilience.faults import FaultInjector
from repro.synth import LevelSpec, linear_path_schema
from repro.trace import ContinuousAdvisor, generate_trace
from repro.whatif import AdvisorSession, MultiPathSession, Perturbation
from repro.workload.load import LoadDistribution


def make_world(length=4, subclasses=(0, 1, 0, 0), prefix="L", objects=20_000):
    levels = [
        LevelSpec(f"{prefix}{i}", subclasses=subclasses[i % len(subclasses)])
        for i in range(length)
    ]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    remaining = objects
    for position in range(1, length + 1):
        for member in path.hierarchy_at(position):
            per_class[member] = ClassStats(
                objects=remaining, distinct=max(10, remaining // 6), fanout=1.0
            )
        remaining = max(50, remaining // 5)
    stats = PathStatistics(path, per_class)
    load = LoadDistribution.uniform(path, query=0.3, insert=0.1, delete=0.05)
    return stats, load


def timeline(advisor: ContinuousAdvisor) -> list[dict]:
    """The canonical serialized form both runs are compared through."""
    return [step.to_dict() for step in advisor.steps]


# ----------------------------------------------------------------------
# the kill-and-resume property
# ----------------------------------------------------------------------
@st.composite
def interrupted_replays(draw):
    regime = draw(
        st.sampled_from(["stationary", "edge_drift", "mixed_drift", "bursty"])
    )
    seed = draw(st.integers(min_value=0, max_value=1000))
    window = draw(st.sampled_from([40, 60, 100]))
    threshold = draw(st.sampled_from([0.05, 0.2]))
    track = draw(st.booleans())
    events = 4 * window
    cut = draw(st.integers(min_value=0, max_value=events))
    return regime, seed, window, threshold, track, events, cut


class TestKillAndResume:
    @pytest.mark.timeout(300)
    @given(world=interrupted_replays())
    @settings(max_examples=12, deadline=None)
    def test_resumed_timeline_is_bit_identical(self, world, tmp_path_factory):
        """Checkpoint at an arbitrary event, kill, restore: same timeline."""
        regime, seed, window, threshold, track, events, cut = world
        stats, load = make_world()
        trace = generate_trace(stats.path, regime, events, seed=seed)
        options = dict(
            window=window,
            threshold=threshold,
            hysteresis=2,
            track_statistics=track,
        )

        uninterrupted = ContinuousAdvisor(stats, load, **options)
        uninterrupted.replay(trace)

        interrupted = ContinuousAdvisor(stats, load, **options)
        interrupted.process(trace[:cut])
        path = tmp_path_factory.mktemp("ckpt") / "advisor.ckpt"
        save_advisor(interrupted, path)
        del interrupted  # the process dies here

        resumed = restore_advisor(path, stats, load)
        resumed.process(trace[cut:])
        resumed.flush()
        assert timeline(resumed) == timeline(uninterrupted)

    def test_resume_mid_stream_counters_match(self, tmp_path):
        """The restored advisor's bookkeeping equals the live one's."""
        stats, load = make_world()
        trace = generate_trace(stats.path, "edge_drift", 500, seed=3)
        advisor = ContinuousAdvisor(stats, load, window=80)
        advisor.process(trace[:333])
        path = tmp_path / "advisor.ckpt"
        assert save_advisor(advisor, path) > 0
        restored = restore_advisor(path, stats, load)
        assert restored.events_seen == advisor.events_seen
        assert restored.windows_seen == advisor.windows_seen
        assert restored.windows_held == advisor.windows_held
        assert restored.readvise_count == advisor.readvise_count
        assert restored.session.version == advisor.session.version
        assert len(restored._pending) == len(advisor._pending)
        assert timeline(restored) == timeline(advisor)


# ----------------------------------------------------------------------
# integrity checks
# ----------------------------------------------------------------------
class TestCheckpointIntegrity:
    def _checkpoint(self, tmp_path):
        stats, load = make_world()
        trace = generate_trace(stats.path, "edge_drift", 300, seed=1)
        advisor = ContinuousAdvisor(stats, load, window=60)
        advisor.process(trace)
        path = tmp_path / "advisor.ckpt"
        save_advisor(advisor, path)
        return path, stats, load

    def test_torn_checkpoint_is_detected(self, tmp_path):
        path, stats, load = self._checkpoint(tmp_path)
        FaultInjector(seed=5).torn_checkpoint(path)
        with pytest.raises(CheckpointError, match="torn|truncated|integrity"):
            restore_advisor(path, stats, load)

    def test_every_seeded_tear_is_detected(self, tmp_path):
        """Any prefix truncation must fail loudly, wherever the cut lands."""
        path, stats, load = self._checkpoint(tmp_path)
        pristine = path.read_bytes()
        for seed in range(8):
            path.write_bytes(pristine)
            FaultInjector(seed=seed).torn_checkpoint(path)
            with pytest.raises(CheckpointError):
                restore_advisor(path, stats, load)

    def test_bit_flip_fails_the_digest(self, tmp_path):
        path, stats, load = self._checkpoint(tmp_path)
        raw = path.read_bytes()
        index = len(raw) // 3
        flipped = raw[:index] + bytes([raw[index] ^ 0x01]) + raw[index + 1 :]
        path.write_bytes(flipped)
        with pytest.raises(CheckpointError):
            restore_advisor(path, stats, load)

    def test_wrong_baseline_statistics_are_rejected(self, tmp_path):
        path, stats, load = self._checkpoint(tmp_path)
        other_stats, other_load = make_world(objects=40_000)
        with pytest.raises(CheckpointError, match="baseline"):
            restore_advisor(path, other_stats, other_load)

    def test_strategy_mismatch_is_rejected(self, tmp_path):
        path, stats, load = self._checkpoint(tmp_path)
        with pytest.raises(CheckpointError, match="strategy"):
            restore_advisor(path, stats, load, strategy="branch_and_bound")

    def test_wrong_kind_is_rejected(self, tmp_path):
        stats, load = make_world()
        session = AdvisorSession(stats, load)
        session.advise()
        path = tmp_path / "session.ckpt"
        save_session(session, path)
        with pytest.raises(CheckpointError, match="kind|snapshot"):
            restore_advisor(path, stats, load)

    def test_missing_file_is_a_checkpoint_error(self, tmp_path):
        stats, load = make_world()
        with pytest.raises(CheckpointError, match="cannot read"):
            restore_advisor(tmp_path / "nope.ckpt", stats, load)

    def test_not_json_is_a_checkpoint_error(self, tmp_path):
        stats, load = make_world()
        path = tmp_path / "garbage.ckpt"
        path.write_text("this is not a checkpoint\nat all\n")
        with pytest.raises(CheckpointError):
            restore_advisor(path, stats, load)

    def test_checkpoint_is_valid_jsonl(self, tmp_path):
        path, _stats, _load = self._checkpoint(tmp_path)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["format"] == "repro-checkpoint"
        assert records[0]["version"] == 1
        assert records[-1]["section"] == "end"
        assert records[-1]["records"] == len(records) - 2


# ----------------------------------------------------------------------
# session and multipath checkpoints
# ----------------------------------------------------------------------
class TestSessionCheckpoint:
    def test_round_trip_preserves_the_next_answer(self, tmp_path):
        stats, load = make_world()
        session = AdvisorSession(stats, load)
        session.advise()
        session.perturb(
            Perturbation(
                class_name=str(stats.path.scope[0]),
                component="query",
                mode="scale",
                value=3.0,
            )
        )
        before = session.advise()
        path = tmp_path / "session.ckpt"
        save_session(session, path)
        restored = restore_session(path, stats, load)
        after = restored.advise()
        assert after.cost == before.cost
        assert after.configuration == before.configuration
        assert after.extras == before.extras
        assert restored.version == session.version
        assert restored.applied_steps == session.applied_steps

    def test_pending_dirty_rows_survive_the_round_trip(self, tmp_path):
        """A checkpoint taken after apply() but before advise() resumes
        with the dirty set intact, and the deferred refine still answers
        bit-identically."""
        stats, load = make_world()
        session = AdvisorSession(stats, load)
        session.advise()
        session.perturb(
            Perturbation(
                class_name=str(stats.path.scope[0]),
                component="insert",
                mode="scale",
                value=5.0,
            )
        )
        assert session._pending  # dirty rows not yet consumed
        path = tmp_path / "session.ckpt"
        save_session(session, path)
        restored = restore_session(path, stats, load)
        assert restored._pending == session._pending
        assert restored.advise().cost == session.advise().cost

    def test_degradation_log_survives(self, tmp_path):
        stats, load = make_world()
        session = AdvisorSession(stats, load)
        session.advise()
        session.degradation.record(
            "matrix", "serial_fallback", "OSError", workers=2
        )
        path = tmp_path / "session.ckpt"
        save_session(session, path)
        restored = restore_session(path, stats, load)
        assert restored.degradation.to_dicts() == session.degradation.to_dicts()


class TestMultiPathCheckpoint:
    def test_round_trip_preserves_the_joint_answer(self, tmp_path):
        stats_a, load_a = make_world()
        stats_b, load_b = make_world(objects=35_000, prefix="M")
        multipath = MultiPathSession(
            [AdvisorSession(stats_a, load_a), AdvisorSession(stats_b, load_b)]
        )
        before = multipath.optimize()
        path = tmp_path / "multipath.ckpt"
        save_multipath(multipath, path)
        restored = restore_multipath(
            path, [(stats_a, load_a), (stats_b, load_b)]
        )
        after = restored.optimize()
        assert after.total_cost == before.total_cost
        assert after.configurations == before.configurations
        assert restored.joint_reuses == multipath.joint_reuses

    def test_baseline_count_mismatch_is_rejected(self, tmp_path):
        stats, load = make_world()
        multipath = MultiPathSession([AdvisorSession(stats, load)])
        path = tmp_path / "multipath.ckpt"
        save_multipath(multipath, path)
        with pytest.raises(CheckpointError, match="paths"):
            restore_multipath(path, [(stats, load), (stats, load)])
