"""End-to-end integration tests across every layer of the library.

Each test exercises the full pipeline: schema → database → statistics →
advisor → operational indexes → measured execution.
"""

import pytest

from repro.core.advisor import advise
from repro.core.evaluation import coupled_configuration_cost
from repro.costmodel.params import ClassStats
from repro.indexes.executor import PathQueryExecutor
from repro.indexes.manager import ConfigurationIndexSet
from repro.organizations import IndexOrganization
from repro.synth import (
    LevelSpec,
    derive_path_statistics,
    linear_path_schema,
    populate_path_database,
)
from repro.workload.load import LoadDistribution, LoadTriplet


class TestEndToEndPipeline:
    def test_advise_then_materialize_then_execute(self):
        """The advisor's chosen configuration actually runs."""
        schema, path = linear_path_schema(
            [
                LevelSpec("Order", multi_valued=True),
                LevelSpec("Product", subclasses=1),
                LevelSpec("Supplier"),
            ],
            ending_attribute="country",
        )
        specs = {
            "Order": ClassStats(objects=600, distinct=200, fanout=2),
            "Product": ClassStats(objects=150, distinct=40, fanout=1),
            "ProductSub1": ClassStats(objects=50, distinct=20, fanout=1),
            "Supplier": ClassStats(objects=60, distinct=12, fanout=1),
        }
        database = populate_path_database(schema, path, specs, seed=4)
        stats = derive_path_statistics(database, path)
        load = LoadDistribution(
            path,
            {
                "Order": LoadTriplet(query=0.5, insert=0.05, delete=0.05),
                "Product": LoadTriplet(query=0.1, insert=0.02, delete=0.02),
                "Supplier": LoadTriplet(query=0.05, insert=0.01, delete=0.01),
            },
        )
        report = advise(stats, load)
        configuration = report.optimal.configuration
        indexes = ConfigurationIndexSet(database, path, configuration)
        executor = PathQueryExecutor(indexes)
        value = next(database.extent("Supplier")).values["country"]
        measured = executor.query(value, "Order")
        expected = {
            instance.oid
            for instance in database.extent("Order")
            if value
            in [
                supplier_country
                for product in instance.value_list("ref1")
                for supplier in database.get(product).value_list("ref2")  # type: ignore[arg-type]
                for supplier_country in database.get(supplier).value_list("country")  # type: ignore[arg-type]
            ]
        }
        assert set(measured.oids) == expected

    def test_analytic_ranking_matches_measured_ranking(self):
        """The analytic model ranks two configurations the same way the
        operational simulator does for the same operation mix."""
        from repro.core.configuration import IndexConfiguration
        from repro.core.cost_matrix import CostMatrix
        from repro.core.evaluation import configuration_cost

        schema, path = linear_path_schema(
            [
                LevelSpec("P", multi_valued=True),
                LevelSpec("V", subclasses=2),
                LevelSpec("C", multi_valued=True),
                LevelSpec("D"),
            ]
        )
        specs = {
            "P": ClassStats(objects=2000, distinct=400, fanout=1),
            "V": ClassStats(objects=200, distinct=100, fanout=2),
            "VSub1": ClassStats(objects=100, distinct=50, fanout=2),
            "VSub2": ClassStats(objects=100, distinct=50, fanout=2),
            "C": ClassStats(objects=100, distinct=40, fanout=2),
            "D": ClassStats(objects=40, distinct=20, fanout=1),
        }

        def measure(config) -> float:
            database = populate_path_database(schema, path, specs, seed=8)
            indexes = ConfigurationIndexSet(database, path, config)
            executor = PathQueryExecutor(indexes)
            values = sorted(
                {
                    v
                    for d in database.extent("D")
                    for v in d.value_list("label")
                },
                key=repr,
            )
            total = 0
            for value in values[:10]:
                total += executor.query(value, "P").stats.total
            victims = [i.oid for i in list(database.extent("C"))[:5]]
            for victim in victims:
                total += executor.delete(victim).stats.total
            return total

        split_config = IndexConfiguration.of(
            (1, 2, IndexOrganization.NIX), (3, 4, IndexOrganization.MX)
        )
        whole_config = IndexConfiguration.whole_path(4, IndexOrganization.NIX)
        measured_split = measure(split_config)
        measured_whole = measure(whole_config)

        # Analytic costs for the same operation mix: 10 queries on P,
        # 5 deletions on C.
        database = populate_path_database(schema, path, specs, seed=8)
        stats = derive_path_statistics(database, path)
        load = LoadDistribution(
            path, {"P": LoadTriplet(query=10.0), "C": LoadTriplet(delete=5.0)}
        )
        matrix = CostMatrix.compute(stats, load)
        analytic_split = configuration_cost(matrix, split_config)
        analytic_whole = configuration_cost(matrix, whole_config)
        assert (analytic_split < analytic_whole) == (
            measured_split < measured_whole
        )

    def test_coupled_evaluation_ranks_like_measurement(self, small_synth):
        """The exact analytic evaluator agrees with measured ordering."""
        from repro.core.configuration import IndexConfiguration

        _schema, path, database, specs = small_synth
        stats = derive_path_statistics(database, path)
        load = LoadDistribution.uniform(path, query=1.0)
        nix = IndexConfiguration.whole_path(3, IndexOrganization.NIX)
        mx = IndexConfiguration.whole_path(3, IndexOrganization.MX)
        analytic_nix = coupled_configuration_cost(stats, load, nix).total
        analytic_mx = coupled_configuration_cost(stats, load, mx).total
        assert analytic_nix < analytic_mx  # queries only: NIX must win


class TestPublicAPI:
    def test_star_import_surface(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_quickstart_docstring_flow(self):
        """The flow advertised in the package docstring works."""
        from repro import advise
        from repro.paper import figure7_load, figure7_statistics

        report = advise(figure7_statistics(), figure7_load())
        assert "optimal" in report.render()
