"""Tests for repro.model.path (Definition 2.1 and subpath machinery)."""

import pytest

from repro.errors import PathError
from repro.model.attribute import AtomicType
from repro.model.path import Path
from repro.model.schema import Schema, atomic, reference


class TestPexaPath:
    def test_length_is_class_count(self, pexa):
        assert pexa.length == 4

    def test_classes_along_path(self, pexa):
        assert pexa.classes == ("Person", "Vehicle", "Company", "Division")

    def test_scope_includes_subclasses(self, pexa):
        assert set(pexa.scope) == {
            "Person",
            "Vehicle",
            "Bus",
            "Truck",
            "Company",
            "Division",
        }

    def test_example_2_1_scope(self, pe):
        # Ex 2.1: len(Pe) = 3, class(Pe) = (Per, Veh, Comp),
        # scope(Pe) = (Per, Veh, Bus, Truck, Comp).
        assert pe.length == 3
        assert pe.classes == ("Person", "Vehicle", "Company")
        assert set(pe.scope) == {"Person", "Vehicle", "Bus", "Truck", "Company"}

    def test_ending_attribute(self, pexa):
        assert pexa.ending_attribute == "name"

    def test_class_at_is_one_based(self, pexa):
        assert pexa.class_at(1) == "Person"
        assert pexa.class_at(4) == "Division"

    def test_attribute_at(self, pexa):
        assert pexa.attribute_at(1) == "owns"
        assert pexa.attribute_at(4) == "name"

    def test_position_bounds_checked(self, pexa):
        with pytest.raises(PathError):
            pexa.class_at(0)
        with pytest.raises(PathError):
            pexa.class_at(5)

    def test_hierarchy_at(self, pexa):
        assert pexa.hierarchy_at(2) == ["Vehicle", "Bus", "Truck"]
        assert pexa.hierarchy_size_at(2) == 3

    def test_domain_class_after(self, pexa):
        assert pexa.domain_class_after(1) == "Vehicle"
        assert pexa.domain_class_after(4) is None  # atomic ending attribute

    def test_str_round_trips_through_parse(self, pexa, vehicle_schema):
        assert str(Path.parse(vehicle_schema, str(pexa))) == str(pexa)


class TestPathValidation:
    def test_unknown_starting_class(self, vehicle_schema):
        with pytest.raises(PathError):
            Path.parse(vehicle_schema, "Nope.owns")

    def test_unknown_attribute(self, vehicle_schema):
        with pytest.raises(PathError):
            Path.parse(vehicle_schema, "Person.nothing")

    def test_atomic_attribute_must_be_last(self, vehicle_schema):
        with pytest.raises(PathError):
            Path.parse(vehicle_schema, "Person.name.owns")

    def test_too_short_expression(self, vehicle_schema):
        with pytest.raises(PathError):
            Path.parse(vehicle_schema, "Person")

    def test_empty_attribute_list(self, vehicle_schema):
        with pytest.raises(PathError):
            Path(schema=vehicle_schema, starting_class="Person", attribute_names=())

    def test_repeated_class_rejected(self):
        schema = Schema()
        schema.define(
            "A",
            [reference("b", "B"), atomic("x", AtomicType.STRING)],
        )
        schema.define(
            "B",
            [reference("a", "A"), atomic("y", AtomicType.STRING)],
        )
        schema.freeze()
        # A.b.a would revisit class A (Definition 2.1 forbids repetition).
        with pytest.raises(PathError):
            Path.parse(schema, "A.b.a.x")

    def test_unfrozen_schema_rejected(self):
        schema = Schema()
        schema.define("A", [atomic("x", AtomicType.STRING)])
        with pytest.raises(PathError):
            Path(schema=schema, starting_class="A", attribute_names=("x",))

    def test_inherited_attribute_usable_in_path(self, vehicle_schema):
        # Bus inherits man from Vehicle.
        path = Path.parse(vehicle_schema, "Bus.man.name")
        assert path.classes == ("Bus", "Company")


class TestSubpaths:
    def test_subpath_bounds(self, pexa):
        subpath = pexa.subpath(2, 3)
        assert str(subpath) == "Vehicle.man.divisions"
        assert subpath.length == 2

    def test_subpath_full_is_same_expression(self, pexa):
        assert str(pexa.subpath(1, 4)) == str(pexa)

    def test_subpath_invalid_order(self, pexa):
        with pytest.raises(PathError):
            pexa.subpath(3, 2)

    def test_subpath_count_formula(self, pexa):
        # n(n+1)/2 for n = 4.
        assert pexa.subpath_count() == 10
        assert len(list(pexa.subpaths())) == 10

    def test_subpaths_enumeration_order(self, pexa):
        coordinates = [(s, e) for s, e, _ in pexa.subpaths()]
        assert coordinates == [
            (1, 1), (1, 2), (1, 3), (1, 4),
            (2, 2), (2, 3), (2, 4),
            (3, 3), (3, 4),
            (4, 4),
        ]

    def test_single_class_subpath(self, pexa):
        subpath = pexa.subpath(4, 4)
        assert subpath.length == 1
        assert subpath.starting_class == "Division"

    def test_is_prefix_of(self, pexa):
        assert pexa.subpath(1, 2).is_prefix_of(pexa)
        assert not pexa.subpath(2, 3).is_prefix_of(pexa)

    def test_overlaps(self, pexa, pe):
        assert pexa.subpath(1, 2).overlaps(pexa)
        assert pexa.overlaps(pe)  # share Person.owns and Vehicle.man
        assert not pexa.subpath(3, 4).overlaps(pexa.subpath(1, 2))

    def test_paths_are_hashable(self, pexa):
        assert hash(pexa.subpath(1, 2)) == hash(pexa.subpath(1, 2))
        assert len({pexa.subpath(1, 2), pexa.subpath(1, 2)}) == 1
