"""Tests for the reporting helpers."""

from repro.reporting.tables import ascii_table, comparison_table


class TestAsciiTable:
    def test_alignment_and_content(self):
        text = ascii_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 22]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert "alpha" in lines[3]
        assert "1.50" in lines[3]

    def test_empty_rows(self):
        text = ascii_table(["a", "b"], [])
        assert "a" in text

    def test_floats_formatted(self):
        text = ascii_table(["x"], [[3.14159]])
        assert "3.14" in text
        assert "3.14159" not in text


class TestComparisonTable:
    def test_basic(self):
        line = comparison_table("factor", 2.7, 4.1)
        assert line == "factor: paper=2.70 measured=4.10"

    def test_with_note(self):
        line = comparison_table("cost", 16.03, 23.87, note="shape only")
        assert line.endswith("(shape only)")


class TestStrategyComparisonTable:
    def test_rows_and_ratio_column(self, fig6):
        from repro.reporting.tables import strategy_comparison_table
        from repro.search import get_strategy

        exact = get_strategy("dynamic_program").search(fig6)
        beam = get_strategy("greedy_beam", width=2).search(fig6)
        text = strategy_comparison_table(
            [exact, beam], title="fig6", reference_cost=exact.cost
        )
        assert "dynamic_program" in text
        assert "greedy_beam" in text
        assert "vs optimum" in text
        assert "1.0000x" in text

    def test_without_reference_cost(self, fig6):
        from repro.reporting.tables import strategy_comparison_table
        from repro.search import get_strategy

        result = get_strategy("branch_and_bound").search(fig6)
        text = strategy_comparison_table([result])
        assert "vs optimum" not in text
        assert "branch_and_bound" in text
