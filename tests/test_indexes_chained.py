"""Tests for the chained operational indexes: MX and MIX."""

import pytest

from repro.errors import IndexError_
from repro.indexes.base import IndexContext
from repro.indexes.multi import MultiIndex
from repro.indexes.multi_inherited import MultiInheritedIndex
from repro.storage.pager import Pager
from repro.storage.sizes import SizeModel


def make_context(vehicle_db, pexa, start=1, end=4):
    sizes = SizeModel()
    return IndexContext(
        database=vehicle_db,
        path=pexa,
        start=start,
        end=end,
        pager=Pager(page_size=sizes.page_size),
        sizes=sizes,
    )


def division_named(db, name):
    return next(
        d for d in db.extent("Division") if d.values["name"] == name
    )


@pytest.fixture(params=[MultiIndex, MultiInheritedIndex], ids=["MX", "MIX"])
def chained_index(request, vehicle_db, pexa):
    context = make_context(vehicle_db, pexa)
    return request.param(context), vehicle_db, context


class TestChainedLookup:
    def test_full_path_query(self, chained_index):
        index, db, _ = chained_index
        # Persons reaching division 'Fiat-movings' through owns.man.divisions.
        result = index.lookup("Fiat-movings", "Person")
        names = {db.get(oid).values["name"] for oid in result}
        assert names == {"Piet", "Sonia", "Henk"}

    def test_intermediate_class_query(self, chained_index):
        index, db, _ = chained_index
        companies = index.lookup("Fiat-movings", "Company")
        assert {db.get(oid).values["name"] for oid in companies} == {"Fiat"}

    def test_hierarchy_member_query(self, chained_index):
        index, db, _ = chained_index
        buses = index.lookup("Fiat-movings", "Bus")
        assert all(oid.class_name == "Bus" for oid in buses)
        assert len(buses) == 1

    def test_include_subclasses(self, chained_index):
        index, _, _ = chained_index
        vehicles = index.lookup("Fiat-movings", "Vehicle", include_subclasses=True)
        assert {oid.class_name for oid in vehicles} == {"Vehicle", "Bus", "Truck"}

    def test_missing_value_empty(self, chained_index):
        index, _, _ = chained_index
        assert index.lookup("nothing", "Person") == set()

    def test_uncovered_class_rejected(self, vehicle_db, pexa):
        context = make_context(vehicle_db, pexa, start=3, end=4)
        index = MultiIndex(context)
        with pytest.raises(IndexError_):
            index.lookup("x", "Person")

    def test_lookup_many_unions(self, chained_index):
        index, _, _ = chained_index
        merged = index.lookup_many(
            ["Fiat-movings", "Renault-engines"], "Person"
        )
        assert len(merged) >= 3


class TestChainedMaintenance:
    def test_insert_visible(self, chained_index):
        index, db, _ = chained_index
        fiat = next(
            c.oid for c in db.extent("Company") if c.values["name"] == "Fiat"
        )
        oid = db.create("Vehicle", vid=50, color="Gold", max_speed=180, man=fiat)
        index.on_insert(db.get(oid))
        index.check_consistency()
        assert oid in index.lookup("Fiat-movings", "Vehicle")

    def test_delete_hides(self, chained_index):
        index, db, _ = chained_index
        victim = next(
            v for v in db.extent("Vehicle")
            if db.get(v.values["man"]).values["name"] == "Fiat"  # type: ignore[arg-type]
        )
        index.on_delete(victim)
        db.delete(victim.oid)
        index.check_consistency()
        assert victim.oid not in index.lookup("Fiat-movings", "Vehicle")

    def test_delete_middle_object_cuts_chain(self, chained_index):
        """Deleting a company disconnects its vehicles from its divisions."""
        index, db, _ = chained_index
        fiat = next(
            c for c in db.extent("Company") if c.values["name"] == "Fiat"
        )
        before = index.lookup("Fiat-movings", "Person")
        assert before
        index.on_delete(fiat)
        db.delete(fiat.oid)
        index.check_consistency()
        assert index.lookup("Fiat-movings", "Person") == set()

    def test_foreign_class_events_ignored(self, chained_index):
        index, db, context = chained_index
        # An event for a class outside the subpath is a no-op; simulate by
        # narrowing to positions 3..4 and feeding a Person event.
        narrow = type(index)(make_context(db, context.path, start=3, end=4))
        person = next(db.extent("Person"))
        narrow.on_insert(person)
        narrow.on_delete(person)
        narrow.check_consistency()

    def test_covers_class(self, chained_index):
        index, _, _ = chained_index
        assert index.covers_class("Bus")
        assert not index.covers_class("Nothing")


class TestComponents:
    def test_mx_has_component_per_scope_class(self, vehicle_db, pexa):
        index = MultiIndex(make_context(vehicle_db, pexa))
        assert index.component(2, "Bus").class_name == "Bus"
        with pytest.raises(IndexError_):
            index.component(2, "Person")

    def test_mix_has_component_per_level(self, vehicle_db, pexa):
        index = MultiInheritedIndex(make_context(vehicle_db, pexa))
        assert index.component(2).root_class == "Vehicle"
        with pytest.raises(IndexError_):
            index.component(9)

    def test_mx_remove_key_clears_ending_records(self, vehicle_db, pexa):
        index = MultiIndex(make_context(vehicle_db, pexa))
        index.remove_key("Fiat-movings")
        assert index.lookup("Fiat-movings", "Person") == set()
