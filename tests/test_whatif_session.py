"""Tests for the ``repro.whatif`` subsystem (PR 4).

The load-bearing property: an :class:`~repro.whatif.AdvisorSession`
after an arbitrary sequence of supported perturbations answers
bit-identically to a fresh ``advise`` over the final inputs — for every
registered exact strategy, so the incremental matrix recompute (with its
O(1) ``CMD`` patches), the refinable dynamic program, and the session
bookkeeping can never drift from the one-shot pipeline. Also covers
:class:`~repro.core.cost_matrix.RecomputeReport`, the declarative
:class:`~repro.whatif.Perturbation` format, the multi-path session with
its candidate caching, and the seeded randomized restarts of the joint
coordinate descent.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.multipath as multipath_module
from repro.core.cost_matrix import CostMatrix
from repro.core.multipath import PathWorkload, optimize_multipath
from repro.costmodel.params import ClassStats, PathStatistics
from repro.errors import OptimizerError, WorkloadError
from repro.search import get_strategy
from repro.synth import LevelSpec, linear_path_schema
from repro.whatif import (
    AdvisorSession,
    MultiPathSession,
    Perturbation,
    parse_steps,
)
from repro.workload.load import LoadDistribution


def make_world(length=5, subclasses=(0, 1, 0, 2, 0), prefix="L", objects=40_000):
    levels = [
        LevelSpec(f"{prefix}{i}", subclasses=subclasses[i % len(subclasses)])
        for i in range(length)
    ]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    remaining = objects
    for position in range(1, length + 1):
        for member in path.hierarchy_at(position):
            per_class[member] = ClassStats(
                objects=remaining, distinct=max(10, remaining // 6), fanout=1.0
            )
        remaining = max(50, remaining // 5)
    stats = PathStatistics(path, per_class)
    load = LoadDistribution.uniform(path, query=0.3, insert=0.1, delete=0.05)
    return stats, load


def exact_strategy_names():
    from repro.search import available_strategies

    return tuple(
        name
        for name in available_strategies()
        if get_strategy(name).exact
    )


class TestPerturbation:
    def test_parse_scale_and_set(self):
        scaled = Perturbation.parse("Division:delete*2")
        assert scaled == Perturbation("Division", "delete", "scale", 2.0)
        assert scaled.kind == "load"
        pinned = Perturbation.parse("Division:objects=5000")
        assert pinned == Perturbation("Division", "objects", "set", 5000.0)
        assert pinned.kind == "stats"

    def test_parse_rejects_garbage(self):
        for text in ("Division", "Division:delete", "Division:delete*x", ":q*2"):
            with pytest.raises(OptimizerError):
                Perturbation.parse(text)

    def test_unknown_component_rejected(self):
        with pytest.raises(OptimizerError, match="component"):
            Perturbation("A", "updates", "scale", 2.0)

    def test_negative_value_rejected(self):
        with pytest.raises(OptimizerError, match="non-negative"):
            Perturbation("A", "query", "set", -1.0)

    def test_round_trips_through_dict(self):
        perturbation = Perturbation("A", "insert", "scale", 1.5)
        assert Perturbation.from_dict(perturbation.to_dict()) == perturbation

    def test_parse_steps_document_forms(self):
        steps = [{"class": "A", "component": "query", "scale": 2.0}]
        assert parse_steps(steps) == parse_steps({"steps": steps})
        with pytest.raises(OptimizerError):
            parse_steps({"wrong": steps})
        with pytest.raises(OptimizerError):
            parse_steps([{"class": "A", "component": "query"}])
        with pytest.raises(OptimizerError):
            parse_steps(
                [{"class": "A", "component": "query", "scale": 1, "set": 1}]
            )

    def test_apply_load_replaces_one_triplet_only(self):
        stats, load = make_world()
        perturbation = Perturbation("L2", "delete", "scale", 3.0)
        new_stats, new_load = perturbation.apply(stats, load)
        assert new_stats is stats
        assert new_load is not load
        assert new_load.triplet("L2").delete == load.triplet("L2").delete * 3.0
        assert new_load.triplet("L0") == load.triplet("L0")

    def test_apply_stats_replaces_one_class_only(self):
        stats, load = make_world()
        perturbation = Perturbation("L1", "objects", "scale", 2.0)
        new_stats, new_load = perturbation.apply(stats, load)
        assert new_load is load
        assert new_stats.stats_of("L1").objects == stats.stats_of("L1").objects * 2
        assert new_stats.stats_of("L0") == stats.stats_of("L0")

    def test_apply_unknown_class_rejected(self):
        stats, load = make_world()
        with pytest.raises(WorkloadError):
            Perturbation("Nope", "query", "scale", 2.0).apply(stats, load)


class TestPerturbationEdgeCases:
    """Round-trip pinning beyond the happy path: zero frequencies,
    unknown classes, and the ``=v`` vs ``*f`` flag forms."""

    @pytest.mark.parametrize("value", [0.0, 0.25, 1e-3, 7.0, 1e6, 0.5])
    def test_describe_parse_round_trip_scale_and_set(self, value):
        for mode in ("scale", "set"):
            perturbation = Perturbation("Division", "query", mode, value)
            assert Perturbation.parse(perturbation.describe()) == perturbation

    @pytest.mark.parametrize("value", [0.0, 1e-3, 1e6])
    def test_dict_round_trip_edge_values(self, value):
        for mode in ("scale", "set"):
            perturbation = Perturbation("A", "delete", mode, value)
            assert Perturbation.from_dict(perturbation.to_dict()) == perturbation

    def test_zero_set_produces_zero_frequency(self):
        stats, load = make_world()
        _, new_load = Perturbation("L2", "query", "set", 0.0).apply(stats, load)
        assert new_load.triplet("L2").query == 0.0

    def test_zero_scale_on_zero_frequency_is_a_noop_apply(self):
        stats, load = make_world()
        zero_load = LoadDistribution(stats.path, {})  # all-zero triplets
        session = AdvisorSession(stats, zero_load)
        session.advise()
        report = session.perturb(Perturbation("L2", "query", "scale", 5.0))
        # 5 x 0 is still 0: nothing is dirty, the version must not move.
        assert report.dirty_count == 0
        assert session.version == 0

    def test_scale_zero_and_set_zero_agree(self):
        stats, load = make_world()
        _, scaled = Perturbation("L1", "insert", "scale", 0.0).apply(stats, load)
        _, pinned = Perturbation("L1", "insert", "set", 0.0).apply(stats, load)
        assert scaled.triplet("L1") == pinned.triplet("L1")

    def test_unknown_class_parses_but_fails_on_apply(self):
        stats, load = make_world()
        load_perturbation = Perturbation.parse("Ghost:query*2")
        with pytest.raises(WorkloadError, match="Ghost"):
            load_perturbation.apply(stats, load)
        stats_perturbation = Perturbation.parse("Ghost:objects=10")
        from repro.errors import CostModelError

        with pytest.raises(CostModelError, match="Ghost"):
            stats_perturbation.apply(stats, load)

    def test_mixed_operator_forms_rejected(self):
        for text in ("A:query*2=3", "A:query=", "A:query*", "A:*2", "A:=3"):
            with pytest.raises(OptimizerError):
                Perturbation.parse(text)

    def test_set_and_scale_flag_forms_differ(self):
        scaled = Perturbation.parse("A:query*2")
        pinned = Perturbation.parse("A:query=2")
        assert scaled.mode == "scale" and pinned.mode == "set"
        assert scaled != pinned
        assert scaled.describe() == "A:query*2"
        assert pinned.describe() == "A:query=2"

    def test_zero_frequency_session_round_trip_matches_fresh(self):
        stats, load = make_world()
        session = AdvisorSession(stats, load)
        session.perturb(Perturbation("L2", "query", "set", 0.0))
        session.perturb(Perturbation("L2", "insert", "set", 0.0))
        session.perturb(Perturbation("L2", "delete", "set", 0.0))
        fresh = get_strategy("dynamic_program").search(
            CostMatrix.compute(session.stats, session.load)
        )
        result = session.advise()
        assert result.cost == fresh.cost
        assert result.configuration == fresh.configuration


class TestRecomputeReport:
    def test_compute_carries_no_report(self):
        stats, load = make_world()
        assert CostMatrix.compute(stats, load).recompute_report is None

    def test_incremental_report_counts_rows(self):
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load)
        _, new_load = Perturbation("L2", "insert", "scale", 2.0).apply(
            stats, load
        )
        updated = matrix.recompute(load=new_load)
        report = updated.recompute_report
        assert report.mode == "incremental"
        assert report.incremental
        assert report.patched_rows == ()
        # L2 roots position 3: rows covering it are re-priced.
        assert set(report.recomputed_rows) == {
            (s, e) for s in range(1, 4) for e in range(3, stats.length + 1)
        }
        assert report.dirty_count == len(report.recomputed_rows)
        assert report.total_rows == matrix.row_count()
        assert "re-priced" in report.describe()

    def test_delete_change_reports_cmd_patches(self):
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load)
        _, new_load = Perturbation("L2", "delete", "scale", 2.0).apply(
            stats, load
        )
        report = matrix.recompute(load=new_load).recompute_report
        # Rows ending at position 2 only feel the CMD term of position-3
        # deletions: they are patched, never re-priced.
        assert set(report.patched_rows) == {(1, 2), (2, 2)}
        assert set(report.recomputed_rows) == {
            (s, e) for s in range(1, 4) for e in range(3, stats.length + 1)
        }
        assert set(report.dirty_rows) == set(report.recomputed_rows) | set(
            report.patched_rows
        )

    def test_cmd_patch_is_bit_identical_to_fresh_compute(self):
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load)
        _, new_load = Perturbation("L4", "delete", "scale", 7.0).apply(
            stats, load
        )
        patched = matrix.recompute(load=new_load)
        fresh = CostMatrix.compute(stats, new_load)
        for start, end in fresh.rows():
            for organization in fresh.organizations:
                assert patched.cost(start, end, organization) == fresh.cost(
                    start, end, organization
                )
                assert (
                    patched.breakdown(start, end, organization).cmd
                    == fresh.breakdown(start, end, organization).cmd
                )

    def test_config_change_reports_full_mode_with_reason(self):
        import dataclasses

        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load)
        new_stats = PathStatistics(
            stats.path,
            {
                member: stats.stats_of(member)
                for position in range(1, stats.length + 1)
                for member in stats.members(position)
            },
            dataclasses.replace(stats.config, pr_mx=2.0),
        )
        report = matrix.recompute(stats=new_stats).recompute_report
        assert report.mode == "full"
        assert not report.incremental
        assert "config" in report.reason
        assert len(report.recomputed_rows) == report.total_rows


class TestAdvisorSession:
    def test_baseline_matches_plain_advise(self):
        stats, load = make_world()
        session = AdvisorSession(stats, load)
        fresh = get_strategy("dynamic_program").search(
            CostMatrix.compute(stats, load)
        )
        result = session.advise()
        assert result.cost == fresh.cost
        assert result.configuration == fresh.configuration

    def test_advise_without_changes_returns_cached_result(self):
        stats, load = make_world()
        session = AdvisorSession(stats, load)
        first = session.advise()
        assert session.advise() is first

    def test_apply_requires_something(self):
        stats, load = make_world()
        session = AdvisorSession(stats, load)
        with pytest.raises(OptimizerError, match="apply requires"):
            session.apply()

    def test_version_moves_only_when_rows_touched(self):
        stats, load = make_world()
        session = AdvisorSession(stats, load)
        assert session.version == 0
        session.apply(load=load.scaled(1.0))  # equal values: nothing dirty
        assert session.version == 0
        session.perturb(Perturbation("L2", "query", "scale", 2.0))
        assert session.version == 1

    def test_session_survives_full_fallback(self):
        import dataclasses

        stats, load = make_world()
        session = AdvisorSession(stats, load)
        session.advise()
        new_stats = PathStatistics(
            stats.path,
            {
                member: stats.stats_of(member)
                for position in range(1, stats.length + 1)
                for member in stats.members(position)
            },
            dataclasses.replace(stats.config, pr_mx=2.0),
        )
        report = session.apply(stats=new_stats)
        assert report.mode == "full"
        fresh = get_strategy("dynamic_program").search(
            CostMatrix.compute(new_stats, load)
        )
        result = session.advise()
        assert result.cost == fresh.cost
        assert result.configuration == fresh.configuration

    def test_run_produces_step_reports(self):
        stats, load = make_world()
        session = AdvisorSession(stats, load)
        steps = session.run(
            [
                Perturbation("L2", "delete", "scale", 2.0),
                Perturbation("L0", "query", "scale", 4.0),
            ]
        )
        assert [step.index for step in steps] == [0, 1, 2]
        assert steps[0].report is None
        assert steps[1].report.mode == "incremental"
        assert steps[1].description == "L2:delete*2"
        # Every step's answer equals a fresh advise over its inputs.
        fresh = get_strategy("dynamic_program").search(
            CostMatrix.compute(session.stats, session.load)
        )
        assert steps[-1].cost == fresh.cost

    def test_incremental_search_reuses_positions(self):
        stats, load = make_world(length=6, subclasses=(0,) * 6)
        session = AdvisorSession(stats, load)
        session.advise()
        # An insert change at the first position dirties only rows
        # starting there, so the refinement relaxes a strict subset of
        # the DP positions and reuses the rest of the tables.
        session.perturb(
            Perturbation(stats.path.class_at(1), "insert", "scale", 2.0)
        )
        result = session.advise()
        assert result.extras["reused_positions"] > 0
        assert (
            result.extras["relaxed_positions"]
            + result.extras["reused_positions"]
            == stats.length
        )


def perturbation_strategy(scope):
    component = st.sampled_from(
        ["query", "insert", "delete", "objects", "distinct"]
    )
    return st.builds(
        Perturbation,
        class_name=st.sampled_from(scope),
        component=component,
        mode=st.sampled_from(["scale", "set"]),
        value=st.floats(min_value=0.1, max_value=8.0),
    )


@st.composite
def session_worlds(draw):
    length = draw(st.integers(min_value=2, max_value=4))
    subclasses = tuple(
        draw(st.integers(min_value=0, max_value=2)) for _ in range(length)
    )
    stats, load = make_world(length=length, subclasses=subclasses)
    scope = [
        member
        for position in range(1, length + 1)
        for member in stats.members(position)
    ]
    count = draw(st.integers(min_value=1, max_value=5))
    perturbations = [draw(perturbation_strategy(scope)) for _ in range(count)]
    return stats, load, perturbations


class TestSessionEqualsFreshAdvise:
    @given(world=session_worlds())
    @settings(max_examples=25, deadline=None)
    def test_any_perturbation_sequence_matches_fresh_search(self, world):
        """The tentpole invariant: session == from-scratch, bit for bit,
        for every registered exact strategy."""
        stats, load, perturbations = world
        names = exact_strategy_names()
        sessions = {
            name: AdvisorSession(stats, load, strategy=name) for name in names
        }
        current_stats, current_load = stats, load
        for perturbation in perturbations:
            try:
                current_stats, current_load = perturbation.apply(
                    current_stats, current_load
                )
            except Exception:
                # A perturbation the validating constructors reject (e.g.
                # distinct > objects) must be rejected identically by the
                # sessions; skip it on both sides.
                for session in sessions.values():
                    with pytest.raises(Exception):
                        session.perturb(perturbation)
                continue
            for session in sessions.values():
                session.perturb(perturbation)
        fresh_matrix = CostMatrix.compute(current_stats, current_load)
        for name, session in sessions.items():
            fresh = get_strategy(name).search(fresh_matrix)
            result = session.advise()
            assert result.cost == fresh.cost, name
            assert result.configuration == fresh.configuration, name
            # Answering twice without new perturbations is stable.
            assert session.advise() is result


class TestMultiPathSessions:
    def make_pair(self):
        first = make_world(length=4, subclasses=(0, 1, 0, 0), prefix="A")
        second = make_world(
            length=5, subclasses=(0, 0, 2, 0, 0), prefix="B", objects=30_000
        )
        return first, second

    def test_sessions_match_fresh_optimize(self):
        (s1, l1), (s2, l2) = self.make_pair()
        sessions = [AdvisorSession(s1, l1), AdvisorSession(s2, l2)]
        via_sessions = optimize_multipath(sessions=sessions)
        fresh = optimize_multipath([PathWorkload(s1, l1), PathWorkload(s2, l2)])
        assert via_sessions.total_cost == fresh.total_cost
        assert via_sessions.configurations == fresh.configurations

    def test_sessions_exclusive_with_workloads(self):
        (s1, l1), _ = self.make_pair()
        session = AdvisorSession(s1, l1)
        with pytest.raises(OptimizerError, match="not both"):
            optimize_multipath(
                [PathWorkload(s1, l1)], sessions=[session]
            )

    def test_untouched_path_candidates_reused_by_identity(self):
        (s1, l1), (s2, l2) = self.make_pair()
        sessions = [AdvisorSession(s1, l1), AdvisorSession(s2, l2)]
        optimize_multipath(sessions=sessions)
        untouched = {
            key: value[1] for key, value in sessions[1].candidate_cache.items()
        }
        sessions[0].perturb(Perturbation("A2", "delete", "scale", 3.0))
        result = optimize_multipath(sessions=sessions)
        for key, candidates in sessions[1].candidate_cache.items():
            assert candidates[1] is untouched[key]
        fresh = optimize_multipath(
            [
                PathWorkload(sessions[0].stats, sessions[0].load),
                PathWorkload(s2, l2),
            ]
        )
        assert result.total_cost == fresh.total_cost
        assert result.configurations == fresh.configurations

    def test_multipath_session_caches_identical_questions(self):
        (s1, l1), (s2, l2) = self.make_pair()
        joint = MultiPathSession(
            [AdvisorSession(s1, l1), AdvisorSession(s2, l2)]
        )
        first = joint.optimize()
        assert joint.optimize() is first
        joint.perturb(0, Perturbation("A0", "query", "scale", 2.0))
        second = joint.optimize()
        assert second is not first

    def test_multipath_session_from_workloads(self):
        (s1, l1), (s2, l2) = self.make_pair()
        joint = MultiPathSession.from_workloads(
            [PathWorkload(s1, l1), PathWorkload(s2, l2)]
        )
        assert len(joint.sessions) == 2
        with pytest.raises(OptimizerError):
            MultiPathSession([])


class TestJointSelectionReuse:
    def make_joint(self):
        (s1, l1) = make_world(length=4, subclasses=(0, 1, 0, 0), prefix="A")
        (s2, l2) = make_world(
            length=5, subclasses=(0, 0, 2, 0, 0), prefix="B", objects=30_000
        )
        return MultiPathSession([AdvisorSession(s1, l1), AdvisorSession(s2, l2)])

    def test_descent_regime_reuses_locally_optimal_selection(self, monkeypatch):
        # Force the descent regime so the joint stage is reusable.
        monkeypatch.setattr(multipath_module, "_EXACT_LIMIT", 1)
        joint = self.make_joint()
        first = joint.optimize()
        assert joint.joint_reuses == 0
        # A tiny drift re-prices path 0's candidates without moving the
        # sharing landscape: the cached joint selection must be reused
        # (counter, not timing) and re-priced against the new matrices.
        joint.perturb(0, Perturbation("A1", "query", "scale", 1.001))
        second = joint.optimize()
        assert joint.joint_reuses == 1
        assert second.configurations == first.configurations
        assert second.total_cost != first.total_cost
        assert not second.exact

    def test_option_change_skips_reuse(self, monkeypatch):
        monkeypatch.setattr(multipath_module, "_EXACT_LIMIT", 1)
        joint = self.make_joint()
        joint.optimize()
        joint.perturb(0, Perturbation("A1", "query", "scale", 1.001))
        # Different selection options -> different cache key -> no reuse.
        joint.optimize(restarts=0)
        assert joint.joint_reuses == 0

    def test_exact_regime_never_reuses(self):
        joint = self.make_joint()
        first = joint.optimize()
        joint.perturb(0, Perturbation("A1", "query", "scale", 1.5))
        second = joint.optimize()
        assert joint.joint_reuses == 0
        # Exact answers stay pinned to the fresh pipeline.
        fresh = optimize_multipath(
            [
                PathWorkload(joint.sessions[0].stats, joint.sessions[0].load),
                PathWorkload(joint.sessions[1].stats, joint.sessions[1].load),
            ]
        )
        assert second.total_cost == fresh.total_cost
        assert second.configurations == fresh.configurations
        assert first.exact and second.exact


class TestRandomizedRestarts:
    def test_restarts_validation(self):
        from repro.core.multipath import validate_selection_options

        validate_selection_options(restarts=0)
        with pytest.raises(OptimizerError, match="restarts"):
            validate_selection_options(restarts=-1)

    def test_restarts_deterministic_and_never_worse(self, monkeypatch):
        # Force the descent regime so restarts actually run.
        monkeypatch.setattr(multipath_module, "_EXACT_LIMIT", 1)
        (s1, l1) = make_world(length=4, subclasses=(0, 1, 0, 0), prefix="A")
        (s2, l2) = make_world(
            length=5, subclasses=(0, 0, 2, 0, 0), prefix="B", objects=30_000
        )
        workloads = [PathWorkload(s1, l1), PathWorkload(s2, l2)]
        baseline = optimize_multipath(workloads, restarts=0)
        hedged_a = optimize_multipath(workloads, restarts=4, seed=11)
        hedged_b = optimize_multipath(workloads, restarts=4, seed=11)
        assert hedged_a.total_cost == hedged_b.total_cost
        assert hedged_a.configurations == hedged_b.configurations
        assert hedged_a.total_cost <= baseline.total_cost + 1e-9
        assert not baseline.exact
