"""Tests for the measured-I/O calibration fit and its CI accuracy guard."""

import pytest

from repro.backend.calibrate import (
    IDENTITY,
    CalibrationReport,
    ConstantFit,
    ScenarioMeasurement,
    calibrate,
    constant_name,
    measure_scenarios,
    operation_organization,
    render_calibration,
    run_calibration,
)
from repro.backend.scenarios import default_scenarios
from repro.errors import ReproError

THRESHOLD = 0.15


@pytest.fixture(scope="module")
def report() -> CalibrationReport:
    """One full calibration run, shared by the accuracy tests."""
    return run_calibration()


class TestDeterminism:
    def test_measurements_are_bit_identical_across_runs(self):
        first = measure_scenarios(query_samples=3, update_samples=2)
        second = measure_scenarios(query_samples=3, update_samples=2)
        assert first == second

    def test_fit_is_deterministic(self):
        rows = measure_scenarios(query_samples=3, update_samples=2)
        first = calibrate(rows)
        second = calibrate(rows)
        assert first.constants == second.constants
        assert first.scenario_errors() == second.scenario_errors()

    def test_scenarios_rebuild_identically(self):
        scenario = default_scenarios()[0]
        db1, path1, stats1, _ = scenario.build()
        db2, path2, stats2, _ = scenario.build()
        for member in path1.scope:
            assert {i.oid for i in db1.extent(member)} == {
                i.oid for i in db2.extent(member)
            }


class TestAccuracyGuard:
    def test_suite_covers_all_five_organizations(self, report):
        organizations = {row.organization for row in report.measurements}
        for needle in ("six", "iix", "mx", "mix", "nix"):
            assert any(needle in org for org in organizations), needle

    def test_every_scenario_within_threshold(self, report):
        errors = report.scenario_errors()
        assert len(errors) == len(default_scenarios())
        for scenario, error in errors.items():
            assert error <= THRESHOLD, f"{scenario}: {error:.3f}"

    def test_check_passes_with_fitted_constants(self, report):
        assert report.check(THRESHOLD) == []
        assert report.max_relative_error <= THRESHOLD

    def test_tampered_constants_fail_the_guard(self, report):
        tampered = {
            name: ConstantFit(
                name=fit.name,
                scale=fit.scale * 3.0,
                offset=fit.offset,
                samples=fit.samples,
                residual=fit.residual,
            )
            for name, fit in report.constants.items()
        }
        failures = report.check(THRESHOLD, constants=tampered)
        assert failures, "tripled constants must trip the accuracy guard"
        assert all("exceeds threshold" in failure for failure in failures)

    def test_identity_constants_are_worse_than_fit(self, report):
        fitted = max(report.scenario_errors().values())
        identity = max(
            report.scenario_errors(
                {name: IDENTITY for name in report.constants}
            ).values()
        )
        assert fitted <= identity

    def test_report_roundtrips_to_json(self, report):
        import json

        data = json.loads(report.to_json())
        assert data["max_relative_error"] == pytest.approx(
            report.max_relative_error
        )
        assert set(data["constants"]) == set(report.constants)
        assert len(data["measurements"]) == len(report.measurements)

    def test_render_mentions_every_constant(self, report):
        text = render_calibration(report)
        for name in report.constants:
            assert name in text


class TestFitMechanics:
    def _row(self, analytic, measured, samples=4, scenario="s", op="query"):
        return ScenarioMeasurement(
            scenario=scenario,
            organization="nix3.d0",
            operation=op,
            class_name="A",
            position=1,
            analytic=analytic,
            measured=measured,
            samples=samples,
        )

    def test_exact_affine_relation_recovered(self):
        rows = [self._row(x, 2.0 * x + 1.0) for x in (1.0, 2.0, 4.0)]
        fit = calibrate(rows).constants[constant_name("nix3.d0", "query")]
        assert fit.scale == pytest.approx(2.0)
        assert fit.offset == pytest.approx(1.0)
        assert fit.residual == pytest.approx(0.0, abs=1e-9)

    def test_constant_analytic_column_gets_ratio_fit(self):
        rows = [self._row(2.0, 3.0), self._row(2.0, 3.0)]
        fit = calibrate(rows).constants[constant_name("nix3.d0", "query")]
        assert fit.apply(2.0) == pytest.approx(3.0)
        assert fit.offset == 0.0

    def test_zero_analytic_column_gets_measured_mean_offset(self):
        rows = [self._row(0.0, 3.0), self._row(0.0, 5.0)]
        fit = calibrate(rows).constants[constant_name("nix3.d0", "query")]
        assert fit.scale == 1.0
        assert fit.apply(0.0) == pytest.approx(4.0)

    def test_negative_slope_falls_back_to_ratio(self):
        rows = [self._row(1.0, 5.0), self._row(5.0, 1.0)]
        fit = calibrate(rows).constants[constant_name("nix3.d0", "query")]
        assert fit.scale >= 0.0

    def test_empty_measurements_rejected(self):
        with pytest.raises(ReproError):
            calibrate([])

    def test_unknown_key_uses_identity(self):
        rows = [self._row(2.0, 3.0)]
        report = calibrate(rows)
        foreign = self._row(2.0, 3.0)
        object.__setattr__(foreign, "organization", "mx9.d9")
        assert report.predicted(foreign) == pytest.approx(2.0)


class TestOperationOrganization:
    PARTS = [(1, 2, "NIX"), (3, 3, "MIX")]

    def test_query_includes_tail_chain(self):
        assert (
            operation_organization(self.PARTS, 1, "query") == "nix2+mix1.d0"
        )
        assert (
            operation_organization(self.PARTS, 2, "query") == "nix2+mix1.d1"
        )
        assert operation_organization(self.PARTS, 3, "query") == "mix1.d0"

    def test_delete_at_subpath_start_includes_cmd(self):
        assert (
            operation_organization(self.PARTS, 3, "delete")
            == "mix1.d0+cmd-nix2"
        )
        assert operation_organization(self.PARTS, 2, "delete") == "nix2.d1"

    def test_insert_is_own_part_only(self):
        assert operation_organization(self.PARTS, 3, "insert") == "mix1.d0"
