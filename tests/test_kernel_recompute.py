"""Parity and counter pins for the kernel dirty-slice recompute (PR 9).

``CostMatrix.recompute`` routes dirty-row sets through the columnar
kernel as array-slice re-evaluations over cached (or freshly patched)
lowerings. These tests pin the contract three ways:

* **bit-identity** — a recomputed matrix equals a from-scratch legacy
  build for every organization, under kernel on/off × evaluation-cache
  on/off, across Hypothesis-driven perturbation batches;
* **counters** — ``RecomputeReport.kernel_slice_rows`` counts exactly
  the kernel-priced rows and ``kernel_fallback_reason`` names why the
  slice went legacy (requested, below threshold without a lowering,
  range-ending oracle rows, numpy missing);
* **fallbacks** — the "numpy unavailable" path runs in-process when
  this environment has no numpy (the no-numpy CI job) and in a
  stub-numpy subprocess everywhere else.
"""

import os
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernel
from repro.core.cost_matrix import KERNEL_AUTO_MIN_ROWS, CostMatrix
from repro.costmodel.params import ClassStats, PathStatistics
from repro.synth import LevelSpec, linear_path_schema
from repro.workload.load import LoadDistribution, LoadTriplet

NUMPY = kernel.is_available()
needs_numpy = pytest.mark.skipif(not NUMPY, reason="requires numpy")

if NUMPY:
    # test_kernel_parity skips itself (module-level importorskip) when
    # numpy is missing, so its world helpers are only reachable here.
    from test_kernel_parity import (
        assert_matrices_identical,
        make_world,
        perturb_load,
        perturb_stats,
    )


def plain_world(length=5):
    """A linear-chain world buildable with or without numpy."""
    levels = [LevelSpec(f"L{i}", subclasses=0) for i in range(length)]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    objects = 40_000
    for position in range(1, length + 1):
        for member in path.hierarchy_at(position):
            per_class[member] = ClassStats(
                objects=objects, distinct=max(10, objects // 6), fanout=1.0
            )
        objects = max(50, objects // 5)
    stats = PathStatistics(path, per_class)
    load = LoadDistribution.uniform(path, 0.3, 0.1, 0.05)
    return stats, load


def scale_insert(load, class_name, factor):
    """One class's insert frequency scaled (a minimal load perturbation)."""
    triplets = {}
    for name, triplet in load.items():
        if name == class_name:
            triplet = LoadTriplet(
                query=triplet.query,
                insert=triplet.insert * factor + 0.01,
                delete=triplet.delete,
            )
        triplets[name] = triplet
    return LoadDistribution(load.path, triplets)


def small_world(cache_evaluation=True):
    """A world whose six rows all sit below the auto-kernel threshold."""
    stats, load = make_world(
        length=3, subclasses=(0, 0, 0), cache_evaluation=cache_evaluation
    )
    assert stats.length * (stats.length + 1) // 2 < KERNEL_AUTO_MIN_ROWS
    return stats, load


perturbation_batches = st.lists(
    st.tuples(
        st.sampled_from(["L0", "L1", "L2", "L3", "L4"]),
        st.sampled_from(["query", "insert", "delete", "stats"]),
        st.floats(min_value=0.25, max_value=4.0),
    ),
    min_size=1,
    max_size=3,
)


@needs_numpy
class TestDirtySliceBitIdentity:
    @given(batch=perturbation_batches, cache=st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_recompute_matches_fresh_build(self, batch, cache):
        """recompute(dirty) == fresh build, kernel × cache, all orgs."""
        stats, load = make_world(cache_evaluation=cache)
        for kern in ("columnar", "legacy"):
            matrix = CostMatrix.compute(
                stats, load, include_noindex=True, kernel=kern
            )
            new_stats, new_load = stats, load
            for class_name, component, factor in batch:
                if component == "stats":
                    new_stats = perturb_stats(new_stats, class_name, factor)
                else:
                    new_load = perturb_load(
                        new_load, class_name, component, factor
                    )
            recomputed = matrix.recompute(stats=new_stats, load=new_load)
            fresh = CostMatrix.compute(
                new_stats, new_load, include_noindex=True, kernel="legacy"
            )
            assert_matrices_identical(recomputed, fresh)
            report = recomputed.recompute_report
            if report.kernel_sliced:
                assert report.kernel_fallback_reason is None
            elif kern == "legacy":
                assert (
                    report.kernel_fallback_reason == "legacy kernel requested"
                )

    def test_chained_drifts_keep_slicing_through_patched_lowerings(self):
        """Consecutive steps chain workload patches: every step stays on
        the kernel (the previous step's patched lowering is found in the
        persistent cache) and stays bit-identical to a fresh build."""
        stats, load = make_world(length=8)
        matrix = CostMatrix.compute(stats, load, kernel="columnar")
        current = load
        for step, factor in enumerate((1.5, 0.5, 3.0), start=1):
            current = perturb_load(current, "L3", "query", factor)
            matrix = matrix.recompute(load=current)
            report = matrix.recompute_report
            assert report.kernel_sliced, f"step {step} fell off the kernel"
            assert report.kernel_slice_rows == len(report.recomputed_rows)
            assert_matrices_identical(
                matrix, CostMatrix.compute(stats, current, kernel="legacy")
            )


@needs_numpy
class TestKernelSliceCounters:
    def test_legacy_request_reports_reason(self):
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load, kernel="legacy")
        recomputed = matrix.recompute(
            load=perturb_load(load, "L1", "insert", 2.0)
        )
        report = recomputed.recompute_report
        assert report.kernel_slice_rows == 0
        assert not report.kernel_sliced
        assert report.kernel_fallback_reason == "legacy kernel requested"
        assert "legacy: legacy kernel requested" in report.describe()

    def test_small_dirty_set_without_lowering_falls_back(self):
        """auto + a dirty set below the threshold + no cached lowering
        (the matrix was built legacy) stays on the legacy evaluator."""
        stats, load = small_world()
        matrix = CostMatrix.compute(stats, load, kernel="legacy")
        recomputed = matrix.recompute(
            load=perturb_load(load, "L1", "insert", 2.0), kernel="auto"
        )
        report = recomputed.recompute_report
        assert report.kernel_slice_rows == 0
        assert report.kernel_fallback_reason == (
            f"dirty set of {len(report.recomputed_rows)} rows below the "
            f"kernel threshold ({KERNEL_AUTO_MIN_ROWS}) with no cached "
            f"lowering"
        )

    def test_cached_lowering_lifts_the_threshold(self):
        """The same below-threshold dirty set rides the kernel when the
        columnar build left its lowering in the persistent cache."""
        stats, load = small_world()
        matrix = CostMatrix.compute(stats, load, kernel="columnar")
        recomputed = matrix.recompute(
            load=perturb_load(load, "L1", "insert", 2.0)
        )
        report = recomputed.recompute_report
        assert report.kernel_sliced
        assert report.kernel_slice_rows == len(report.recomputed_rows)
        assert report.kernel_fallback_reason is None
        assert (
            f"({report.kernel_slice_rows} kernel-sliced)"
            in report.describe()
        )

    def test_cache_off_explicit_columnar_lowers_fresh(self):
        """With the evaluation cache disabled nothing persists, but an
        explicit columnar request still prices the slice on the kernel
        through a fresh lowering."""
        stats, load = small_world(cache_evaluation=False)
        matrix = CostMatrix.compute(stats, load, kernel="columnar")
        recomputed = matrix.recompute(
            load=perturb_load(load, "L1", "insert", 2.0)
        )
        report = recomputed.recompute_report
        assert report.kernel_sliced
        assert report.kernel_fallback_reason is None

    def test_cache_off_auto_small_set_falls_back(self):
        stats, load = small_world(cache_evaluation=False)
        matrix = CostMatrix.compute(stats, load, kernel="auto")
        recomputed = matrix.recompute(
            load=perturb_load(load, "L1", "insert", 2.0)
        )
        report = recomputed.recompute_report
        assert report.kernel_slice_rows == 0
        assert "below the kernel threshold" in report.kernel_fallback_reason

    def test_range_ending_rows_report_the_legacy_oracle(self):
        """Under a range predicate, rows ending at the path's last
        attribute are legacy-oracle territory; a dirty set made of only
        those rows reports the oracle as its fallback."""
        stats, load = make_world()
        matrix = CostMatrix.compute(
            stats, load, kernel="columnar", range_selectivity=0.4
        )
        recomputed = matrix.recompute(
            load=perturb_load(load, "L4", "insert", 2.0)
        )
        report = recomputed.recompute_report
        assert report.recomputed_rows
        assert all(end == stats.length for _s, end in report.recomputed_rows)
        assert report.kernel_slice_rows == 0
        assert report.kernel_fallback_reason == (
            "all dirty rows end at the path's last attribute under a "
            "range predicate (legacy oracle)"
        )
        assert_matrices_identical(
            recomputed,
            CostMatrix.compute(
                stats,
                perturb_load(load, "L4", "insert", 2.0),
                kernel="legacy",
                range_selectivity=0.4,
            ),
        )

    def test_stats_change_relowers_and_slices(self):
        """New statistics invalidate every cached lowering; a large
        enough dirty set still prices on the kernel via a fresh one."""
        stats, load = make_world()
        matrix = CostMatrix.compute(stats, load, kernel="columnar")
        recomputed = matrix.recompute(stats=perturb_stats(stats, "L2", 1.7))
        report = recomputed.recompute_report
        assert report.kernel_sliced
        assert report.kernel_fallback_reason is None


class TestWithoutNumpyInProcess:
    """Direct coverage for the no-numpy CI job (skipped where numpy is
    importable — the subprocess probe below covers those environments)."""

    @pytest.mark.skipif(NUMPY, reason="requires a numpy-free environment")
    def test_auto_recompute_reports_numpy_unavailable(self):
        stats, load = plain_world()
        matrix = CostMatrix.compute(stats, load, kernel="auto")
        recomputed = matrix.recompute(load=scale_insert(load, "L1", 2.0))
        report = recomputed.recompute_report
        assert report.recomputed_rows
        assert report.kernel_slice_rows == 0
        assert report.kernel_fallback_reason == "numpy unavailable"
        fresh = CostMatrix.compute(
            stats, scale_insert(load, "L1", 2.0), kernel="legacy"
        )
        for start, end in fresh.rows():
            for organization in fresh.organizations:
                assert recomputed.cost(
                    start, end, organization
                ) == fresh.cost(start, end, organization)


NO_NUMPY_RECOMPUTE_PROBE = textwrap.dedent(
    """
    from repro import kernel
    assert kernel.is_available() is False

    from repro.core.cost_matrix import CostMatrix
    from repro.costmodel.params import ClassStats, PathStatistics
    from repro.synth import LevelSpec, linear_path_schema
    from repro.workload.load import LoadDistribution, LoadTriplet

    levels = [LevelSpec(f"L{i}", subclasses=0) for i in range(8)]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    objects = 40_000
    for position in range(1, 9):
        for member in path.hierarchy_at(position):
            per_class[member] = ClassStats(
                objects=objects, distinct=max(10, objects // 6), fanout=1.0
            )
        objects = max(50, objects // 5)
    stats = PathStatistics(path, per_class)
    load = LoadDistribution.uniform(path, 0.3, 0.1, 0.05)

    matrix = CostMatrix.compute(stats, load, kernel="auto")
    triplets = dict(load.items())
    triplets["L3"] = LoadTriplet(query=0.9, insert=0.1, delete=0.05)
    recomputed = matrix.recompute(
        load=LoadDistribution(path, triplets), kernel="auto"
    )
    report = recomputed.recompute_report
    assert report.recomputed_rows, "perturbation must dirty rows"
    assert report.kernel_slice_rows == 0
    assert report.kernel_fallback_reason == "numpy unavailable", (
        report.kernel_fallback_reason
    )
    fresh = CostMatrix.compute(
        stats, LoadDistribution(path, triplets), kernel="legacy"
    )
    for start, end in fresh.rows():
        for organization in fresh.organizations:
            assert recomputed.cost(start, end, organization) == fresh.cost(
                start, end, organization
            )
    print("OK")
    """
)


class TestNoNumpyRecompute:
    def test_recompute_degrades_and_reports_without_numpy(self, tmp_path):
        stub = tmp_path / "numpy.py"
        stub.write_text(
            'raise ImportError("numpy disabled for fallback test")\n'
        )
        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([str(tmp_path), repo_src])
        completed = subprocess.run(
            [sys.executable, "-c", NO_NUMPY_RECOMPUTE_PROBE],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "OK" in completed.stdout
