"""Tests for repro.costmodel.params (Table 2 statistics)."""

import pytest

from repro.costmodel.params import ClassStats, CostModelConfig, PathStatistics
from repro.errors import CostModelError
from repro.storage.sizes import SizeModel


class TestClassStats:
    def test_k_formula(self):
        # k = n * nin / d (Table 2).
        stats = ClassStats(objects=10_000, distinct=5_000, fanout=3)
        assert stats.k == pytest.approx(6.0)

    def test_k_single_valued(self):
        assert ClassStats(objects=200_000, distinct=20_000, fanout=1).k == 10.0

    def test_zero_distinct_only_for_empty_class(self):
        assert ClassStats(objects=0, distinct=0).k == 0.0
        with pytest.raises(CostModelError):
            ClassStats(objects=10, distinct=0)

    def test_negative_rejected(self):
        with pytest.raises(CostModelError):
            ClassStats(objects=-1, distinct=1)
        with pytest.raises(CostModelError):
            ClassStats(objects=1, distinct=-1)
        with pytest.raises(CostModelError):
            ClassStats(objects=1, distinct=1, fanout=-1)

    def test_distinct_cannot_exceed_incidences(self):
        with pytest.raises(CostModelError):
            ClassStats(objects=10, distinct=100, fanout=2)


class TestFigure7Statistics(object):
    """The Figure 7 numbers exercised through PathStatistics."""

    def test_members_per_position(self, fig7_stats):
        assert fig7_stats.members(1) == ("Person",)
        assert fig7_stats.members(2) == ("Vehicle", "Bus", "Truck")
        assert fig7_stats.nc(2) == 3

    def test_k_values(self, fig7_stats):
        assert fig7_stats.k(1, "Person") == pytest.approx(10.0)
        assert fig7_stats.k(2, "Vehicle") == pytest.approx(6.0)
        assert fig7_stats.k(2, "Bus") == pytest.approx(4.0)
        assert fig7_stats.k(3, "Company") == pytest.approx(4.0)
        assert fig7_stats.k(4, "Division") == pytest.approx(1.0)

    def test_sum_k(self, fig7_stats):
        assert fig7_stats.sum_k(2) == pytest.approx(14.0)

    def test_total_objects(self, fig7_stats):
        assert fig7_stats.total_objects(2) == 20_000

    def test_par_is_previous_level_fanin(self, fig7_stats):
        # par_{l} = Σ_j k_{l-1,j}.
        assert fig7_stats.par(2) == pytest.approx(10.0)
        assert fig7_stats.par(3) == pytest.approx(14.0)
        assert fig7_stats.par(1) == 0.0

    def test_mean_fanout_weighted(self, fig7_stats):
        # (10000*3 + 5000*2 + 5000*2) / 20000 = 2.5
        assert fig7_stats.mean_fanout(2) == pytest.approx(2.5)

    def test_distinct_union_capped_by_next_population(self, fig7_stats):
        # Level 2 distinct union: 5000+2500+2500 = 10000, but only 1000
        # companies exist.
        assert fig7_stats.distinct_union(2) == pytest.approx(1_000)

    def test_distinct_union_at_ending_level(self, fig7_stats):
        assert fig7_stats.distinct_union(4) == pytest.approx(1_000)

    def test_unknown_class_raises(self, fig7_stats):
        with pytest.raises(CostModelError):
            fig7_stats.n(1, "Vehicle")
        with pytest.raises(CostModelError):
            fig7_stats.stats_of("Nope")

    def test_missing_scope_class_rejected(self, pexa):
        with pytest.raises(CostModelError):
            PathStatistics(pexa, {"Person": ClassStats(10, 5)})

    def test_describe_mentions_classes(self, fig7_stats):
        text = fig7_stats.describe()
        for name in ("Person", "Vehicle", "Bus", "Truck", "Company", "Division"):
            assert name in text


class TestDerivedChains:
    def test_ninbar_at_own_level(self, fig7_stats):
        # nin-bar at the ending level is the class's own fanout.
        assert fig7_stats.ninbar(4, "Division", 4) == pytest.approx(1.0)

    def test_ninbar_chains_mean_fanouts(self, fig7_stats):
        # Person -> Vehicle level (mean 2.5): 1 * 2.5
        assert fig7_stats.ninbar(1, "Person", 2) == pytest.approx(2.5)
        # ... -> divisions (4) -> name (1): 1 * 2.5 * 4 * 1 = 10.
        assert fig7_stats.ninbar(1, "Person", 4) == pytest.approx(10.0)

    def test_ninbar_capped_by_distinct_values(self, pexa):
        per_class = {
            "Person": ClassStats(1000, 10, 50),
            "Vehicle": ClassStats(100, 10, 50),
            "Bus": ClassStats(0, 0, 0),
            "Truck": ClassStats(0, 0, 0),
            "Company": ClassStats(50, 10, 50),
            "Division": ClassStats(10, 5, 1),
        }
        stats = PathStatistics(pexa, per_class)
        # Chain would be 50*50*50 but only 5 distinct names exist.
        assert stats.ninbar(1, "Person", 4) == pytest.approx(5.0)

    def test_ninbar_position_bounds(self, fig7_stats):
        with pytest.raises(CostModelError):
            fig7_stats.ninbar(3, "Company", 2)

    def test_probe_keys_chain(self, fig7_stats):
        # Probing level 3 from the ending attribute: sum_k(4) = 1.
        assert fig7_stats.probe_keys(3, 4) == pytest.approx(1.0)
        # Level 2: sum_k(3) * sum_k(4) = 4.
        assert fig7_stats.probe_keys(2, 4) == pytest.approx(4.0)
        # Level 1: 14 * 4 * 1 = 56.
        assert fig7_stats.probe_keys(1, 4) == pytest.approx(56.0)

    def test_probe_keys_scales_with_probes(self, fig7_stats):
        assert fig7_stats.probe_keys(2, 4, probes=2.0) == pytest.approx(8.0)

    def test_noid_multiplies_k(self, fig7_stats):
        # noid at Person for the full path: k_Per * 56 = 560.
        assert fig7_stats.noid(1, "Person", 4) == pytest.approx(560.0)

    def test_noid_clamped_by_population(self, fig7_stats):
        assert fig7_stats.noid(4, "Division", 4, probes=10_000) <= 1_000

    def test_noid_hierarchy_sums_members(self, fig7_stats):
        total = sum(
            fig7_stats.noid(2, name, 4) for name in fig7_stats.members(2)
        )
        assert fig7_stats.noid_hierarchy(2, 4) == pytest.approx(total)

    def test_clamping_can_be_disabled(self, pexa):
        from repro.paper import FIGURE7_ROWS

        per_class = {
            name: ClassStats(objects=n, distinct=d, fanout=nin)
            for name, (n, d, nin, _l) in FIGURE7_ROWS.items()
        }
        config = CostModelConfig(clamp_cardinalities=False)
        stats = PathStatistics(pexa, per_class, config=config)
        assert stats.probe_keys(1, 4) == pytest.approx(56.0)


class TestOccupiedMembers:
    def test_single_member_hierarchy(self, fig7_stats):
        assert fig7_stats.occupied_members(3, 5.0) == pytest.approx(1.0)

    def test_zero_values(self, fig7_stats):
        assert fig7_stats.occupied_members(2, 0.0) == 0.0

    def test_bounded_by_member_count_and_values(self, fig7_stats):
        assert fig7_stats.occupied_members(2, 100.0) <= 3.0
        assert fig7_stats.occupied_members(2, 0.5) <= 0.5

    def test_grows_with_values(self, fig7_stats):
        small = fig7_stats.occupied_members(2, 1.0)
        large = fig7_stats.occupied_members(2, 10.0)
        assert large > small


class TestCostModelConfig:
    def test_with_sizes_copies(self):
        config = CostModelConfig()
        other = config.with_sizes(SizeModel(page_size=8192))
        assert other.sizes.page_size == 8192
        assert config.sizes.page_size == 4096

    def test_subpath_positions_validated(self, fig7_stats):
        assert list(fig7_stats.subpath_positions(2, 3)) == [2, 3]
        with pytest.raises(CostModelError):
            fig7_stats.subpath_positions(0, 3)
        with pytest.raises(CostModelError):
            fig7_stats.subpath_positions(3, 9)
