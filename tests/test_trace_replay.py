"""Tests for continuous replay and batched application (PR 5).

The load-bearing properties:

* at **every** re-advise point of a :class:`~repro.trace.ContinuousAdvisor`
  replay the emitted recommendation is bit-identical to a from-scratch
  ``advise()`` over the session's current inputs (Hypothesis-pinned over
  random regimes, windows and thresholds);
* :meth:`~repro.whatif.AdvisorSession.apply_many` leaves the session in
  exactly the state a one-by-one ``apply`` sequence produces — one
  recompute, same matrix, same answers;
* :func:`~repro.whatif.perturbation.perturbations_between` reproduces
  any reachable ``(stats, load)`` pair value for value.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_matrix import CostMatrix
from repro.costmodel.params import ClassStats, PathStatistics
from repro.errors import OptimizerError
from repro.search import get_strategy
from repro.synth import LevelSpec, linear_path_schema
from repro.trace import ContinuousAdvisor, generate_trace
from repro.whatif import AdvisorSession, MultiPathSession, Perturbation
from repro.whatif.perturbation import perturbations_between
from repro.workload.load import LoadDistribution, LoadTriplet


def make_world(length=4, subclasses=(0, 1, 0, 0), prefix="L", objects=20_000):
    levels = [
        LevelSpec(f"{prefix}{i}", subclasses=subclasses[i % len(subclasses)])
        for i in range(length)
    ]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    remaining = objects
    for position in range(1, length + 1):
        for member in path.hierarchy_at(position):
            per_class[member] = ClassStats(
                objects=remaining, distinct=max(10, remaining // 6), fanout=1.0
            )
        remaining = max(50, remaining // 5)
    stats = PathStatistics(path, per_class)
    load = LoadDistribution.uniform(path, query=0.3, insert=0.1, delete=0.05)
    return stats, load


def fresh_result(stats, load, strategy="dynamic_program"):
    return get_strategy(strategy).search(CostMatrix.compute(stats, load))


class TestApplyMany:
    def test_empty_batch_rejected(self):
        stats, load = make_world()
        session = AdvisorSession(stats, load)
        with pytest.raises(OptimizerError, match="at least one"):
            session.apply_many([])

    def test_single_report_counts_one_recompute(self):
        stats, load = make_world()
        session = AdvisorSession(stats, load)
        batch = [
            Perturbation("L1", "insert", "scale", 2.0),
            Perturbation("L2", "delete", "scale", 3.0),
            Perturbation("L0", "objects", "scale", 1.5),
        ]
        report = session.apply_many(batch)
        assert session.applied_steps == 1
        assert session.batched_steps == 1
        assert report.dirty_count > 0

    def test_batched_state_matches_sequential(self):
        stats, load = make_world()
        batched = AdvisorSession(stats, load)
        sequential = AdvisorSession(stats, load)
        batch = [
            Perturbation("L1", "query", "scale", 2.0),
            Perturbation("L3", "insert", "set", 0.7),
            Perturbation("L2", "delete", "scale", 0.5),
            Perturbation("L3", "distinct", "scale", 2.0),
        ]
        batched.apply_many(batch)
        for perturbation in batch:
            sequential.perturb(perturbation)
        for start, end in batched.matrix.rows():
            for organization in batched.matrix.organizations:
                assert batched.matrix.cost(
                    start, end, organization
                ) == sequential.matrix.cost(start, end, organization)
        batched_answer = batched.advise()
        sequential_answer = sequential.advise()
        assert batched_answer.cost == sequential_answer.cost
        assert batched_answer.configuration == sequential_answer.configuration

    def test_batched_answer_matches_fresh(self):
        stats, load = make_world()
        session = AdvisorSession(stats, load)
        session.apply_many(
            [
                Perturbation("L0", "query", "scale", 3.0),
                Perturbation("L3", "insert", "scale", 4.0),
            ]
        )
        fresh = fresh_result(session.stats, session.load)
        result = session.advise()
        assert result.cost == fresh.cost
        assert result.configuration == fresh.configuration

    def test_multipath_apply_many(self):
        first = make_world(prefix="A")
        second = make_world(length=5, subclasses=(0, 0, 2, 0, 0), prefix="B")
        joint = MultiPathSession(
            [AdvisorSession(*first), AdvisorSession(*second)]
        )
        untouched_version = joint.sessions[1].version
        reports = joint.apply_many(
            {0: [Perturbation("A1", "insert", "scale", 2.0)]}
        )
        assert set(reports) == {0}
        assert joint.sessions[0].batched_steps == 1
        assert joint.sessions[1].version == untouched_version
        with pytest.raises(OptimizerError, match="out of range"):
            joint.apply_many({7: [Perturbation("A1", "insert", "scale", 2.0)]})


class TestPerturbationsBetween:
    def test_reproduces_target_values(self):
        stats, load = make_world()
        target_load = LoadDistribution(
            stats.path,
            {
                name: LoadTriplet(
                    query=triplet.query * 2.0,
                    insert=0.0,
                    delete=triplet.delete,
                )
                for name, triplet in load.items()
            },
        )
        per_class = {
            member: stats.stats_of(member)
            for position in range(1, stats.length + 1)
            for member in stats.members(position)
        }
        per_class["L1"] = ClassStats(objects=123.0, distinct=45.0, fanout=1.0)
        target_stats = PathStatistics(stats.path, per_class, stats.config)
        deltas = perturbations_between(stats, load, target_stats, target_load)
        current_stats, current_load = stats, load
        for perturbation in deltas:
            current_stats, current_load = perturbation.apply(
                current_stats, current_load
            )
        for name, triplet in target_load.items():
            assert current_load.triplet(name) == triplet
        for member in per_class:
            assert current_stats.stats_of(member) == target_stats.stats_of(member)

    def test_shrinking_objects_below_old_distinct_stays_applicable(self):
        stats, load = make_world()
        per_class = {
            member: stats.stats_of(member)
            for position in range(1, stats.length + 1)
            for member in stats.members(position)
        }
        # New objects drops below the old distinct count: applying the
        # objects delta first would violate validation, so the emission
        # order must move distinct first.
        per_class["L0"] = ClassStats(objects=20.0, distinct=5.0, fanout=1.0)
        target_stats = PathStatistics(stats.path, per_class, stats.config)
        deltas = perturbations_between(stats, load, target_stats, load)
        current_stats, current_load = stats, load
        for perturbation in deltas:
            current_stats, current_load = perturbation.apply(
                current_stats, current_load
            )
        assert current_stats.stats_of("L0") == per_class["L0"]

    def test_identical_pairs_yield_no_deltas(self):
        stats, load = make_world()
        assert perturbations_between(stats, load, stats, load) == []

    def test_different_paths_rejected(self):
        stats, load = make_world()
        other_stats, _other_load = make_world(prefix="Z")
        with pytest.raises(OptimizerError, match="different paths"):
            perturbations_between(stats, load, other_stats, load)


class TestContinuousAdvisor:
    def test_baseline_is_step_zero(self):
        stats, load = make_world()
        advisor = ContinuousAdvisor(stats, load, window=50)
        assert len(advisor.steps) == 1
        baseline = advisor.steps[0]
        fresh = fresh_result(stats, load, "incremental_dynamic_program")
        assert baseline.cost == fresh.cost
        assert baseline.result.configuration == fresh.configuration
        assert advisor.readvise_count == 0

    def test_every_readvise_matches_fresh_pipeline(self):
        stats, load = make_world()
        trace = generate_trace(stats.path, "mixed_drift", 600, seed=11)
        advisor = ContinuousAdvisor(
            stats, load, window=100, slide=50, threshold=0.15, hysteresis=1
        )
        fired = 0
        for event in trace:
            step = advisor.push(event)
            if step is None:
                continue
            fired += 1
            fresh = fresh_result(advisor.session.stats, advisor.session.load)
            assert step.cost == fresh.cost
            assert step.result.configuration == fresh.configuration
            assert step.perturbations > 0
            assert step.report is not None
        assert fired > 0
        assert advisor.readvise_count == fired
        assert "re-advises" in advisor.describe()

    def test_flush_applies_pending_delta(self):
        stats, load = make_world()
        trace = generate_trace(stats.path, "edge_drift", 220, seed=2)
        # A threshold no window can cross: everything is held.
        advisor = ContinuousAdvisor(
            stats, load, window=100, threshold=1e12, hysteresis=1
        )
        advisor.process(trace)
        assert advisor.readvise_count == 0
        assert advisor.windows_held == advisor.windows_seen > 0
        step = advisor.flush()
        assert step is not None and step.forced
        fresh = fresh_result(advisor.session.stats, advisor.session.load)
        assert step.cost == fresh.cost
        # Nothing pending afterwards.
        assert advisor.flush() is None

    def test_replay_convenience_returns_full_timeline(self):
        stats, load = make_world()
        trace = generate_trace(stats.path, "bursty", 400, seed=5)
        advisor = ContinuousAdvisor(
            stats, load, window=80, threshold=0.2, hysteresis=2
        )
        steps = advisor.replay(trace)
        assert steps is advisor.steps
        assert steps[0].window is None
        assert advisor.events_seen == 400

    def test_held_windows_do_not_touch_the_session(self):
        stats, load = make_world()
        trace = generate_trace(stats.path, "stationary", 300, seed=4)
        advisor = ContinuousAdvisor(
            stats, load, window=60, threshold=1e12, hysteresis=1
        )
        version_before = advisor.session.version
        advisor.process(trace)
        assert advisor.session.version == version_before
        assert advisor.session.applied_steps == 0


@st.composite
def replay_worlds(draw):
    length = draw(st.integers(min_value=2, max_value=4))
    subclasses = tuple(
        draw(st.integers(min_value=0, max_value=1)) for _ in range(length)
    )
    stats, load = make_world(length=length, subclasses=subclasses)
    regime = draw(st.sampled_from(["stationary", "edge_drift", "mixed_drift", "bursty"]))
    seed = draw(st.integers(min_value=0, max_value=1000))
    window = draw(st.sampled_from([40, 60, 100]))
    threshold = draw(st.sampled_from([0.05, 0.2, 0.5]))
    hysteresis = draw(st.integers(min_value=1, max_value=2))
    track = draw(st.booleans())
    return stats, load, regime, seed, window, threshold, hysteresis, track


class TestReplayEqualsFreshAdvise:
    @given(world=replay_worlds())
    @settings(max_examples=15, deadline=None)
    def test_replay_pins_to_from_scratch_advise(self, world):
        """The tentpole invariant: every re-advise point of a continuous
        replay is bit-identical to a from-scratch advise on the session's
        current inputs — including the forced end-of-trace flush."""
        (
            stats,
            load,
            regime,
            seed,
            window,
            threshold,
            hysteresis,
            track,
        ) = world
        trace = generate_trace(stats.path, regime, 4 * window, seed=seed)
        advisor = ContinuousAdvisor(
            stats,
            load,
            window=window,
            threshold=threshold,
            hysteresis=hysteresis,
            track_statistics=track,
        )
        for event in trace:
            step = advisor.push(event)
            if step is None:
                continue
            fresh = fresh_result(advisor.session.stats, advisor.session.load)
            assert step.cost == fresh.cost
            assert step.result.configuration == fresh.configuration
        step = advisor.flush()
        if step is not None:
            fresh = fresh_result(advisor.session.stats, advisor.session.load)
            assert step.cost == fresh.cost
            assert step.result.configuration == fresh.configuration
