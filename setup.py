"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build the editable
wheel. This shim enables the legacy path::

    python setup.py develop

Metadata lives in ``pyproject.toml``; this file only triggers setup().
"""

from setuptools import setup

setup()
