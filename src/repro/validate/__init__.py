"""Analytic-model validation against the operational simulator.

The paper's evaluation is purely analytic. This package adds the check the
paper could not run: build a database whose statistics match the model
inputs, execute real queries/inserts/deletes through the operational
indexes, count actual page accesses, and compare against the Section 3
formulas.
"""

from repro.validate.compare import ValidationRow, validate_configuration

__all__ = ["ValidationRow", "validate_configuration"]
