"""Analytic-model validation against the operational simulator.

The paper's evaluation is purely analytic. This package adds the check the
paper could not run: build a database whose statistics match the model
inputs, execute real queries/inserts/deletes through the operational
indexes, count actual page accesses, and compare against the Section 3
formulas — both the per-operation costs and the ``storage_pages`` space
estimates.
"""

from repro.validate.compare import (
    StorageRow,
    ValidationRow,
    render_storage,
    render_validation,
    validate_configuration,
    validate_storage,
)

__all__ = [
    "StorageRow",
    "ValidationRow",
    "render_storage",
    "render_validation",
    "validate_configuration",
    "validate_storage",
]
