"""Measured-vs-analytic comparison harness.

:func:`validate_configuration` executes sampled operations through the
operational indexes of a configuration — materialized on the backend's
:class:`~repro.backend.tracker.PageAccessTracker`, so the measured side
is the same owner-attributed page accounting the replay and calibration
machinery uses — and reports, per ``(operation, class)``, the measured
mean page accesses next to the analytic expectation from the Section 3
cost models. :func:`validate_storage` does the same for space: each
part's ``storage_pages`` estimate against the pages its structures
actually hold.

Both sides count logical page fetches and rewrites; the analytic side is
an *expectation* over uniformly distributed values while the measured side
samples concrete ones, so ratios within a small factor — not equality —
are the success criterion (see EXPERIMENTS.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.backend.materialize import MaterializedConfiguration
from repro.core.configuration import IndexConfiguration
from repro.core.evaluation import per_class_analytic_costs
from repro.costmodel.params import CostModelConfig, PathStatistics
from repro.costmodel.subpath import build_model
from repro.errors import ReproError
from repro.indexes.manager import part_label
from repro.model.objects import OID, OODatabase
from repro.model.path import Path
from repro.synth.stats import derive_path_statistics


@dataclass(frozen=True)
class ValidationRow:
    """One measured-vs-analytic comparison."""

    operation: str
    class_name: str
    analytic: float
    measured: float
    samples: int

    @property
    def ratio(self) -> float:
        """measured / analytic (``inf`` when the analytic cost is zero)."""
        if self.analytic == 0:
            return float("inf") if self.measured else 1.0
        return self.measured / self.analytic


def _ending_values(database: OODatabase, path: Path) -> list[object]:
    values: set[object] = set()
    ending = path.attribute_at(path.length)
    for member in path.hierarchy_at(path.length):
        for instance in database.extent(member):
            values.update(instance.value_list(ending))
    return sorted(values, key=repr)


def validate_configuration(
    database: OODatabase,
    path: Path,
    configuration: IndexConfiguration,
    samples: int = 10,
    seed: int = 0,
    config: CostModelConfig | None = None,
    stats: PathStatistics | None = None,
    include_updates: bool = True,
) -> list[ValidationRow]:
    """Compare analytic and measured page accesses for one configuration.

    Parameters
    ----------
    database:
        A populated database (the operational side mutates it for the
        update samples; pass a copy if that matters).
    path, configuration:
        What to index and how.
    samples:
        Operations sampled per (operation, class) pair.
    config:
        Physical constants (shared by both sides).
    stats:
        Analytic statistics; derived from the database when omitted —
        which is the honest comparison.
    include_updates:
        Also validate inserts and deletes (mutates the database).
    """
    config = config or CostModelConfig()
    stats = stats or derive_path_statistics(database, path, config=config)
    analytic = per_class_analytic_costs(stats, configuration)
    backend = MaterializedConfiguration(
        database, path, configuration, sizes=config.sizes
    )
    rng = random.Random(seed)
    values = _ending_values(database, path)
    if not values:
        raise ReproError("database has no ending-attribute values to probe")

    rows: list[ValidationRow] = []
    for position in range(1, path.length + 1):
        for member in path.hierarchy_at(position):
            if database.extent_size(member) == 0:
                continue
            probe_values = [values[rng.randrange(len(values))] for _ in range(samples)]
            total = 0
            for value in probe_values:
                total += backend.query(value, member).io.total
            rows.append(
                ValidationRow(
                    operation="query",
                    class_name=member,
                    analytic=analytic[(position, member)]["query"],
                    measured=total / samples,
                    samples=samples,
                )
            )
    if include_updates:
        rows.extend(
            _validate_updates(
                database, path, backend, analytic, rng, samples
            )
        )
    return rows


def _validate_updates(
    database: OODatabase,
    path: Path,
    backend: MaterializedConfiguration,
    analytic: dict[tuple[int, str], dict[str, float]],
    rng: random.Random,
    samples: int,
) -> list[ValidationRow]:
    rows: list[ValidationRow] = []
    schema = database.schema
    for position in range(1, path.length + 1):
        for member in path.hierarchy_at(position):
            extent = list(database.extent(member))
            if len(extent) <= samples:
                continue
            # --- deletes: random existing objects (measured first so the
            # inserts below do not skew the sample towards fresh objects).
            delete_total = 0
            delete_count = 0
            for _ in range(samples):
                extent = list(database.extent(member))
                victim = extent[rng.randrange(len(extent))]
                delete_total += backend.delete(victim.oid).io.total
                delete_count += 1
            rows.append(
                ValidationRow(
                    operation="delete",
                    class_name=member,
                    analytic=analytic[(position, member)]["delete"],
                    measured=delete_total / max(delete_count, 1),
                    samples=delete_count,
                )
            )
            # --- inserts: clones of random surviving objects.
            insert_total = 0
            insert_count = 0
            for _ in range(samples):
                survivors = list(database.extent(member))
                template = survivors[rng.randrange(len(survivors))]
                kwargs: dict[str, object] = {}
                usable = True
                for name, definition in schema.all_attributes(member).items():
                    value = template.values[name]
                    if isinstance(value, list):
                        live = [
                            v
                            for v in value
                            if not isinstance(v, OID) or database.contains(v)
                        ]
                        if not live:
                            usable = False
                            break
                        kwargs[name] = live
                    elif isinstance(value, OID) and not database.contains(value):
                        usable = False
                        break
                    else:
                        kwargs[name] = value
                if not usable:
                    continue
                insert_total += backend.insert(member, **kwargs).io.total
                insert_count += 1
            if insert_count:
                rows.append(
                    ValidationRow(
                        operation="insert",
                        class_name=member,
                        analytic=analytic[(position, member)]["insert"],
                        measured=insert_total / insert_count,
                        samples=insert_count,
                    )
                )
    return rows


def render_validation(rows: list[ValidationRow]) -> str:
    """ASCII table of the comparison."""
    header = f"{'operation':<10} {'class':<16} {'analytic':>10} {'measured':>10} {'ratio':>7}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.operation:<10} {row.class_name:<16} "
            f"{row.analytic:>10.2f} {row.measured:>10.2f} {row.ratio:>7.2f}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class StorageRow:
    """One part's analytic vs materialized page footprint."""

    label: str
    organization: str
    analytic: float
    measured: int

    @property
    def ratio(self) -> float:
        """measured / analytic (``inf`` when the estimate is zero)."""
        if self.analytic == 0:
            return float("inf") if self.measured else 1.0
        return self.measured / self.analytic


def validate_storage(
    database: OODatabase,
    path: Path,
    configuration: IndexConfiguration,
    config: CostModelConfig | None = None,
    stats: PathStatistics | None = None,
    layout: str = "btree",
) -> list[StorageRow]:
    """Compare each part's ``storage_pages`` estimate to real pages held.

    The configuration is materialized on a tracker, which attributes
    every allocated page to its owning part (or heap extent); the
    returned rows pair that live page count with the Section 3.4 storage
    estimate of the part's model. Because ownership is keyed by
    :func:`~repro.indexes.manager.part_label`, two configurations
    sharing a subpath assignment (the shared-NIX-primary case of the
    pruning lemmas) report under the same label and can be compared
    directly.
    """
    config = config or CostModelConfig()
    stats = stats or derive_path_statistics(database, path, config=config)
    backend = MaterializedConfiguration(
        database, path, configuration, sizes=config.sizes, layout=layout
    )
    live = backend.storage_by_owner()
    rows: list[StorageRow] = []
    for part in configuration.assignments:
        model = build_model(stats, part.start, part.end, part.organization)
        label = part_label(part)
        rows.append(
            StorageRow(
                label=label,
                organization=part.organization.name,
                analytic=model.storage_pages(),
                measured=live.get(label, 0),
            )
        )
    return rows


def render_storage(rows: list[StorageRow]) -> str:
    """ASCII table of the storage comparison."""
    header = (
        f"{'part':<18} {'org':<5} {'analytic':>10} {'measured':>9} {'ratio':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.label:<18} {row.organization:<5} "
            f"{row.analytic:>10.1f} {row.measured:>9} {row.ratio:>7.2f}"
        )
    return "\n".join(lines)
