"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing schema problems from cost-model or optimizer problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema definition is inconsistent (unknown class, bad domain, ...)."""


class PathError(ReproError):
    """A path expression is malformed or does not fit the schema."""


class StorageError(ReproError):
    """The storage simulator was used incorrectly (bad page, bad record)."""


class IndexError_(ReproError):
    """An operational index operation failed.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class CostModelError(ReproError):
    """Cost-model inputs are invalid (negative cardinality, zero page size)."""


class WorkloadError(ReproError):
    """A workload/load-distribution is malformed for the given path."""


class OptimizerError(ReproError):
    """The configuration optimizer was given inconsistent inputs."""


class TraceError(ReproError):
    """An operation trace is malformed (bad event, unreadable JSONL, ...)."""


class ResilienceError(ReproError):
    """A resilience-layer operation (checkpoint, deadline, retry) failed."""


class DeadlineExceeded(ResilienceError):
    """A cooperative search gave up because its deadline expired.

    Raised from the deadline checkpoints inside the search strategies;
    callers holding a degradation ladder (``AdvisorSession.advise``,
    ``repro.resilience.degrade``) catch it and fall to the next rung.
    """


class CheckpointError(ResilienceError):
    """A checkpoint file is unreadable, torn, or inconsistent."""
