"""Random workload generation for sweeps and property tests.

The generator draws per-class frequency triplets with a controllable
query/update mix. All randomness flows through a seeded
:class:`random.Random` so every benchmark run is reproducible.
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError
from repro.model.path import Path
from repro.workload.load import LoadDistribution, LoadTriplet


class WorkloadGenerator:
    """Draws reproducible random workloads for a path.

    Parameters
    ----------
    seed:
        Seed for the internal PRNG.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def mixed(
        self,
        path: Path,
        query_weight: float = 1.0,
        update_weight: float = 1.0,
        total: float = 1.0,
    ) -> LoadDistribution:
        """A random workload with a given query-to-update weight ratio.

        The ``total`` frequency mass is split across scope classes with
        random proportions; within a class, the query share follows
        ``query_weight : update_weight`` (updates split evenly between
        inserts and deletes, perturbed ±20%).
        """
        if query_weight < 0 or update_weight < 0:
            raise WorkloadError("weights must be non-negative")
        if query_weight + update_weight == 0:
            raise WorkloadError("at least one weight must be positive")
        scope = path.scope
        raw = [self._rng.random() + 0.05 for _ in scope]
        norm = sum(raw)
        triplets: dict[str, LoadTriplet] = {}
        for name, weight in zip(scope, raw):
            mass = total * weight / norm
            query_share = query_weight / (query_weight + update_weight)
            queries = mass * query_share
            updates = mass - queries
            split = 0.5 * (1.0 + self._rng.uniform(-0.2, 0.2))
            triplets[name] = LoadTriplet(
                query=queries,
                insert=updates * split,
                delete=updates * (1.0 - split),
            )
        return LoadDistribution(path, triplets)

    def query_only(self, path: Path, total: float = 1.0) -> LoadDistribution:
        """A pure-query workload (no maintenance)."""
        return self.mixed(path, query_weight=1.0, update_weight=0.0, total=total)

    def update_only(self, path: Path, total: float = 1.0) -> LoadDistribution:
        """A pure-update workload (no queries)."""
        return self.mixed(path, query_weight=0.0, update_weight=1.0, total=total)

    def skewed_to_start(self, path: Path, total: float = 1.0) -> LoadDistribution:
        """Queries concentrated on the starting class (the common case).

        The paper's motivating query — "retrieve the persons who own a bus
        manufactured by Fiat" — targets the starting class; this generator
        puts 80% of the query mass there and spreads the rest.
        """
        scope = path.scope
        start = path.starting_class
        triplets: dict[str, LoadTriplet] = {}
        others = [name for name in scope if name != start]
        for name in scope:
            if name == start:
                queries = 0.8 * total
            else:
                queries = 0.2 * total / max(len(others), 1)
            updates = queries * self._rng.uniform(0.0, 0.3)
            triplets[name] = LoadTriplet(
                query=queries, insert=updates / 2, delete=updates / 2
            )
        return LoadDistribution(path, triplets)
