"""Load distributions over a path's scope (Section 3.2).

``LD_{A_n}(scope(P)) = {(α_{1,1}, β_{1,1}, γ_{1,1}), ...}``: for every
class of the scope, the frequency of queries against the ending attribute
with respect to that class, and the frequencies of insertions and
deletions on the class.

The subpath rule: for a subpath whose starting class equals the path's
starting class, the distribution restricts unchanged. Otherwise, the query
frequencies of all classes *before* the subpath are added to the subpath's
starting class ("the processing of queries with regard to a class in
``scope(C1.A1...A_{k-1})`` against ``A_n`` entails a processing of ``S_k``
as well"); following the paper's formula the mass lands on the hierarchy
root (member 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.model.path import Path


@dataclass(frozen=True)
class LoadTriplet:
    """Frequencies ``(α, β, γ)`` for one class.

    ``query`` is the frequency of queries against the path's ending
    attribute with respect to the class; ``insert``/``delete`` are object
    insertion/deletion frequencies on the class.
    """

    query: float = 0.0
    insert: float = 0.0
    delete: float = 0.0

    def __post_init__(self) -> None:
        for name in ("query", "insert", "delete"):
            value = getattr(self, name)
            if value < 0:
                raise WorkloadError(f"negative {name} frequency: {value}")

    @property
    def total(self) -> float:
        """Sum of the three frequencies."""
        return self.query + self.insert + self.delete

    def scaled(self, factor: float) -> "LoadTriplet":
        """All three frequencies multiplied by ``factor``."""
        if factor < 0:
            raise WorkloadError(f"negative scale factor: {factor}")
        return LoadTriplet(
            query=self.query * factor,
            insert=self.insert * factor,
            delete=self.delete * factor,
        )

    def with_query(self, query: float) -> "LoadTriplet":
        """Copy with a different query frequency."""
        return LoadTriplet(query=query, insert=self.insert, delete=self.delete)


class LoadDistribution:
    """The workload over every class in a path's scope.

    Parameters
    ----------
    path:
        The (full) path whose scope the distribution covers.
    triplets:
        ``{class name: LoadTriplet}``. Classes of the scope that are
        omitted get an all-zero triplet.
    """

    def __init__(self, path: Path, triplets: dict[str, LoadTriplet]) -> None:
        self.path = path
        scope = set(path.scope)
        unknown = set(triplets) - scope
        if unknown:
            raise WorkloadError(
                f"triplets for classes outside scope({path}): {sorted(unknown)}"
            )
        self._triplets = {
            name: triplets.get(name, LoadTriplet()) for name in path.scope
        }
        # Lazy per-position caches for the subpath derivation: the
        # hierarchy tuples and the running prefix of upstream query mass
        # (position k holds the summed query frequency of positions 1..k,
        # accumulated in the same order as the direct loop).
        self._hierarchies: dict[int, tuple[str, ...]] = {}
        self._query_prefix: list[float] | None = None

    def _hierarchy_at(self, position: int) -> tuple[str, ...]:
        cached = self._hierarchies.get(position)
        if cached is None:
            cached = tuple(self.path.hierarchy_at(position))
            self._hierarchies[position] = cached
        return cached

    def _upstream_query(self, start: int) -> float:
        """Summed query frequency of all classes at positions ``1..start-1``."""
        if self._query_prefix is None:
            prefix = [0.0]
            running = 0.0
            for position in range(1, self.path.length + 1):
                for member in self._hierarchy_at(position):
                    running += self._triplets[member].query
                prefix.append(running)
            self._query_prefix = prefix
        return self._query_prefix[start - 1]

    @classmethod
    def uniform(
        cls,
        path: Path,
        query: float = 1.0,
        insert: float = 0.0,
        delete: float = 0.0,
    ) -> "LoadDistribution":
        """The same triplet on every scope class."""
        triplet = LoadTriplet(query=query, insert=insert, delete=delete)
        return cls(path, {name: triplet for name in path.scope})

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def triplet(self, class_name: str) -> LoadTriplet:
        """The triplet of one scope class."""
        try:
            return self._triplets[class_name]
        except KeyError:
            raise WorkloadError(
                f"class {class_name!r} is not in scope({self.path})"
            ) from None

    def items(self) -> list[tuple[str, LoadTriplet]]:
        """``(class, triplet)`` pairs in scope order."""
        return [(name, self._triplets[name]) for name in self.path.scope]

    def total_frequency(self) -> float:
        """Sum of all frequencies over all classes."""
        return sum(t.total for t in self._triplets.values())

    def scaled(self, factor: float) -> "LoadDistribution":
        """Every triplet multiplied by ``factor``."""
        return LoadDistribution(
            self.path,
            {name: triplet.scaled(factor) for name, triplet in self._triplets.items()},
        )

    # ------------------------------------------------------------------
    # Section 3.2: subpath derivation
    # ------------------------------------------------------------------
    def derived_for_subpath(self, start: int, end: int) -> dict[str, LoadTriplet]:
        """The load on subpath ``S_{start,end}`` derived from this load.

        Returns triplets for every class in the subpath's scope. When
        ``start > 1`` the query frequencies of all classes at positions
        ``1..start-1`` (including their subclasses) are added to the
        subpath's starting class (the hierarchy root member).
        """
        if not 1 <= start <= end <= self.path.length:
            raise WorkloadError(
                f"subpath {start}..{end} out of range for {self.path}"
            )
        derived: dict[str, LoadTriplet] = {}
        for position in range(start, end + 1):
            for member in self._hierarchy_at(position):
                derived[member] = self._triplets[member]
        if start > 1:
            upstream = self._upstream_query(start)
            root = self.path.class_at(start)
            triplet = derived[root]
            derived[root] = triplet.with_query(triplet.query + upstream)
        return derived

    def describe(self) -> str:
        """Figure 7-style rendering of the distribution."""
        lines = [f"load on {self.path}:"]
        for name, triplet in self.items():
            lines.append(
                f"  {name}: ({triplet.query:g}, {triplet.insert:g}, "
                f"{triplet.delete:g})"
            )
        return "\n".join(lines)
