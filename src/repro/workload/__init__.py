"""Workload models (Section 3.2 of the paper).

The load on a path is a distribution over the classes of its scope: for
every class a triplet ``(alpha, beta, gamma)`` of query, insert and delete
frequencies. :mod:`~repro.workload.load` implements the distribution and
the paper's subpath-derivation rule; :mod:`~repro.workload.generator`
produces random workloads for the sweep benchmarks.
"""

from repro.workload.generator import WorkloadGenerator
from repro.workload.load import LoadDistribution, LoadTriplet

__all__ = ["LoadDistribution", "LoadTriplet", "WorkloadGenerator"]
