"""The ``Cost_Matrix`` and ``Min_Cost`` procedures (Section 5).

``Cost_Matrix`` computes the processing cost of every one of the
``n(n+1)/2`` contiguous subpaths with every index organization and stores
them in a matrix whose rows are subpaths and whose columns are
organizations (Figure 6). ``Min_Cost`` underlines the minimum of each row
— the best organization for each subpath in isolation.

A matrix can also be constructed from literal values
(:meth:`CostMatrix.from_values`), which is how the Figure 6 hypothetical
matrix and its walkthrough are reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.params import PathStatistics
from repro.costmodel.subpath import SubpathCost, subpath_processing_cost
from repro.errors import OptimizerError
from repro.organizations import (
    CONFIGURABLE_ORGANIZATIONS,
    EXTENDED_ORGANIZATIONS,
    IndexOrganization,
)
from repro.workload.load import LoadDistribution


@dataclass(frozen=True)
class RowMinimum:
    """The underlined entry of one matrix row."""

    cost: float
    organization: IndexOrganization


class CostMatrix:
    """Subpath × organization processing costs.

    Rows are addressed by 1-based inclusive bounds ``(start, end)``; the
    row order of :meth:`rows` matches Figure 6 (by start, then end).
    """

    def __init__(
        self,
        length: int,
        organizations: tuple[IndexOrganization, ...],
        entries: dict[tuple[int, int], dict[IndexOrganization, float]],
        breakdowns: dict[tuple[int, int], dict[IndexOrganization, SubpathCost]]
        | None = None,
    ) -> None:
        if length < 1:
            raise OptimizerError("path length must be at least 1")
        if not organizations:
            raise OptimizerError("at least one organization is required")
        self.length = length
        self.organizations = tuple(organizations)
        self._entries = entries
        self._breakdowns = breakdowns or {}
        for start in range(1, length + 1):
            for end in range(start, length + 1):
                row = entries.get((start, end))
                if row is None:
                    raise OptimizerError(f"missing matrix row ({start},{end})")
                for organization in organizations:
                    if organization not in row:
                        raise OptimizerError(
                            f"row ({start},{end}) missing {organization}"
                        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def compute(
        cls,
        stats: PathStatistics,
        load: LoadDistribution,
        organizations: tuple[IndexOrganization, ...] = CONFIGURABLE_ORGANIZATIONS,
        include_noindex: bool = False,
        range_selectivity: float | None = None,
    ) -> "CostMatrix":
        """The ``Cost_Matrix`` procedure over the analytic cost model.

        ``range_selectivity`` switches the workload's queries from
        equality to range predicates with the given selectivity.
        """
        if include_noindex and IndexOrganization.NONE not in organizations:
            organizations = tuple(EXTENDED_ORGANIZATIONS)
        entries: dict[tuple[int, int], dict[IndexOrganization, float]] = {}
        breakdowns: dict[tuple[int, int], dict[IndexOrganization, SubpathCost]] = {}
        length = stats.length
        for start in range(1, length + 1):
            for end in range(start, length + 1):
                row: dict[IndexOrganization, float] = {}
                row_breakdown: dict[IndexOrganization, SubpathCost] = {}
                for organization in organizations:
                    cost = subpath_processing_cost(
                        stats,
                        load,
                        start,
                        end,
                        organization,
                        range_selectivity=range_selectivity,
                    )
                    row[organization] = cost.total
                    row_breakdown[organization] = cost
                entries[(start, end)] = row
                breakdowns[(start, end)] = row_breakdown
        return cls(length, organizations, entries, breakdowns)

    @classmethod
    def from_values(
        cls,
        length: int,
        values: dict[tuple[int, int], dict[IndexOrganization, float]],
    ) -> "CostMatrix":
        """A matrix from literal costs (e.g. the Figure 6 hypothetical)."""
        organizations = tuple(next(iter(values.values())).keys())
        return cls(length, organizations, values)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def cost(self, start: int, end: int, organization: IndexOrganization) -> float:
        """The processing cost of one subpath with one organization."""
        self._check_bounds(start, end)
        try:
            return self._entries[(start, end)][organization]
        except KeyError:
            raise OptimizerError(
                f"no entry for ({start},{end}) with {organization}"
            ) from None

    def breakdown(
        self, start: int, end: int, organization: IndexOrganization
    ) -> SubpathCost | None:
        """The component breakdown, when the matrix was computed (not literal)."""
        return self._breakdowns.get((start, end), {}).get(organization)

    def min_cost(self, start: int, end: int) -> RowMinimum:
        """``Min_Cost``: the underlined (minimal) entry of one row."""
        self._check_bounds(start, end)
        row = self._entries[(start, end)]
        best = min(self.organizations, key=lambda org: row[org])
        return RowMinimum(cost=row[best], organization=best)

    def rows(self) -> list[tuple[int, int]]:
        """Row coordinates in Figure 6 order."""
        return [
            (start, end)
            for start in range(1, self.length + 1)
            for end in range(start, self.length + 1)
        ]

    def row_count(self) -> int:
        """``n(n+1)/2``."""
        return self.length * (self.length + 1) // 2

    def entry_count(self) -> int:
        """The matrix size the paper quotes: ``|organizations| · n(n+1)/2``."""
        return len(self.organizations) * self.row_count()

    def _check_bounds(self, start: int, end: int) -> None:
        if not 1 <= start <= end <= self.length:
            raise OptimizerError(
                f"subpath ({start},{end}) out of range for length {self.length}"
            )

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self, path=None, precision: int = 2) -> str:
        """Figure 6 / Figure 8 style ASCII rendering with minima marked."""
        header = ["subpath"] + [str(org) for org in self.organizations]
        lines = []
        for start, end in self.rows():
            label = (
                str(path.subpath(start, end)) if path is not None else f"S[{start},{end}]"
            )
            minimum = self.min_cost(start, end)
            cells = [label]
            for organization in self.organizations:
                value = self._entries[(start, end)][organization]
                text = f"{value:.{precision}f}"
                if organization is minimum.organization:
                    text = f"*{text}*"
                cells.append(text)
            lines.append(cells)
        widths = [
            max(len(row[i]) for row in [header, *lines]) for i in range(len(header))
        ]
        def fmt(row: list[str]) -> str:
            return "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
        return "\n".join([fmt(header), separator, *(fmt(row) for row in lines)])
