"""The ``Cost_Matrix`` and ``Min_Cost`` procedures (Section 5).

``Cost_Matrix`` computes the processing cost of every one of the
``n(n+1)/2`` contiguous subpaths with every index organization and stores
them in a matrix whose rows are subpaths and whose columns are
organizations (Figure 6). ``Min_Cost`` underlines the minimum of each row
— the best organization for each subpath in isolation.

Storage is a flat dense array indexed by ``(row_index(start, end),
org_index)`` with the row minima precomputed at construction, so every
search strategy's inner loop (``min_cost``) is an O(1) array read instead
of a dict-of-dicts walk plus a ``min()`` scan.

A matrix can also be constructed from literal values
(:meth:`CostMatrix.from_values`), which is how the Figure 6 hypothetical
matrix and its walkthrough are reproduced.

Construction is the pipeline's bottleneck on long paths, so it is built
as a fast evaluation layer: per-row shared work (derived load, probe
fan-in) is hoisted into a :class:`~repro.costmodel.subpath.SubpathContext`
computed once per row, rows can be fanned out over worker processes
(:meth:`CostMatrix.compute` with ``workers``), and
:meth:`CostMatrix.recompute` re-prices only the rows whose inputs actually
changed for cheap what-if loops over evolving workloads.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import warnings
from dataclasses import dataclass

from repro.costmodel.params import PathStatistics
from repro.costmodel.subpath import (
    SubpathContext,
    SubpathCost,
    subpath_processing_cost,
)
from repro.errors import OptimizerError
from repro.obs.recorder import NULL_RECORDER, Recorder, resolve_recorder
from repro.resilience.retry import DEFAULT_RETRY_POLICY, run_with_retry
from repro.organizations import (
    CONFIGURABLE_ORGANIZATIONS,
    EXTENDED_ORGANIZATIONS,
    IndexOrganization,
)
from repro.workload.load import LoadDistribution


@dataclass(frozen=True)
class RowMinimum:
    """The underlined entry of one matrix row."""

    cost: float
    organization: IndexOrganization


#: Relative tolerance for row-minimum ties. The analytic cost formulas for
#: different organizations can coincide mathematically (e.g. MX and MIX on
#: a class without subclasses) while differing in the last few ulps
#: depending on evaluation order; ties within this tolerance resolve to
#: the earliest organization in column order, matching the paper's
#: preference and keeping the selected configuration stable under
#: numerically equivalent reformulations of the cost model.
TIE_RELATIVE_TOLERANCE = 1e-9

#: Backwards-compatible alias (pre-PR 2 private name).
_TIE_RELATIVE_TOLERANCE = TIE_RELATIVE_TOLERANCE

#: Shortest path for which ``workers=None`` (auto) parallelizes
#: construction when worker inputs must be pickled (spawn start method).
#: Below it the n(n+1)/2 rows are cheap enough that process startup and
#: input pickling dominate any win.
PARALLEL_AUTO_MIN_LENGTH = 25

#: The same auto threshold where ``fork`` is the default start method:
#: workers then inherit the statistics and workload as a read-only module
#: global at fork time (no per-batch pickling), so the fan-out pays off on
#: shorter paths.
PARALLEL_AUTO_MIN_LENGTH_FORK = 20

#: Auto-parallel threshold when the columnar kernel evaluates the rows.
#: The kernel's serial throughput is ~5x the legacy evaluator's, so the
#: path length where process startup amortizes moves out accordingly
#: (measured crossover on an 8-core host: around length 60).
PARALLEL_AUTO_MIN_LENGTH_COLUMNAR = 60

#: Smallest row batch for which ``kernel="auto"`` picks the columnar
#: kernel. Below it (tiny matrices, near-empty recompute dirty sets) the
#: kernel's fixed batch-building cost exceeds the legacy evaluator's
#: per-row cost; both produce bit-identical rows, so auto picks by speed.
KERNEL_AUTO_MIN_ROWS = 8

#: Recognized ``kernel=`` arguments.
KERNELS = ("auto", "columnar", "legacy")


def _fork_context() -> multiprocessing.context.BaseContext | None:
    """The ``fork`` context where it is the platform default, else ``None``.

    Merely *having* ``fork`` is not enough: macOS supports it but defaults
    to ``spawn`` because forking a threaded CPython is unsafe there. The
    fast inherit-inputs path therefore engages only where the platform
    (or the user, via ``multiprocessing.set_start_method``) already
    defaults to ``fork``; everywhere else the pickling path applies.
    """
    if multiprocessing.get_start_method() != "fork":
        return None
    return multiprocessing.get_context("fork")


def _run_pool_once(pool_options: dict, payloads: list) -> tuple[dict, list]:
    """One worker-pool fan-out attempt (the fault-injection seam).

    Kept as a module-level function so the retry loop in
    :meth:`CostMatrix._compute_rows_parallel` (and the chaos tests, via
    monkeypatching) can re-run or fail a *single* pool lifecycle without
    touching batch construction.

    Returns ``(results, profiles)``: the priced rows keyed by
    coordinates, plus one observability profile (or ``None``) per batch
    in submission order — the deterministic order the parent uses to
    assign worker ``tid``\\ s when merging them into its recorder.
    """
    from concurrent.futures import ProcessPoolExecutor

    results: dict = {}
    profiles: list = []
    with ProcessPoolExecutor(**pool_options) as pool:
        futures = [
            pool.submit(function, payload) for function, payload in payloads
        ]
        for future in futures:
            batch, profile = future.result()
            for start, end, row in batch:
                results[(start, end)] = row
            profiles.append(profile)
    return results, profiles


def _warn_parallel_fallback(reason: str) -> None:
    """One :class:`RuntimeWarning` per distinct fallback cause.

    Python's default warning filter deduplicates per (message, category,
    call site), so a long what-if loop that keeps hitting the same broken
    pool warns once instead of flooding stderr — while the structured
    cause stays queryable on every affected matrix
    (:attr:`CostMatrix.parallel_fallback_reason`).
    """
    warnings.warn(
        f"parallel cost-matrix construction fell back to serial "
        f"evaluation: {reason}",
        RuntimeWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class RecomputeReport:
    """What one :meth:`CostMatrix.recompute` call actually did.

    ``mode`` is ``"incremental"`` when the dirty-row analysis applied and
    ``"full"`` when the change forced a complete rebuild (the ``reason``
    says why — e.g. a cost-model config change). ``recomputed_rows`` are
    the rows re-priced through the cost model; ``patched_rows`` are the
    rows whose only change was the ``CMD`` term of a following deletion,
    updated as O(1) per-entry patches from the cached breakdown rates.
    Sessions and benchmarks assert incrementality from this report instead
    of inferring it from timings.

    ``kernel_slice_rows`` counts the re-priced rows that went through the
    columnar kernel as an array-slice re-evaluation; when it is zero even
    though rows were re-priced, ``kernel_fallback_reason`` says why the
    legacy evaluator was chosen instead (requested explicitly, numpy
    missing, a dirty set too small to amortize a fresh lowering, …) — so
    tests assert the kernel path structurally, never from timings.
    """

    mode: str
    reason: str
    recomputed_rows: tuple[tuple[int, int], ...]
    patched_rows: tuple[tuple[int, int], ...]
    total_rows: int
    kernel_slice_rows: int = 0
    kernel_fallback_reason: str | None = None

    @property
    def incremental(self) -> bool:
        """``True`` when the dirty-row analysis applied."""
        return self.mode == "incremental"

    @property
    def kernel_sliced(self) -> bool:
        """``True`` when re-priced rows went through the columnar kernel."""
        return self.kernel_slice_rows > 0

    @property
    def dirty_rows(self) -> tuple[tuple[int, int], ...]:
        """Every row this recompute touched, in Figure 6 row order."""
        return tuple(sorted({*self.recomputed_rows, *self.patched_rows}))

    @property
    def dirty_count(self) -> int:
        """Number of touched rows (re-priced plus patched)."""
        return len(self.recomputed_rows) + len(self.patched_rows)

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.kernel_slice_rows:
            engine = f" ({self.kernel_slice_rows} kernel-sliced)"
        elif self.kernel_fallback_reason:
            engine = f" (legacy: {self.kernel_fallback_reason})"
        else:
            engine = ""
        if self.mode == "full":
            return (
                f"full rebuild ({self.reason}): {self.total_rows} rows"
                f"{engine}"
            )
        return (
            f"incremental: {len(self.recomputed_rows)} rows re-priced"
            f"{engine}, {len(self.patched_rows)} CMD-patched, "
            f"of {self.total_rows}"
        )


def _scan_row_minimum(values: list[float], base: int, width: int) -> tuple[float, int]:
    """``Min_Cost`` of one dense row: (cost, column) with tie handling.

    A later column only displaces the running minimum when it is strictly
    smaller beyond the tie tolerance; the symmetric absolute form keeps
    the comparison direction correct for costs of any sign, so exact and
    near ties resolve to the earliest organization in column order.
    """
    minimum_cost = values[base]
    minimum_org = 0
    for column in range(1, width):
        value = values[base + column]
        if minimum_cost == float("inf"):
            # The relative form is indeterminate against an infinite
            # running minimum; any finite value wins outright.
            take = value < minimum_cost
        else:
            take = minimum_cost - value > TIE_RELATIVE_TOLERANCE * max(
                abs(value), abs(minimum_cost)
            )
        if take:
            minimum_cost = value
            minimum_org = column
    return minimum_cost, minimum_org


def _compute_row(
    stats: PathStatistics,
    load: LoadDistribution,
    organizations: tuple[IndexOrganization, ...],
    start: int,
    end: int,
    range_selectivity: float | None,
) -> dict[IndexOrganization, SubpathCost]:
    """Price one matrix row: every organization over one shared context."""
    context = SubpathContext.build(
        stats, load, start, end, range_selectivity=range_selectivity
    )
    return {
        organization: subpath_processing_cost(
            stats,
            load,
            start,
            end,
            organization,
            range_selectivity=range_selectivity,
            context=context,
        )
        for organization in organizations
    }


def _evaluate_rows(
    stats: PathStatistics,
    load: LoadDistribution,
    organizations: tuple[IndexOrganization, ...],
    rows: list[tuple[int, int]],
    range_selectivity: float | None,
    kernel: str,
    arrays=None,
    recorder=NULL_RECORDER,
) -> dict[tuple[int, int], dict[IndexOrganization, SubpathCost]]:
    """Price rows with the resolved evaluation kernel.

    ``kernel`` is already resolved to ``"columnar"`` or ``"legacy"``. The
    columnar kernel batches every (row, organization) pair into array
    operations (:mod:`repro.kernel`); the legacy path walks the rows one
    at a time through :func:`subpath_processing_cost`. Both produce
    bit-identical :class:`SubpathCost` rows — the legacy evaluator is the
    kernel's parity oracle. ``arrays`` optionally hands the columnar
    kernel a pre-lowered (or workload-patched)
    :class:`~repro.kernel.arrays.StatArrays` for these exact inputs.

    With an enabled ``recorder`` the columnar path splits into
    ``kernel.lower`` / ``kernel.fold`` spans (the explicit ``lower`` is
    the same cache-backed lookup the kernel performs internally, so
    timing it changes nothing) and the lowering-cache probe lands on the
    ``kernel.lowering_cache.*`` counters; every batch adds its size to
    ``matrix.rows_priced``.
    """
    recorder.counter("matrix.rows_priced").add(len(rows))
    if kernel == "columnar":
        from repro import kernel as columnar

        if recorder.enabled and arrays is None:
            cached = columnar.cached_lowering(stats, load, range_selectivity)
            if cached is not None:
                recorder.counter("kernel.lowering_cache.hits").add()
                arrays = cached
            else:
                recorder.counter("kernel.lowering_cache.misses").add()
                with recorder.span("kernel.lower", rows=len(rows)):
                    arrays = columnar.lower(stats, load, range_selectivity)
        with recorder.span("kernel.fold", rows=len(rows)):
            return columnar.compute_rows(
                stats, load, organizations, rows, range_selectivity,
                arrays=arrays,
            )
    with recorder.span("matrix.legacy_eval", rows=len(rows)):
        return {
            (start, end): _compute_row(
                stats, load, organizations, start, end, range_selectivity
            )
            for start, end in rows
        }


def _compute_row_batch(
    payload: tuple,
) -> tuple[
    list[tuple[int, int, dict[IndexOrganization, SubpathCost]]],
    dict | None,
]:
    """Worker entry point: price a batch of rows.

    Top-level so it pickles by reference into worker processes; each row
    is computed independently, so the result is bit-identical to a serial
    evaluation of the same rows regardless of batching or kernel.

    ``payload[-1]`` (``record``) asks the worker to run its batch under
    a private :class:`~repro.obs.Recorder` and ship the serialized
    profile back beside the rows; the parent merges it under a
    deterministic worker ``tid``. With ``record`` false the profile slot
    is ``None`` and instrumentation costs nothing.
    """
    stats, load, organizations, rows, range_selectivity, kernel, record = (
        payload
    )
    recorder = Recorder() if record else NULL_RECORDER
    with recorder.span("matrix.worker_batch", rows=len(rows)):
        priced = _evaluate_rows(
            stats, load, organizations, rows, range_selectivity, kernel,
            recorder=recorder,
        )
    profile = recorder.profile() if record else None
    return (
        [(start, end, priced[(start, end)]) for start, end in rows],
        profile,
    )


#: Worker-process copy of the shared inputs ``(stats, load,
#: organizations, range_selectivity, kernel, arrays, record)`` —
#: ``arrays`` is the parent's columnar lowering (or ``None``), lowered
#: once and inherited by every worker instead of re-lowered per batch;
#: ``record`` asks workers to ship observability profiles back with
#: their rows. Populated inside each fork-started worker by
#: :func:`_init_fork_worker`; never set in the parent process, so
#: concurrent constructions cannot race on it.
_FORK_SHARED_INPUTS: tuple | None = None


def _init_fork_worker(inputs: tuple) -> None:
    """Pool initializer run inside each fork-started worker.

    ``inputs`` lives in the parent's memory and reaches the worker
    through fork inheritance (the ``fork`` start method passes process
    arguments by memory image, not pickling), so the statistics and
    workload never cross a pickle boundary. Each pool carries its own
    inputs via ``initargs``, keeping concurrent constructions isolated.
    """
    global _FORK_SHARED_INPUTS
    _FORK_SHARED_INPUTS = inputs


def _compute_row_batch_fork(
    rows: list[tuple[int, int]],
) -> tuple[
    list[tuple[int, int, dict[IndexOrganization, SubpathCost]]],
    dict | None,
]:
    """Fork-worker entry point: price a batch against the inherited inputs.

    Only the row coordinates travel to the worker; statistics, workload,
    the resolved kernel, the parent's columnar lowering and the
    ``record`` flag come from :data:`_FORK_SHARED_INPUTS`, installed by
    :func:`_init_fork_worker`. Row results are identical to
    :func:`_compute_row_batch` because both delegate to the same
    evaluation seam.
    """
    stats, load, organizations, range_selectivity, kernel, arrays, record = (
        _FORK_SHARED_INPUTS
    )
    recorder = Recorder() if record else NULL_RECORDER
    with recorder.span("matrix.worker_batch", rows=len(rows)):
        priced = _evaluate_rows(
            stats, load, organizations, rows, range_selectivity, kernel,
            arrays=arrays, recorder=recorder,
        )
    profile = recorder.profile() if record else None
    return (
        [(start, end, priced[(start, end)]) for start, end in rows],
        profile,
    )


class CostMatrix:
    """Subpath × organization processing costs.

    Rows are addressed by 1-based inclusive bounds ``(start, end)``; the
    row order of :meth:`rows` matches Figure 6 (by start, then end).
    """

    def __init__(
        self,
        length: int,
        organizations: tuple[IndexOrganization, ...],
        entries: dict[tuple[int, int], dict[IndexOrganization, float]],
        breakdowns: dict[tuple[int, int], dict[IndexOrganization, SubpathCost]]
        | None = None,
    ) -> None:
        if length < 1:
            raise OptimizerError("path length must be at least 1")
        if not organizations:
            raise OptimizerError("at least one organization is required")
        self.length = length
        self.organizations = tuple(organizations)
        self._breakdowns = breakdowns or {}
        # Inputs of a computed matrix (attached by compute()/recompute());
        # literal matrices keep them None and cannot be recomputed.
        self._stats: PathStatistics | None = None
        self._load: LoadDistribution | None = None
        self._range_selectivity: float | None = None
        # The *requested* kernel of the producing compute()/recompute()
        # ("auto" re-resolves per batch, so small recompute dirty sets
        # take the legacy path even when full builds go columnar).
        self._kernel: str = "auto"
        #: What the producing :meth:`recompute` did (``None`` for matrices
        #: built by :meth:`compute` or :meth:`from_values`).
        self.recompute_report: RecomputeReport | None = None
        #: Why a requested parallel construction fell back to serial
        #: evaluation (``None`` when it ran as requested). Serial results
        #: are byte-identical, but the *cause* is never swallowed: it is
        #: recorded here and warned about once per process.
        self.parallel_fallback_reason: str | None = None
        self._org_index = {
            organization: index
            for index, organization in enumerate(self.organizations)
        }
        width = len(self.organizations)
        row_count = length * (length + 1) // 2
        # Flat dense storage: value of (row, org) at row * width + org_index.
        self._values = [0.0] * (row_count * width)
        # Precomputed Min_Cost per row: cost and organization column.
        self._row_min_cost = [0.0] * row_count
        self._row_min_org = [0] * row_count
        for start in range(1, length + 1):
            for end in range(start, length + 1):
                row = entries.get((start, end))
                if row is None:
                    raise OptimizerError(f"missing matrix row ({start},{end})")
                row_position = self.row_index(start, end)
                base = row_position * width
                for column, organization in enumerate(self.organizations):
                    if organization not in row:
                        raise OptimizerError(
                            f"row ({start},{end}) missing {organization}"
                        )
                    self._values[base + column] = row[organization]
                minimum_cost, minimum_org = _scan_row_minimum(
                    self._values, base, width
                )
                self._row_min_cost[row_position] = minimum_cost
                self._row_min_org[row_position] = minimum_org
        extra = set(entries) - set(self.rows())
        if extra:
            raise OptimizerError(
                f"rows outside the 1..{length} subpath triangle: "
                f"{sorted(extra)}"
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def compute(
        cls,
        stats: PathStatistics,
        load: LoadDistribution,
        organizations: tuple[IndexOrganization, ...] = CONFIGURABLE_ORGANIZATIONS,
        include_noindex: bool = False,
        range_selectivity: float | None = None,
        workers: int | None = None,
        kernel: str = "auto",
        retry_policy=None,
        degradation=None,
        recorder=None,
    ) -> "CostMatrix":
        """The ``Cost_Matrix`` procedure over the analytic cost model.

        ``range_selectivity`` switches the workload's queries from
        equality to range predicates with the given selectivity.

        ``workers`` fans the (independent) rows out over a process pool:
        ``None`` (default) parallelizes automatically on long paths
        (length ≥ :data:`PARALLEL_AUTO_MIN_LENGTH`, or
        :data:`PARALLEL_AUTO_MIN_LENGTH_COLUMNAR` under the columnar
        kernel, one worker per CPU), ``0`` or ``1`` forces serial
        evaluation, ``N > 1`` uses exactly ``N`` workers.

        ``kernel`` selects the evaluation engine: ``"columnar"`` batches
        all (row, organization) pairs into numpy array operations
        (:mod:`repro.kernel`), ``"legacy"`` walks rows one at a time
        through the scalar cost model, and ``"auto"`` (default) picks the
        columnar kernel whenever numpy is importable and the batch is
        large enough to amortize array construction. Every kernel and
        worker count produces a bit-identical matrix; only construction
        speed differs.

        ``retry_policy`` (a :class:`~repro.resilience.RetryPolicy`)
        governs how worker-pool failures are retried before the serial
        fallback; ``degradation`` (a
        :class:`~repro.resilience.DegradationReport`) receives one
        structured event per fallback taken. A serial fallback is also
        recorded on the result as :attr:`parallel_fallback_reason` and
        warned about once.

        ``recorder`` (a :class:`~repro.obs.Recorder`; ``None`` means the
        no-op :data:`~repro.obs.NULL_RECORDER`) wraps the build in a
        ``matrix.build`` span with ``kernel.lower``/``kernel.fold``
        children and absorbs per-worker profiles from parallel fan-outs.
        """
        if include_noindex and IndexOrganization.NONE not in organizations:
            organizations = tuple(EXTENDED_ORGANIZATIONS)
        recorder = resolve_recorder(recorder)
        length = stats.length
        rows = [
            (start, end)
            for start in range(1, length + 1)
            for end in range(start, length + 1)
        ]
        recorder.counter("matrix.builds").add()
        with recorder.span(
            "matrix.build", length=length, rows=len(rows), kernel=kernel
        ):
            row_costs, fallback_reason = cls._compute_rows(
                stats, load, tuple(organizations), rows, range_selectivity,
                workers, kernel, retry_policy, degradation,
                recorder=recorder,
            )
            entries: dict[tuple[int, int], dict[IndexOrganization, float]] = {}
            breakdowns: dict[
                tuple[int, int], dict[IndexOrganization, SubpathCost]
            ] = {}
            for coordinates, row_breakdown in row_costs.items():
                entries[coordinates] = {
                    organization: cost.total
                    for organization, cost in row_breakdown.items()
                }
                breakdowns[coordinates] = row_breakdown
            matrix = cls(length, organizations, entries, breakdowns)
        matrix._stats = stats
        matrix._load = load
        matrix._range_selectivity = range_selectivity
        matrix._kernel = kernel
        matrix.parallel_fallback_reason = fallback_reason
        if fallback_reason is not None:
            recorder.counter("matrix.parallel_fallbacks").add()
            _warn_parallel_fallback(fallback_reason)
        return matrix

    @staticmethod
    def _resolve_kernel(
        kernel: str | None, row_count: int, degradation=None,
        cached_arrays: bool = False, recorder=NULL_RECORDER,
    ) -> str:
        """The evaluation engine for a batch: ``"columnar"`` or ``"legacy"``.

        ``"auto"`` (or ``None``) picks the columnar kernel when numpy is
        importable and the batch has at least :data:`KERNEL_AUTO_MIN_ROWS`
        rows — or, with ``cached_arrays``, for *any* batch size: when a
        cached/patched lowering already exists the kernel's fixed
        batch-building cost is gone, so even single-row dirty slices win.
        An explicit ``"columnar"`` raises
        :class:`~repro.errors.OptimizerError` when numpy is missing
        instead of silently degrading. When a ``degradation`` report is
        given, an ``auto`` batch large enough for the kernel that lands
        on the legacy evaluator *because numpy is unavailable* records a
        ``kernel``-layer event (small batches choosing legacy by speed do
        not degrade anything).
        """
        from repro import kernel as columnar

        if kernel is None:
            kernel = "auto"
        if kernel not in KERNELS:
            raise OptimizerError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}"
            )
        if kernel == "auto":
            if row_count >= KERNEL_AUTO_MIN_ROWS or cached_arrays:
                if columnar.is_available():
                    return "columnar"
                recorder.counter(
                    "resilience.degradations", layer="kernel",
                    action="legacy_fallback",
                ).add()
                if degradation is not None:
                    degradation.record(
                        "kernel",
                        "legacy_fallback",
                        "numpy unavailable",
                        rows=row_count,
                    )
                return "legacy"
            return "legacy"
        if kernel == "columnar" and not columnar.is_available():
            raise OptimizerError(
                "kernel='columnar' requires numpy; install it or use "
                "kernel='auto' to fall back to the legacy evaluator"
            )
        return kernel

    @staticmethod
    def _resolve_workers(
        workers: int | None, row_count: int, kernel: str = "legacy"
    ) -> int:
        """Number of worker processes to use (1 means in-process serial).

        The auto threshold depends on the start method: fork-started
        workers inherit their inputs for free, so auto-parallel engages on
        shorter paths (:data:`PARALLEL_AUTO_MIN_LENGTH_FORK`) than the
        pickling spawn path (:data:`PARALLEL_AUTO_MIN_LENGTH`). Under the
        columnar kernel serial evaluation is ~5x faster, so auto-parallel
        waits for much longer paths
        (:data:`PARALLEL_AUTO_MIN_LENGTH_COLUMNAR`).
        """
        if workers is None:
            if kernel == "columnar":
                min_length = PARALLEL_AUTO_MIN_LENGTH_COLUMNAR
            else:
                min_length = (
                    PARALLEL_AUTO_MIN_LENGTH_FORK
                    if _fork_context() is not None
                    else PARALLEL_AUTO_MIN_LENGTH
                )
            if row_count < min_length * (min_length + 1) // 2:
                return 1
            workers = os.cpu_count() or 1
        if workers < 0:
            raise OptimizerError(f"workers must be >= 0, got {workers}")
        return max(1, min(workers, row_count))

    @classmethod
    def _compute_rows(
        cls,
        stats: PathStatistics,
        load: LoadDistribution,
        organizations: tuple[IndexOrganization, ...],
        rows: list[tuple[int, int]],
        range_selectivity: float | None,
        workers: int | None,
        kernel: str | None = "auto",
        retry_policy=None,
        degradation=None,
        arrays=None,
        kernel_report: dict | None = None,
        recorder=NULL_RECORDER,
    ) -> tuple[
        dict[tuple[int, int], dict[IndexOrganization, SubpathCost]],
        str | None,
    ]:
        """Price a set of rows, serially or over a process pool.

        Returns ``(rows, parallel_fallback_reason)``: the reason is
        ``None`` unless a requested parallel fan-out failed (after the
        ``retry_policy`` retries) and the rows were priced serially
        instead. Row results are keyed by coordinates, so assembly order
        is deterministic regardless of how the rows were distributed or
        which kernel priced them. ``degradation`` (a
        :class:`~repro.resilience.DegradationReport`) receives one event
        per fallback taken.

        ``arrays`` is an optional pre-lowered columnar
        :class:`~repro.kernel.arrays.StatArrays` for exactly these inputs
        (it also tips ``kernel="auto"`` toward the kernel for small
        batches). ``kernel_report``, when given, receives the resolved
        engine and how many rows it priced — the structured trace the
        :class:`RecomputeReport` kernel counters are built from.
        ``recorder`` (already resolved; never ``None``) receives the
        evaluation spans and, on parallel builds, the per-worker
        profiles merged under ``tid`` 1..n in submission order.
        """
        resolved_kernel = cls._resolve_kernel(
            kernel, len(rows), degradation, cached_arrays=arrays is not None,
            recorder=recorder,
        )
        resolved = cls._resolve_workers(workers, len(rows), resolved_kernel)
        if kernel_report is not None:
            kernel_report["kernel"] = resolved_kernel
            if resolved_kernel == "columnar":
                # Mirror the kernel's own routing: with a range predicate,
                # rows ending at the path's last attribute price through
                # the legacy oracle (see repro.kernel.evaluate).
                if range_selectivity is not None:
                    length = stats.length
                    kernel_report["kernel_rows"] = sum(
                        1 for _, end in rows if end != length
                    )
                else:
                    kernel_report["kernel_rows"] = len(rows)
            else:
                kernel_report["kernel_rows"] = 0
        fallback_reason: str | None = None
        if resolved > 1:
            if arrays is None and resolved_kernel == "columnar":
                # Shared worker lowering: lower once in the parent so
                # fork-started workers inherit the arrays by memory image
                # instead of each re-lowering its own copy.
                from repro import kernel as columnar

                with recorder.span("kernel.lower", rows=len(rows)):
                    arrays = columnar.lower(stats, load, range_selectivity)
            with recorder.span(
                "matrix.pool", workers=resolved, rows=len(rows)
            ):
                batched, profiles, attempts, fallback_reason = (
                    cls._compute_rows_parallel(
                        stats, load, organizations, rows, range_selectivity,
                        resolved, resolved_kernel, retry_policy, arrays,
                        record=recorder.enabled,
                    )
                )
            if attempts > 1:
                recorder.counter("matrix.pool.retries").add(attempts - 1)
            if batched is not None:
                for index, profile in enumerate(profiles or ()):
                    recorder.absorb(profile, tid=index + 1)
                return batched, None
            recorder.counter(
                "resilience.degradations", layer="matrix",
                action="serial_fallback",
            ).add()
            if degradation is not None:
                degradation.record(
                    "matrix",
                    "serial_fallback",
                    fallback_reason or "worker pool unavailable",
                    workers=resolved,
                    rows=len(rows),
                )
        rows_priced = _evaluate_rows(
            stats, load, organizations, rows, range_selectivity,
            resolved_kernel, arrays=arrays, recorder=recorder,
        )
        return rows_priced, fallback_reason

    @staticmethod
    def _compute_rows_parallel(
        stats: PathStatistics,
        load: LoadDistribution,
        organizations: tuple[IndexOrganization, ...],
        rows: list[tuple[int, int]],
        range_selectivity: float | None,
        workers: int,
        kernel: str = "legacy",
        retry_policy=None,
        arrays=None,
        record: bool = False,
    ) -> tuple[
        dict[tuple[int, int], dict[IndexOrganization, SubpathCost]] | None,
        list | None,
        int,
        str | None,
    ]:
        """Fan row batches out over a process pool, retrying transients.

        Rows are striped across batches so each worker sees a mix of
        short (cheap) and long (expensive) subpaths. Where ``fork`` is
        the default start method, the statistics, workload and the
        parent's columnar lowering (``arrays``) are handed to the workers
        as a read-only module global inherited at fork time — only row
        coordinates are pickled, which removes the per-batch input
        serialization that dominated startup on short paths and the
        per-worker re-lowering under the columnar kernel. Platforms
        defaulting to ``spawn`` (macOS, Windows) keep the pickling path,
        where each worker lowers its own arrays (numpy buffers are
        cheaper to rebuild than to ship).

        Pool failures (a broken/killed worker, an unpicklable payload, an
        OS refusing to fork) are retried under ``retry_policy``
        (:data:`~repro.resilience.retry.DEFAULT_RETRY_POLICY` when
        ``None``) with exponential backoff; after the last attempt the
        caller falls back to serial evaluation. ``record`` asks each
        worker to ship an observability profile back beside its rows.
        Returns ``(results, profiles, attempts, reason)``: ``reason`` is
        ``None`` on success, ``results``/``profiles`` are ``None`` on
        failure — the cause is *never* swallowed.
        """
        from concurrent.futures.process import BrokenProcessPool

        batches = [rows[offset::workers] for offset in range(workers)]
        batches = [batch for batch in batches if batch]
        context = _fork_context()
        pool_options: dict = {"max_workers": workers}
        if context is not None:
            pool_options.update(
                mp_context=context,
                initializer=_init_fork_worker,
                initargs=(
                    (
                        stats, load, organizations, range_selectivity,
                        kernel, arrays, record,
                    ),
                ),
            )
            payloads = [(_compute_row_batch_fork, batch) for batch in batches]
        else:
            payloads = [
                (
                    _compute_row_batch,
                    (
                        stats, load, organizations, batch, range_selectivity,
                        kernel, record,
                    ),
                )
                for batch in batches
            ]
        policy = retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        outcome, attempts, error = run_with_retry(
            lambda: _run_pool_once(pool_options, payloads),
            (OSError, BrokenProcessPool, pickle.PicklingError),
            policy,
        )
        if error is None:
            results, profiles = outcome
            return results, profiles, attempts, None
        reason = (
            f"{type(error).__name__}: {error}"
            if str(error)
            else type(error).__name__
        )
        return None, None, attempts, f"{reason} (after {attempts} attempts)"

    @classmethod
    def from_values(
        cls,
        length: int,
        values: dict[tuple[int, int], dict[IndexOrganization, float]],
    ) -> "CostMatrix":
        """A matrix from literal costs (e.g. the Figure 6 hypothetical).

        The organization set is taken from the first row; every other row
        must provide exactly the same organizations, otherwise an
        :class:`OptimizerError` is raised (a partially-specified matrix
        would silently mis-rank subpaths).
        """
        if not values:
            raise OptimizerError("at least one matrix row is required")
        organizations = tuple(next(iter(values.values())).keys())
        expected = set(organizations)
        for coordinates, row in values.items():
            if set(row.keys()) != expected:
                raise OptimizerError(
                    f"row {coordinates} defines organizations "
                    f"{sorted(str(org) for org in row)} but the matrix uses "
                    f"{sorted(str(org) for org in expected)}"
                )
        return cls(length, organizations, values)

    # ------------------------------------------------------------------
    # incremental updates
    # ------------------------------------------------------------------
    def recompute(
        self,
        stats: PathStatistics | None = None,
        load: LoadDistribution | None = None,
        *,
        workers: int | None = 0,
        kernel: str | None = None,
        retry_policy=None,
        degradation=None,
        recorder=None,
    ) -> "CostMatrix":
        """A new matrix under changed inputs, re-pricing only dirty rows.

        ``stats``/``load`` replace the inputs this matrix was computed
        with (``None`` keeps the old one). The dirty-row analysis is
        exact: a row is recomputed iff one of its inputs can reach it —

        * a statistics change on a class at position ``p`` touches every
          row with ``start <= p`` (rows covering ``p`` read its shapes and
          loads; rows ending before ``p`` read it through the probe-key
          fan-in chain of the remaining path); rows starting after ``p``
          never look at it;
        * a query-frequency change at ``p`` touches rows with
          ``end >= p`` (the subpath's own derived load, or the upstream
          mass folded into a later subpath's starting class);
        * an insert-frequency change at ``p`` touches rows covering ``p``;
        * a delete-frequency change at ``p`` touches rows covering ``p``
          plus rows ending at ``p - 1`` (their ``CMD`` term);
        * a config or hierarchy-membership change falls back to a full
          recompute.

        Rows whose *only* change is the ``CMD`` term of a following
        deletion are not re-priced through the cost model at all: the
        cached breakdown carries the per-deletion rate
        (:attr:`~repro.costmodel.subpath.SubpathCost.cmd_per_deletion`,
        statistics-only), so they are patched as O(1) per-entry updates.
        Clean rows are copied bit-for-bit. Either way the result is always
        entry-for-entry identical to a fresh :meth:`compute` over the new
        inputs, and its :attr:`recompute_report` records exactly which
        rows were re-priced, which were patched, and why (so callers can
        assert incrementality instead of inferring it from timings).

        ``workers`` defaults to ``0`` (serial) because dirty sets are
        typically small; pass ``None`` for the same auto-parallel policy
        as :meth:`compute`. ``kernel`` defaults to the kernel this matrix
        was computed with. Dirty sets route through the columnar kernel
        as array-slice re-evaluations whenever a cached lowering of the
        old inputs exists (a workload-only drift patches it in place, so
        even single-row dirty sets win); without one, ``"auto"``
        re-resolves per dirty set — a handful of dirty rows re-price
        through the legacy evaluator while a near-full rebuild goes
        columnar. Either way the result is bit-identical, and the
        report's ``kernel_slice_rows``/``kernel_fallback_reason`` record
        which engine actually priced the slice.

        Raises :class:`~repro.errors.OptimizerError` for literal matrices
        (:meth:`from_values`) and when the new inputs describe a different
        path.
        """
        if self._stats is None or self._load is None:
            raise OptimizerError(
                "recompute requires a matrix built by CostMatrix.compute(...); "
                "literal matrices carry no statistics or workload"
            )
        new_stats = stats if stats is not None else self._stats
        new_load = load if load is not None else self._load
        if (
            str(new_stats.path) != str(self._stats.path)
            or str(new_load.path) != str(new_stats.path)
        ):
            raise OptimizerError(
                "recompute requires inputs for the same path "
                f"({self._stats.path}); build a fresh matrix for "
                f"{new_stats.path}"
            )
        recorder = resolve_recorder(recorder)
        classified = self._classify_dirty(new_stats, new_load)
        if classified is None:
            dirty_rows = self.rows()
            patch_rows: list[tuple[int, int]] = []
            mode = "full"
            reason = self._full_rebuild_reason(new_stats)
        else:
            recompute_set, patch_set = classified
            dirty_rows = sorted(recompute_set)
            patch_rows = sorted(patch_set)
            mode = "incremental"
            reason = "statistics/load deltas"
        requested_kernel = kernel if kernel is not None else self._kernel
        with recorder.span(
            "matrix.recompute",
            mode=mode,
            dirty=len(dirty_rows),
            patched=len(patch_rows),
        ):
            arrays, kernel_fallback = self._kernel_slice_arrays(
                requested_kernel, new_stats, new_load, len(dirty_rows),
                recorder=recorder,
            )
            kernel_report: dict = {}
            recomputed, fallback_reason = self._compute_rows(
                new_stats,
                new_load,
                self.organizations,
                dirty_rows,
                self._range_selectivity,
                workers,
                requested_kernel,
                retry_policy,
                degradation,
                arrays=arrays,
                kernel_report=kernel_report,
                recorder=recorder,
            )
        kernel_slice_rows = int(kernel_report.get("kernel_rows", 0))
        if kernel_fallback is None and dirty_rows and kernel_slice_rows == 0:
            if kernel_report.get("kernel") == "columnar":
                kernel_fallback = (
                    "all dirty rows end at the path's last attribute under "
                    "a range predicate (legacy oracle)"
                )
            else:
                kernel_fallback = "legacy evaluator selected"
        recorder.counter("matrix.recomputes").add()
        recorder.counter("matrix.recompute.rows_repriced").add(len(dirty_rows))
        recorder.counter("matrix.recompute.rows_patched").add(len(patch_rows))
        recorder.counter("matrix.recompute.kernel_slice_rows").add(
            kernel_slice_rows
        )
        if kernel_fallback is not None and dirty_rows:
            recorder.counter(
                "matrix.kernel_fallback", reason=kernel_fallback
            ).add()
        report = RecomputeReport(
            mode=mode,
            reason=reason,
            recomputed_rows=tuple(dirty_rows),
            patched_rows=tuple(patch_rows),
            total_rows=self.row_count(),
            kernel_slice_rows=kernel_slice_rows,
            kernel_fallback_reason=kernel_fallback,
        )
        # Fast assembly: clean rows are copied as flat-array slices (and
        # keep their precomputed minima); only the recomputed rows are
        # written and re-scanned, and CMD-only rows are patched in place
        # from the cached per-deletion rates. This keeps the cost of a
        # what-if step proportional to the dirty set, not the matrix size.
        width = len(self.organizations)
        matrix = CostMatrix.__new__(CostMatrix)
        matrix.length = self.length
        matrix.organizations = self.organizations
        matrix._org_index = self._org_index
        matrix._values = self._values.copy()
        matrix._row_min_cost = self._row_min_cost.copy()
        matrix._row_min_org = self._row_min_org.copy()
        matrix._breakdowns = dict(self._breakdowns)
        for (start, end), row_breakdown in recomputed.items():
            row_position = self.row_index(start, end)
            base = row_position * width
            for column, organization in enumerate(self.organizations):
                matrix._values[base + column] = row_breakdown[organization].total
            minimum_cost, minimum_org = _scan_row_minimum(
                matrix._values, base, width
            )
            matrix._row_min_cost[row_position] = minimum_cost
            matrix._row_min_org[row_position] = minimum_org
            matrix._breakdowns[(start, end)] = row_breakdown
        for start, end in patch_rows:
            # The CMD multiplier is the summed deletion frequency of the
            # following hierarchy — the same sum, in the same member
            # order, as SubpathContext.build, so the patched entries are
            # bit-identical to a fresh evaluation.
            following = sum(
                new_load.triplet(member).delete
                for member in new_stats.members(end + 1)
            )
            old_row = self._breakdowns[(start, end)]
            row_breakdown = {
                organization: cost.with_following_deletes(following)
                for organization, cost in old_row.items()
            }
            row_position = self.row_index(start, end)
            base = row_position * width
            for column, organization in enumerate(self.organizations):
                matrix._values[base + column] = row_breakdown[organization].total
            minimum_cost, minimum_org = _scan_row_minimum(
                matrix._values, base, width
            )
            matrix._row_min_cost[row_position] = minimum_cost
            matrix._row_min_org[row_position] = minimum_org
            matrix._breakdowns[(start, end)] = row_breakdown
        matrix._stats = new_stats
        matrix._load = new_load
        matrix._range_selectivity = self._range_selectivity
        matrix._kernel = requested_kernel
        matrix.recompute_report = report
        matrix.parallel_fallback_reason = fallback_reason
        if fallback_reason is not None:
            recorder.counter("matrix.parallel_fallbacks").add()
            _warn_parallel_fallback(fallback_reason)
        return matrix

    def _kernel_slice_arrays(
        self,
        requested_kernel: str | None,
        new_stats: PathStatistics,
        new_load: LoadDistribution,
        dirty_count: int,
        recorder=NULL_RECORDER,
    ) -> tuple[object | None, str | None]:
        """The lowering for a kernel dirty-slice, or why legacy runs.

        Returns ``(arrays, fallback_reason)``. ``arrays`` is a columnar
        :class:`~repro.kernel.arrays.StatArrays` for the *new* inputs:
        the cached lowering itself when nothing relevant drifted, a
        workload patch of it when only the load changed, or ``None``.
        ``fallback_reason`` is set exactly when the legacy evaluator will
        price the slice — it feeds
        :attr:`RecomputeReport.kernel_fallback_reason`.

        With ``arrays=None`` and no fallback reason the decision is left
        to :meth:`_resolve_kernel` with the usual size threshold (the
        kernel then lowers fresh arrays for the new inputs and caches
        them for the *next* recompute).
        """
        from repro import kernel as columnar

        if dirty_count == 0:
            return None, None
        if requested_kernel == "legacy":
            return None, "legacy kernel requested"
        if not columnar.is_available():
            if requested_kernel == "columnar":
                # _resolve_kernel raises the structured error downstream.
                return None, None
            return None, "numpy unavailable"
        arrays = None
        if new_stats is self._stats:
            base = columnar.cached_lowering(
                self._stats, self._load, self._range_selectivity
            )
            if base is not None:
                recorder.counter("kernel.lowering_cache.hits").add()
                if new_load is self._load:
                    arrays = base
                else:
                    with recorder.span("kernel.patch_lowering"):
                        arrays = columnar.patch_lowering(base, new_load)
            else:
                recorder.counter("kernel.lowering_cache.misses").add()
        if (
            arrays is None
            and requested_kernel == "auto"
            and dirty_count < KERNEL_AUTO_MIN_ROWS
        ):
            return None, (
                f"dirty set of {dirty_count} rows below the kernel "
                f"threshold ({KERNEL_AUTO_MIN_ROWS}) with no cached "
                f"lowering"
            )
        return arrays, None

    def _full_rebuild_reason(self, new_stats: PathStatistics) -> str:
        """Why the dirty-row analysis refused to apply."""
        old_stats = self._stats
        if new_stats is not old_stats:
            if new_stats.config != old_stats.config:
                return "cost-model config changed"
            for position in range(1, self.length + 1):
                if new_stats.members(position) != old_stats.members(position):
                    return f"hierarchy membership changed at position {position}"
        return "inputs not analyzable incrementally"

    def _dirty_rows(
        self, new_stats: PathStatistics, new_load: LoadDistribution
    ) -> set[tuple[int, int]] | None:
        """Every row whose inputs changed; ``None`` forces a full recompute.

        The union of the re-priced and CMD-patched sets of
        :meth:`_classify_dirty` (kept as the single-set view the
        benchmarks and tests reason about).
        """
        classified = self._classify_dirty(new_stats, new_load)
        if classified is None:
            return None
        recompute_set, patch_set = classified
        return recompute_set | patch_set

    def _classify_dirty(
        self, new_stats: PathStatistics, new_load: LoadDistribution
    ) -> tuple[set[tuple[int, int]], set[tuple[int, int]]] | None:
        """Split changed rows into (re-price, CMD-patch); ``None`` = full.

        A row lands in the patch set only when the *sole* way the change
        reaches it is the following-deletion mass of its ``CMD`` term —
        any row also dirtied through its own derived load or statistics
        must go through the cost model again.
        """
        old_stats = self._stats
        old_load = self._load
        length = self.length
        dirty: set[tuple[int, int]] = set()
        cmd_candidates: set[tuple[int, int]] = set()

        def rows_with_start_at_most(p: int) -> None:
            for start in range(1, min(p, length) + 1):
                for end in range(start, length + 1):
                    dirty.add((start, end))

        def rows_covering(p: int) -> None:
            for start in range(1, p + 1):
                for end in range(p, length + 1):
                    dirty.add((start, end))

        def rows_ending_at_least(p: int) -> None:
            for end in range(p, length + 1):
                for start in range(1, end + 1):
                    dirty.add((start, end))

        if new_stats is not old_stats:
            if new_stats.config != old_stats.config:
                return None
            for position in range(1, length + 1):
                if new_stats.members(position) != old_stats.members(position):
                    return None
            for position in range(1, length + 1):
                for member in new_stats.members(position):
                    if new_stats.stats_of(member) != old_stats.stats_of(member):
                        rows_with_start_at_most(position)

        if new_load is not old_load:
            for position in range(1, length + 1):
                for member in old_stats.members(position):
                    old_triplet = old_load.triplet(member)
                    new_triplet = new_load.triplet(member)
                    if new_triplet.query != old_triplet.query:
                        rows_ending_at_least(position)
                    if new_triplet.insert != old_triplet.insert:
                        rows_covering(position)
                    if new_triplet.delete != old_triplet.delete:
                        rows_covering(position)
                        if position >= 2:
                            for start in range(1, position):
                                cmd_candidates.add((start, position - 1))
        # A CMD patch reads the cached breakdown; rows without one (never
        # the case for computed matrices, but cheap to guard) re-price.
        patch = {
            row
            for row in cmd_candidates - dirty
            if row in self._breakdowns
        }
        return dirty | (cmd_candidates - dirty - patch), patch

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def row_index(self, start: int, end: int) -> int:
        """The dense row position of subpath ``(start, end)``.

        Rows are laid out in Figure 6 order (by start, then end): all rows
        starting at 1 first, then those starting at 2, and so on.
        """
        offset = (start - 1) * (2 * self.length - start + 2) // 2
        return offset + (end - start)

    def cost(self, start: int, end: int, organization: IndexOrganization) -> float:
        """The processing cost of one subpath with one organization."""
        self._check_bounds(start, end)
        column = self._org_index.get(organization)
        if column is None:
            raise OptimizerError(
                f"no entry for ({start},{end}) with {organization}"
            )
        return self._values[
            self.row_index(start, end) * len(self.organizations) + column
        ]

    def breakdown(
        self, start: int, end: int, organization: IndexOrganization
    ) -> SubpathCost | None:
        """The component breakdown, when the matrix was computed (not literal)."""
        return self._breakdowns.get((start, end), {}).get(organization)

    def min_cost(self, start: int, end: int) -> RowMinimum:
        """``Min_Cost``: the underlined (minimal) entry of one row.

        O(1): the minima are precomputed at construction.
        """
        self._check_bounds(start, end)
        row = self.row_index(start, end)
        return RowMinimum(
            cost=self._row_min_cost[row],
            organization=self.organizations[self._row_min_org[row]],
        )

    def ranked_organizations(
        self, start: int, end: int, limit: int | None = None
    ) -> tuple[IndexOrganization, ...]:
        """Organizations of one row in ascending cost order.

        The ranking is the iterated ``Min_Cost`` selection: the same
        tie-tolerant scan that picks the row minimum is applied
        repeatedly to the not-yet-ranked columns, so ``ranked[0]`` is
        always exactly :meth:`min_cost`'s organization and entries within
        :data:`TIE_RELATIVE_TOLERANCE` resolve to the earliest column —
        stable across platforms and numerically equivalent
        reformulations of the cost model. ``limit`` truncates the ranking
        to the best ``limit`` organizations.
        """
        self._check_bounds(start, end)
        width = len(self.organizations)
        base = self.row_index(start, end) * width
        remaining = list(range(width))
        ordered: list[int] = []
        while remaining:
            values = [self._values[base + column] for column in remaining]
            _, position = _scan_row_minimum(values, 0, len(values))
            ordered.append(remaining.pop(position))
        if limit is not None:
            ordered = ordered[:limit]
        return tuple(self.organizations[column] for column in ordered)

    def rows(self) -> list[tuple[int, int]]:
        """Row coordinates in Figure 6 order."""
        return [
            (start, end)
            for start in range(1, self.length + 1)
            for end in range(start, self.length + 1)
        ]

    def row_count(self) -> int:
        """``n(n+1)/2``."""
        return self.length * (self.length + 1) // 2

    def entry_count(self) -> int:
        """The matrix size the paper quotes: ``|organizations| · n(n+1)/2``."""
        return len(self.organizations) * self.row_count()

    def _check_bounds(self, start: int, end: int) -> None:
        if not 1 <= start <= end <= self.length:
            raise OptimizerError(
                f"subpath ({start},{end}) out of range for length {self.length}"
            )

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self, path=None, precision: int = 2) -> str:
        """Figure 6 / Figure 8 style ASCII rendering with minima marked."""
        header = ["subpath"] + [str(org) for org in self.organizations]
        lines = []
        for start, end in self.rows():
            label = (
                str(path.subpath(start, end)) if path is not None else f"S[{start},{end}]"
            )
            minimum = self.min_cost(start, end)
            cells = [label]
            for organization in self.organizations:
                value = self.cost(start, end, organization)
                text = f"{value:.{precision}f}"
                if organization is minimum.organization:
                    text = f"*{text}*"
                cells.append(text)
            lines.append(cells)
        widths = [
            max(len(row[i]) for row in [header, *lines]) for i in range(len(header))
        ]
        def fmt(row: list[str]) -> str:
            return "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
        return "\n".join([fmt(header), separator, *(fmt(row) for row in lines)])
