"""The ``Cost_Matrix`` and ``Min_Cost`` procedures (Section 5).

``Cost_Matrix`` computes the processing cost of every one of the
``n(n+1)/2`` contiguous subpaths with every index organization and stores
them in a matrix whose rows are subpaths and whose columns are
organizations (Figure 6). ``Min_Cost`` underlines the minimum of each row
— the best organization for each subpath in isolation.

Storage is a flat dense array indexed by ``(row_index(start, end),
org_index)`` with the row minima precomputed at construction, so every
search strategy's inner loop (``min_cost``) is an O(1) array read instead
of a dict-of-dicts walk plus a ``min()`` scan.

A matrix can also be constructed from literal values
(:meth:`CostMatrix.from_values`), which is how the Figure 6 hypothetical
matrix and its walkthrough are reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.params import PathStatistics
from repro.costmodel.subpath import SubpathCost, subpath_processing_cost
from repro.errors import OptimizerError
from repro.organizations import (
    CONFIGURABLE_ORGANIZATIONS,
    EXTENDED_ORGANIZATIONS,
    IndexOrganization,
)
from repro.workload.load import LoadDistribution


@dataclass(frozen=True)
class RowMinimum:
    """The underlined entry of one matrix row."""

    cost: float
    organization: IndexOrganization


#: Relative tolerance for row-minimum ties. The analytic cost formulas for
#: different organizations can coincide mathematically (e.g. MX and MIX on
#: a class without subclasses) while differing in the last few ulps
#: depending on evaluation order; ties within this tolerance resolve to
#: the earliest organization in column order, matching the paper's
#: preference and keeping the selected configuration stable under
#: numerically equivalent reformulations of the cost model.
_TIE_RELATIVE_TOLERANCE = 1e-9


class CostMatrix:
    """Subpath × organization processing costs.

    Rows are addressed by 1-based inclusive bounds ``(start, end)``; the
    row order of :meth:`rows` matches Figure 6 (by start, then end).
    """

    def __init__(
        self,
        length: int,
        organizations: tuple[IndexOrganization, ...],
        entries: dict[tuple[int, int], dict[IndexOrganization, float]],
        breakdowns: dict[tuple[int, int], dict[IndexOrganization, SubpathCost]]
        | None = None,
    ) -> None:
        if length < 1:
            raise OptimizerError("path length must be at least 1")
        if not organizations:
            raise OptimizerError("at least one organization is required")
        self.length = length
        self.organizations = tuple(organizations)
        self._breakdowns = breakdowns or {}
        self._org_index = {
            organization: index
            for index, organization in enumerate(self.organizations)
        }
        width = len(self.organizations)
        row_count = length * (length + 1) // 2
        # Flat dense storage: value of (row, org) at row * width + org_index.
        self._values = [0.0] * (row_count * width)
        # Precomputed Min_Cost per row: cost and organization column.
        self._row_min_cost = [0.0] * row_count
        self._row_min_org = [0] * row_count
        for start in range(1, length + 1):
            for end in range(start, length + 1):
                row = entries.get((start, end))
                if row is None:
                    raise OptimizerError(f"missing matrix row ({start},{end})")
                row_position = self.row_index(start, end)
                base = row_position * width
                minimum_cost = float("inf")
                minimum_org = 0
                for column, organization in enumerate(self.organizations):
                    if organization not in row:
                        raise OptimizerError(
                            f"row ({start},{end}) missing {organization}"
                        )
                    value = row[organization]
                    self._values[base + column] = value
                    if minimum_cost == float("inf"):
                        take = column == 0 or value < minimum_cost
                    else:
                        # Strictly smaller beyond the tie tolerance; the
                        # symmetric absolute form keeps the comparison
                        # direction correct for costs of any sign.
                        take = (
                            minimum_cost - value
                            > _TIE_RELATIVE_TOLERANCE
                            * max(abs(value), abs(minimum_cost))
                        )
                    if take:
                        minimum_cost = value
                        minimum_org = column
                self._row_min_cost[row_position] = minimum_cost
                self._row_min_org[row_position] = minimum_org
        extra = set(entries) - set(self.rows())
        if extra:
            raise OptimizerError(
                f"rows outside the 1..{length} subpath triangle: "
                f"{sorted(extra)}"
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def compute(
        cls,
        stats: PathStatistics,
        load: LoadDistribution,
        organizations: tuple[IndexOrganization, ...] = CONFIGURABLE_ORGANIZATIONS,
        include_noindex: bool = False,
        range_selectivity: float | None = None,
    ) -> "CostMatrix":
        """The ``Cost_Matrix`` procedure over the analytic cost model.

        ``range_selectivity`` switches the workload's queries from
        equality to range predicates with the given selectivity.
        """
        if include_noindex and IndexOrganization.NONE not in organizations:
            organizations = tuple(EXTENDED_ORGANIZATIONS)
        entries: dict[tuple[int, int], dict[IndexOrganization, float]] = {}
        breakdowns: dict[tuple[int, int], dict[IndexOrganization, SubpathCost]] = {}
        length = stats.length
        for start in range(1, length + 1):
            for end in range(start, length + 1):
                row: dict[IndexOrganization, float] = {}
                row_breakdown: dict[IndexOrganization, SubpathCost] = {}
                for organization in organizations:
                    cost = subpath_processing_cost(
                        stats,
                        load,
                        start,
                        end,
                        organization,
                        range_selectivity=range_selectivity,
                    )
                    row[organization] = cost.total
                    row_breakdown[organization] = cost
                entries[(start, end)] = row
                breakdowns[(start, end)] = row_breakdown
        return cls(length, organizations, entries, breakdowns)

    @classmethod
    def from_values(
        cls,
        length: int,
        values: dict[tuple[int, int], dict[IndexOrganization, float]],
    ) -> "CostMatrix":
        """A matrix from literal costs (e.g. the Figure 6 hypothetical).

        The organization set is taken from the first row; every other row
        must provide exactly the same organizations, otherwise an
        :class:`OptimizerError` is raised (a partially-specified matrix
        would silently mis-rank subpaths).
        """
        if not values:
            raise OptimizerError("at least one matrix row is required")
        organizations = tuple(next(iter(values.values())).keys())
        expected = set(organizations)
        for coordinates, row in values.items():
            if set(row.keys()) != expected:
                raise OptimizerError(
                    f"row {coordinates} defines organizations "
                    f"{sorted(str(org) for org in row)} but the matrix uses "
                    f"{sorted(str(org) for org in expected)}"
                )
        return cls(length, organizations, values)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def row_index(self, start: int, end: int) -> int:
        """The dense row position of subpath ``(start, end)``.

        Rows are laid out in Figure 6 order (by start, then end): all rows
        starting at 1 first, then those starting at 2, and so on.
        """
        offset = (start - 1) * (2 * self.length - start + 2) // 2
        return offset + (end - start)

    def cost(self, start: int, end: int, organization: IndexOrganization) -> float:
        """The processing cost of one subpath with one organization."""
        self._check_bounds(start, end)
        column = self._org_index.get(organization)
        if column is None:
            raise OptimizerError(
                f"no entry for ({start},{end}) with {organization}"
            )
        return self._values[
            self.row_index(start, end) * len(self.organizations) + column
        ]

    def breakdown(
        self, start: int, end: int, organization: IndexOrganization
    ) -> SubpathCost | None:
        """The component breakdown, when the matrix was computed (not literal)."""
        return self._breakdowns.get((start, end), {}).get(organization)

    def min_cost(self, start: int, end: int) -> RowMinimum:
        """``Min_Cost``: the underlined (minimal) entry of one row.

        O(1): the minima are precomputed at construction.
        """
        self._check_bounds(start, end)
        row = self.row_index(start, end)
        return RowMinimum(
            cost=self._row_min_cost[row],
            organization=self.organizations[self._row_min_org[row]],
        )

    def rows(self) -> list[tuple[int, int]]:
        """Row coordinates in Figure 6 order."""
        return [
            (start, end)
            for start in range(1, self.length + 1)
            for end in range(start, self.length + 1)
        ]

    def row_count(self) -> int:
        """``n(n+1)/2``."""
        return self.length * (self.length + 1) // 2

    def entry_count(self) -> int:
        """The matrix size the paper quotes: ``|organizations| · n(n+1)/2``."""
        return len(self.organizations) * self.row_count()

    def _check_bounds(self, start: int, end: int) -> None:
        if not 1 <= start <= end <= self.length:
            raise OptimizerError(
                f"subpath ({start},{end}) out of range for length {self.length}"
            )

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self, path=None, precision: int = 2) -> str:
        """Figure 6 / Figure 8 style ASCII rendering with minima marked."""
        header = ["subpath"] + [str(org) for org in self.organizations]
        lines = []
        for start, end in self.rows():
            label = (
                str(path.subpath(start, end)) if path is not None else f"S[{start},{end}]"
            )
            minimum = self.min_cost(start, end)
            cells = [label]
            for organization in self.organizations:
                value = self.cost(start, end, organization)
                text = f"{value:.{precision}f}"
                if organization is minimum.organization:
                    text = f"*{text}*"
                cells.append(text)
            lines.append(cells)
        widths = [
            max(len(row[i]) for row in [header, *lines]) for i in range(len(header))
        ]
        def fmt(row: list[str]) -> str:
            return "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
        return "\n".join([fmt(header), separator, *(fmt(row) for row in lines)])
