"""Storage-budget-constrained configuration selection.

A practical extension of the paper's optimizer: real physical designs
operate under a storage budget, and the cheapest configuration may not
fit it (a NIX primary plus auxiliary index can dwarf a multi-index). The
constrained optimizer finds the configuration with minimal processing
cost among those whose total index storage stays within a page budget.

Because the storage constraint couples the per-subpath organization
choices (a row minimum may be unaffordable while its runner-up fits), the
search enumerates partitions *and* per-block organizations exactly —
feasible throughout the paper's regime ("in practice a path has rarely a
length greater than 7"). For budgets spanning *several* paths — where the
shared physical indexes must be stored once — and for long paths beyond
the exhaustive regime, use
:func:`repro.core.multipath.optimize_multipath` with ``budget_pages=...``,
which reuses the same per-subpath storage estimates through its beam
candidate generator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.configuration import IndexConfiguration, IndexedSubpath
from repro.core.cost_matrix import CostMatrix
from repro.errors import OptimizerError
from repro.search.partitions import enumerate_partitions


@dataclass
class BudgetedResult:
    """Outcome of the storage-constrained selection."""

    configuration: IndexConfiguration
    cost: float
    storage_pages: float
    budget_pages: float
    evaluated: int
    #: The unconstrained optimum for comparison.
    unconstrained_cost: float
    unconstrained_storage: float

    @property
    def cost_of_constraint(self) -> float:
        """Extra processing cost paid to fit the budget."""
        return self.cost - self.unconstrained_cost

    def render(self, path=None) -> str:
        """One-line summary."""
        return (
            f"{self.configuration.render(path)} costs {self.cost:.2f} using "
            f"{self.storage_pages:.0f} of {self.budget_pages:.0f} budget pages "
            f"(+{self.cost_of_constraint:.2f} vs unconstrained)"
        )


def _storage_of(matrix: CostMatrix, start: int, end: int, organization) -> float:
    breakdown = matrix.breakdown(start, end, organization)
    if breakdown is None:
        raise OptimizerError(
            "budget-constrained selection requires a computed cost matrix"
        )
    return breakdown.storage_pages


def optimize_with_budget(
    matrix: CostMatrix, budget_pages: float
) -> BudgetedResult:
    """Cheapest configuration whose total index storage fits the budget.

    Raises :class:`OptimizerError` when no configuration fits (even the
    smallest-storage assignment exceeds the budget); include the ``NONE``
    organization in the matrix to make a zero-storage fallback available.
    """
    if budget_pages < 0:
        raise OptimizerError(f"negative storage budget: {budget_pages}")
    best_cost = float("inf")
    best_parts: tuple[IndexedSubpath, ...] | None = None
    best_storage = 0.0
    unconstrained_cost = float("inf")
    unconstrained_storage = 0.0
    evaluated = 0
    for blocks in enumerate_partitions(matrix.length):
        options = []
        for start, end in blocks:
            options.append(
                [
                    (
                        IndexedSubpath(start, end, organization),
                        matrix.cost(start, end, organization),
                        _storage_of(matrix, start, end, organization),
                    )
                    for organization in matrix.organizations
                ]
            )
        for assignment in itertools.product(*options):
            evaluated += 1
            cost = sum(entry[1] for entry in assignment)
            storage = sum(entry[2] for entry in assignment)
            if cost < unconstrained_cost:
                unconstrained_cost = cost
                unconstrained_storage = storage
            if storage <= budget_pages and cost < best_cost:
                best_cost = cost
                best_storage = storage
                best_parts = tuple(entry[0] for entry in assignment)
    if best_parts is None:
        raise OptimizerError(
            f"no configuration fits within {budget_pages} pages; "
            "consider allowing the NONE organization"
        )
    return BudgetedResult(
        configuration=IndexConfiguration(best_parts),
        cost=best_cost,
        storage_pages=best_storage,
        budget_pages=budget_pages,
        evaluated=evaluated,
        unconstrained_cost=unconstrained_cost,
        unconstrained_storage=unconstrained_storage,
    )
