"""Exhaustive baseline: enumerate all ``2^(n-1)`` recombinations.

Section 5 derives the count: each of the ``n-1`` gaps between consecutive
classes is either a subpath boundary or not. The exhaustive search is the
correctness oracle for the branch-and-bound procedure and the baseline of
the pruning benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.configuration import IndexConfiguration, IndexedSubpath
from repro.core.cost_matrix import CostMatrix
from repro.errors import OptimizerError


def enumerate_partitions(length: int) -> Iterator[tuple[tuple[int, int], ...]]:
    """All contiguous partitions of positions ``1..length``.

    Yields ``2^(length-1)`` tuples of ``(start, end)`` blocks, in the
    order induced by the binary boundary masks.
    """
    if length < 1:
        raise OptimizerError("path length must be at least 1")
    for mask in range(2 ** (length - 1)):
        blocks: list[tuple[int, int]] = []
        start = 1
        for gap in range(1, length):
            if mask & (1 << (gap - 1)):
                blocks.append((start, gap))
                start = gap + 1
        blocks.append((start, length))
        yield tuple(blocks)


@dataclass
class ExhaustiveResult:
    """Outcome of the exhaustive enumeration."""

    configuration: IndexConfiguration
    cost: float
    evaluated: int
    all_costs: list[tuple[IndexConfiguration, float]]


def exhaustive_search(
    matrix: CostMatrix, keep_all: bool = False
) -> ExhaustiveResult:
    """Evaluate every partition with per-subpath best organizations."""
    best_cost = float("inf")
    best: IndexConfiguration | None = None
    evaluated = 0
    all_costs: list[tuple[IndexConfiguration, float]] = []
    for blocks in enumerate_partitions(matrix.length):
        evaluated += 1
        parts = []
        total = 0.0
        for start, end in blocks:
            minimum = matrix.min_cost(start, end)
            parts.append(IndexedSubpath(start, end, minimum.organization))
            total += minimum.cost
        configuration = IndexConfiguration(tuple(parts))
        if keep_all:
            all_costs.append((configuration, total))
        if total < best_cost:
            best_cost = total
            best = configuration
    assert best is not None
    return ExhaustiveResult(
        configuration=best,
        cost=best_cost,
        evaluated=evaluated,
        all_costs=all_costs,
    )
