"""Deprecated shim: exhaustive search now lives in :mod:`repro.search`.

The ``2^(n-1)`` full enumeration moved to
:mod:`repro.search.exhaustive`, and the shared partition enumeration it
pioneered moved to :mod:`repro.search.partitions`. This module keeps the
historical entry points — :func:`enumerate_partitions`,
:func:`exhaustive_search` and :class:`ExhaustiveResult` — working
unchanged; new code should use::

    from repro.search import enumerate_partitions, get_strategy

    result = get_strategy("exhaustive").search(matrix)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import IndexConfiguration
from repro.core.cost_matrix import CostMatrix
from repro.search.exhaustive import ExhaustiveStrategy
from repro.search.partitions import enumerate_partitions

__all__ = ["ExhaustiveResult", "enumerate_partitions", "exhaustive_search"]


@dataclass
class ExhaustiveResult:
    """Outcome of the exhaustive enumeration (legacy result shape)."""

    configuration: IndexConfiguration
    cost: float
    evaluated: int
    all_costs: list[tuple[IndexConfiguration, float]]


def exhaustive_search(
    matrix: CostMatrix, keep_all: bool = False
) -> ExhaustiveResult:
    """Evaluate every partition with per-subpath best organizations.

    Deprecated alias for the ``exhaustive`` strategy.
    """
    result = ExhaustiveStrategy(keep_all=keep_all).search(matrix)
    return ExhaustiveResult(
        configuration=result.configuration,
        cost=result.cost,
        evaluated=result.evaluated,
        all_costs=result.extras["all_costs"],
    )
