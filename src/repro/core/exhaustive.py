"""Removed: exhaustive search lives in :mod:`repro.search`.

The PR 1 deprecation shim for the pre-``repro.search`` import path has
been retired. Importing this module fails loudly with migration guidance
instead of silently re-exporting the searcher.
"""

raise ImportError(
    "repro.core.exhaustive was removed: the full enumeration lives in "
    "repro.search. Replace `exhaustive_search(matrix)` with "
    "`get_strategy('exhaustive').search(matrix)` (keep_all via "
    "get_strategy('exhaustive', keep_all=True); the per-configuration "
    "costs are in result.extras['all_costs']), and import "
    "enumerate_partitions from repro.search."
)
