"""Removed: ``Opt_Ind_Con`` lives in :mod:`repro.search`.

The PR 1 deprecation shim for the pre-``repro.search`` import path has
been retired. Importing this module fails loudly with migration guidance
instead of silently re-exporting the searcher.
"""

raise ImportError(
    "repro.core.optimizer was removed: the branch-and-bound searcher "
    "lives in repro.search. Replace `from repro.core.optimizer import "
    "optimize` with `from repro.search import get_strategy` and call "
    "get_strategy('branch_and_bound').search(matrix); the former "
    "OptimizationResult is repro.search.SearchResult."
)
