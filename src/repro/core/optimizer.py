"""Deprecated shim: ``Opt_Ind_Con`` now lives in :mod:`repro.search`.

The branch-and-bound procedure of Section 5 moved to
:mod:`repro.search.branch_and_bound` behind the
:class:`~repro.search.SearchStrategy` protocol. This module keeps the
historical entry points — :func:`optimize` and ``OptimizationResult`` —
working unchanged; new code should use::

    from repro.search import get_strategy

    result = get_strategy("branch_and_bound").search(matrix)
"""

from __future__ import annotations

from repro.core.cost_matrix import CostMatrix
from repro.search.base import SearchResult
from repro.search.branch_and_bound import BranchAndBoundStrategy

#: Deprecated alias: the unified result type of :mod:`repro.search`.
OptimizationResult = SearchResult


def optimize(matrix: CostMatrix, keep_trace: bool = False) -> SearchResult:
    """Select the optimal index configuration from a cost matrix.

    Deprecated alias for the ``branch_and_bound`` strategy; the trace and
    the evaluated/pruned counters match the paper's Figure 6 walkthrough
    exactly.
    """
    return BranchAndBoundStrategy().search(matrix, keep_trace=keep_trace)
