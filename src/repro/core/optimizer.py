"""``Opt_Ind_Con``: branch-and-bound configuration selection (Section 5).

The procedure recombines the original path from subpaths. Starting from
the degree-1 configuration, the path is repeatedly split into a first
piece and a remainder; a branch is cut as soon as the accumulated cost of
the chosen pieces reaches the best complete configuration seen so far
(``PC >= PC_min``). The recursion order matches the paper's worked
example exactly — first pieces are tried longest-first — so the Figure 6
walkthrough can be replayed step by step (see
``benchmarks/bench_fig6_walkthrough.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.configuration import IndexConfiguration, IndexedSubpath
from repro.core.cost_matrix import CostMatrix
from repro.model.path import Path


@dataclass
class OptimizationResult:
    """Outcome of ``Opt_Ind_Con``.

    ``evaluated`` counts the complete candidate configurations whose total
    cost was computed (the quantity the paper reports: "the procedure
    found the optimal configuration by exploring 4 index configurations
    instead of all 8"); ``pruned`` counts the branch cuts.
    """

    configuration: IndexConfiguration
    cost: float
    evaluated: int
    pruned: int
    trace: list[str] = field(default_factory=list)

    def render(self, path: Path | None = None) -> str:
        """One-line summary in the paper's notation."""
        return (
            f"{self.configuration.render(path)} with processing cost "
            f"{self.cost:.2f} ({self.evaluated} configurations evaluated, "
            f"{self.pruned} branches pruned)"
        )


def optimize(matrix: CostMatrix, keep_trace: bool = False) -> OptimizationResult:
    """Select the optimal index configuration from a cost matrix.

    Parameters
    ----------
    matrix:
        A :class:`~repro.core.cost_matrix.CostMatrix` whose row minima are
        the per-subpath best organizations (``Min_Cost`` is applied here).
    keep_trace:
        Record a human-readable line per candidate and per prune, enabling
        the Figure 6 walkthrough reproduction.
    """
    length = matrix.length
    trace: list[str] = []

    state = {
        "best_cost": float("inf"),
        "best_parts": None,
        "evaluated": 0,
        "pruned": 0,
    }

    def note(message: str) -> None:
        if keep_trace:
            trace.append(message)

    def parts_label(parts: list[IndexedSubpath]) -> str:
        return "{" + ", ".join(f"S[{p.start},{p.end}]" for p in parts) + "}"

    def evaluate_candidate(parts: list[IndexedSubpath], cost: float) -> None:
        state["evaluated"] += 1
        if cost < state["best_cost"]:
            state["best_cost"] = cost
            state["best_parts"] = list(parts)
            note(f"candidate {parts_label(parts)} cost {cost:g} -> new best")
        else:
            note(f"candidate {parts_label(parts)} cost {cost:g}")

    def explore(start: int, prefix: list[IndexedSubpath], prefix_cost: float) -> None:
        # Complete candidate: the prefix plus the unsplit remainder.
        remainder = matrix.min_cost(start, length)
        candidate = prefix + [
            IndexedSubpath(start, length, remainder.organization)
        ]
        evaluate_candidate(candidate, prefix_cost + remainder.cost)
        # Split points: first piece start..k, longest first (the paper
        # splits off S_{1,n-1} before S_{1,n-2} and so on).
        for k in range(length - 1, start - 1, -1):
            piece = matrix.min_cost(start, k)
            accumulated = prefix_cost + piece.cost
            if accumulated >= state["best_cost"]:
                state["pruned"] += 1
                note(
                    f"prune: {parts_label(prefix)} + S[{start},{k}] "
                    f"accumulates {accumulated:g} >= {state['best_cost']:g}"
                )
                continue
            explore(
                k + 1,
                prefix + [IndexedSubpath(start, k, piece.organization)],
                accumulated,
            )

    explore(1, [], 0.0)
    best_parts = state["best_parts"]
    assert best_parts is not None
    return OptimizationResult(
        configuration=IndexConfiguration(tuple(best_parts)),
        cost=state["best_cost"],
        evaluated=state["evaluated"],
        pruned=state["pruned"],
        trace=trace,
    )
