"""The paper's primary contribution: index-configuration selection.

* :mod:`~repro.core.configuration` — index configurations (Definition 4.1);
* :mod:`~repro.core.cost_matrix` — the ``Cost_Matrix`` and ``Min_Cost``
  procedures of Section 5;
* :mod:`repro.search` — the pluggable search strategies over the matrix
  (branch and bound, exhaustive, dynamic program, greedy beam); the
  pre-PR 1 shims ``core/optimizer``, ``core/exhaustive`` and
  ``core/dynprog`` are retired and raise a migration ``ImportError``;
* :mod:`~repro.core.evaluation` — configuration cost evaluation, including
  the exact "coupled" evaluator extension;
* :mod:`~repro.core.advisor` — the one-call high-level API;
* :mod:`~repro.core.multipath` — the Section 6 multi-path extension,
  beam-backed: per-path candidates come from the k-best sweep in
  :mod:`repro.search.greedy_beam` (exact enumeration is kept as the
  small-instance oracle), the joint search shares physical indexes
  across paths, and ``optimize_multipath(budget_pages=...)`` constrains
  the union of selected indexes to a storage budget;
* :mod:`~repro.core.budget` — single-path storage-budget selection.
"""

from repro.core.advisor import DEFAULT_STRATEGY, AdvisorReport, advise
from repro.core.budget import BudgetedResult, optimize_with_budget
from repro.core.configuration import IndexConfiguration, IndexedSubpath
from repro.core.cost_matrix import CostMatrix
from repro.core.multipath import (
    MultiPathResult,
    PathWorkload,
    SharedIndexKey,
    optimize_multipath,
)
from repro.core.planner import Plan, PlanStep, explain_query, explain_update

__all__ = [
    "AdvisorReport",
    "BudgetedResult",
    "CostMatrix",
    "DEFAULT_STRATEGY",
    "IndexConfiguration",
    "IndexedSubpath",
    "MultiPathResult",
    "PathWorkload",
    "Plan",
    "PlanStep",
    "SharedIndexKey",
    "advise",
    "explain_query",
    "explain_update",
    "optimize_multipath",
    "optimize_with_budget",
]
