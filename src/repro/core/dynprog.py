"""Dynamic-programming baseline: exact optimum in O(n²) row lookups.

The objective is additive over contiguous blocks (Proposition 4.2), so the
classic interval-partition recurrence

.. math::

    best(i) = \\min_{j \\ge i} \\; rowmin(i, j) + best(j + 1)

yields the same optimum as exhaustive enumeration while inspecting each of
the ``n(n+1)/2`` matrix rows exactly once. The paper proposes branch and
bound instead; this module exists as a correctness oracle and as the
natural "what modern treatment would do" comparison point for the scaling
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import IndexConfiguration, IndexedSubpath
from repro.core.cost_matrix import CostMatrix


@dataclass
class DynamicProgramResult:
    """Outcome of the DP optimum computation."""

    configuration: IndexConfiguration
    cost: float
    rows_inspected: int


def dynamic_program(matrix: CostMatrix) -> DynamicProgramResult:
    """Compute the optimal configuration by interval-partition DP."""
    length = matrix.length
    # best[i] = minimal cost of covering positions i..length; best[length+1] = 0.
    best: list[float] = [0.0] * (length + 2)
    choice: list[int] = [0] * (length + 2)
    rows = 0
    for start in range(length, 0, -1):
        best_cost = float("inf")
        best_end = start
        for end in range(start, length + 1):
            rows += 1
            candidate = matrix.min_cost(start, end).cost + best[end + 1]
            if candidate < best_cost:
                best_cost = candidate
                best_end = end
        best[start] = best_cost
        choice[start] = best_end
    parts: list[IndexedSubpath] = []
    cursor = 1
    while cursor <= length:
        end = choice[cursor]
        minimum = matrix.min_cost(cursor, end)
        parts.append(IndexedSubpath(cursor, end, minimum.organization))
        cursor = end + 1
    return DynamicProgramResult(
        configuration=IndexConfiguration(tuple(parts)),
        cost=best[1],
        rows_inspected=rows,
    )
