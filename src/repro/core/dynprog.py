"""Deprecated shim: the DP baseline now lives in :mod:`repro.search`.

The interval-partition dynamic program moved to
:mod:`repro.search.dynamic_program` behind the
:class:`~repro.search.SearchStrategy` protocol. This module keeps the
historical entry points — :func:`dynamic_program` and
:class:`DynamicProgramResult` — working unchanged; new code should use::

    from repro.search import get_strategy

    result = get_strategy("dynamic_program").search(matrix)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import IndexConfiguration
from repro.core.cost_matrix import CostMatrix
from repro.search.dynamic_program import DynamicProgramStrategy

__all__ = ["DynamicProgramResult", "dynamic_program"]


@dataclass
class DynamicProgramResult:
    """Outcome of the DP optimum computation (legacy result shape)."""

    configuration: IndexConfiguration
    cost: float
    rows_inspected: int


def dynamic_program(matrix: CostMatrix) -> DynamicProgramResult:
    """Compute the optimal configuration by interval-partition DP.

    Deprecated alias for the ``dynamic_program`` strategy.
    """
    result = DynamicProgramStrategy().search(matrix)
    return DynamicProgramResult(
        configuration=result.configuration,
        cost=result.cost,
        rows_inspected=result.extras["rows_inspected"],
    )
