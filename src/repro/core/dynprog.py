"""Removed: the DP baseline lives in :mod:`repro.search`.

The PR 1 deprecation shim for the pre-``repro.search`` import path has
been retired. Importing this module fails loudly with migration guidance
instead of silently re-exporting the searcher.
"""

raise ImportError(
    "repro.core.dynprog was removed: the dynamic program lives in "
    "repro.search. Replace `dynamic_program(matrix)` with "
    "`get_strategy('dynamic_program').search(matrix)`; the former "
    "rows_inspected counter is result.extras['rows_inspected']."
)
