"""Query and update planning: EXPLAIN for index configurations.

Given a configuration and a target operation, the planner produces the
sequence of physical steps the executor will take — which index is probed
with how many keys, what it emits, what maintenance a deletion triggers —
each annotated with its analytic page-access estimate. The estimates are
exactly the coupled-evaluation quantities, so ``EXPLAIN`` totals agree
with :func:`repro.core.evaluation.per_class_analytic_costs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.configuration import IndexConfiguration
from repro.costmodel.params import PathStatistics
from repro.costmodel.subpath import build_model
from repro.errors import OptimizerError
from repro.organizations import IndexOrganization


@dataclass(frozen=True)
class PlanStep:
    """One physical step of a plan."""

    action: str
    structure: str
    detail: str
    estimated_pages: float


@dataclass
class Plan:
    """An ordered sequence of steps with their total estimate."""

    operation: str
    target: str
    steps: list[PlanStep] = field(default_factory=list)

    @property
    def estimated_pages(self) -> float:
        """Sum of the step estimates."""
        return sum(step.estimated_pages for step in self.steps)

    def render(self) -> str:
        """EXPLAIN-style text rendering."""
        lines = [f"plan: {self.operation} -> {self.target}"]
        for index, step in enumerate(self.steps, start=1):
            lines.append(
                f"  {index}. {step.action} {step.structure}"
                f" — {step.detail} (~{step.estimated_pages:.2f} pages)"
            )
        lines.append(f"estimated total: {self.estimated_pages:.2f} page accesses")
        return "\n".join(lines)


def _find_position(stats: PathStatistics, class_name: str) -> int:
    for position in range(1, stats.length + 1):
        if class_name in stats.members(position):
            return position
    raise OptimizerError(f"class {class_name!r} not in scope of {stats.path}")


def _structure_label(
    stats: PathStatistics, start: int, end: int, organization: IndexOrganization
) -> str:
    return f"{organization}({stats.path.subpath(start, end)})"


def explain_query(
    stats: PathStatistics,
    configuration: IndexConfiguration,
    target_class: str,
    range_selectivity: float | None = None,
) -> Plan:
    """Plan an (equality or range) query for one target class.

    The plan chains backwards from the ending attribute, one step per
    subpath, reporting per step the number of probe keys, the emitted
    oids, and the page estimate.
    """
    position = _find_position(stats, target_class)
    parts = configuration.assignments
    models = [
        build_model(stats, part.start, part.end, part.organization)
        for part in parts
    ]
    target_part = next(
        i
        for i, part in enumerate(parts)
        if part.start <= position <= part.end
    )
    predicate = (
        "equality value"
        if range_selectivity is None
        else f"range (selectivity {range_selectivity:g})"
    )
    plan = Plan(operation=f"query[{predicate}]", target=target_class)

    probes = 1.0
    if range_selectivity is not None:
        probes = max(1.0, range_selectivity * stats.distinct_union(stats.length))
    for i in range(len(parts) - 1, target_part, -1):
        part, model = parts[i], models[i]
        root = stats.path.class_at(part.start)
        if i == len(parts) - 1 and range_selectivity is not None:
            pages = model.range_query_cost(part.start, root, range_selectivity)
        else:
            pages = model.hierarchy_query_cost(part.start, probes)
        emitted = model.emitted_oids(probes)
        plan.steps.append(
            PlanStep(
                action="probe",
                structure=_structure_label(
                    stats, part.start, part.end, part.organization
                ),
                detail=(
                    f"{probes:.0f} key(s) -> ~{emitted:.0f} {root} oid(s)"
                ),
                estimated_pages=pages,
            )
        )
        probes = emitted
    part, model = parts[target_part], models[target_part]
    if target_part == len(parts) - 1 and range_selectivity is not None:
        pages = model.range_query_cost(position, target_class, range_selectivity)
    else:
        pages = model.query_cost(position, target_class, probes)
    plan.steps.append(
        PlanStep(
            action="retrieve",
            structure=_structure_label(
                stats, part.start, part.end, part.organization
            ),
            detail=f"{probes:.0f} key(s) -> {target_class} oids",
            estimated_pages=pages,
        )
    )
    return plan


def explain_update(
    stats: PathStatistics,
    configuration: IndexConfiguration,
    class_name: str,
    kind: str,
) -> Plan:
    """Plan an object insertion or deletion for one class.

    ``kind`` is ``"insert"`` or ``"delete"``. Deletions on a subpath's
    starting class include the preceding subpath's ``CMD`` step.
    """
    if kind not in ("insert", "delete"):
        raise OptimizerError(f"unknown update kind: {kind!r}")
    position = _find_position(stats, class_name)
    parts = configuration.assignments
    plan = Plan(operation=kind, target=class_name)
    for i, part in enumerate(parts):
        if not part.start <= position <= part.end:
            continue
        model = build_model(stats, part.start, part.end, part.organization)
        if kind == "insert":
            pages = model.insert_cost(position, class_name)
            detail = "add the object's values to the subpath index"
        else:
            pages = model.delete_cost(position, class_name)
            detail = "remove the object from the subpath index"
        plan.steps.append(
            PlanStep(
                action="maintain",
                structure=_structure_label(
                    stats, part.start, part.end, part.organization
                ),
                detail=detail,
                estimated_pages=pages,
            )
        )
        if kind == "delete" and position == part.start and i > 0:
            previous = parts[i - 1]
            previous_model = build_model(
                stats, previous.start, previous.end, previous.organization
            )
            plan.steps.append(
                PlanStep(
                    action="maintain",
                    structure=_structure_label(
                        stats, previous.start, previous.end, previous.organization
                    ),
                    detail=(
                        "CMD: drop the record keyed by the deleted oid "
                        "from the preceding subpath's index"
                    ),
                    estimated_pages=previous_model.cmd_cost(),
                )
            )
        break
    return plan
