"""Index configurations (Definition 4.1).

An index configuration of degree ``m`` for a path of length ``n`` is a
sequence of ``m`` pairs ``(S_i, X_i)`` whose subpaths concatenate to the
original path — i.e. a partition of positions ``1..n`` into contiguous
blocks, each assigned an index organization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OptimizerError
from repro.model.path import Path
from repro.organizations import IndexOrganization


@dataclass(frozen=True, order=True)
class IndexedSubpath:
    """One pair ``(S_i, X_i)``: a subpath plus its index organization."""

    start: int
    end: int
    organization: IndexOrganization

    def __post_init__(self) -> None:
        if self.start < 1 or self.end < self.start:
            raise OptimizerError(
                f"invalid subpath bounds {self.start}..{self.end}"
            )

    @property
    def length(self) -> int:
        """Number of classes covered by the subpath."""
        return self.end - self.start + 1

    def render(self, path: Path | None = None) -> str:
        """``(Per.owns.man, NIX)`` when a path is given, positional otherwise."""
        if path is None:
            return f"(S[{self.start},{self.end}], {self.organization})"
        return f"({path.subpath(self.start, self.end)}, {self.organization})"


@dataclass(frozen=True)
class IndexConfiguration:
    """A complete configuration: contiguous subpaths covering ``1..n``."""

    assignments: tuple[IndexedSubpath, ...]

    def __post_init__(self) -> None:
        if not self.assignments:
            raise OptimizerError("a configuration needs at least one subpath")
        ordered = sorted(self.assignments, key=lambda a: a.start)
        object.__setattr__(self, "assignments", tuple(ordered))
        expected = 1
        for assignment in self.assignments:
            if assignment.start != expected:
                raise OptimizerError(
                    "subpaths do not form a contiguous partition: expected "
                    f"start {expected}, got {assignment.start}"
                )
            expected = assignment.end + 1

    @classmethod
    def whole_path(
        cls, length: int, organization: IndexOrganization
    ) -> "IndexConfiguration":
        """The degree-1 configuration: one index on the entire path."""
        return cls((IndexedSubpath(1, length, organization),))

    @classmethod
    def of(
        cls, *parts: tuple[int, int, IndexOrganization]
    ) -> "IndexConfiguration":
        """Build from ``(start, end, organization)`` triples."""
        return cls(tuple(IndexedSubpath(s, e, o) for s, e, o in parts))

    @property
    def degree(self) -> int:
        """``m``: the number of subpaths."""
        return len(self.assignments)

    @property
    def length(self) -> int:
        """``n``: the number of positions covered."""
        return self.assignments[-1].end

    def partition(self) -> tuple[tuple[int, int], ...]:
        """The bare ``(start, end)`` blocks."""
        return tuple((a.start, a.end) for a in self.assignments)

    def organization_at(self, position: int) -> IndexOrganization:
        """The organization indexing the subpath that covers ``position``."""
        for assignment in self.assignments:
            if assignment.start <= position <= assignment.end:
                return assignment.organization
        raise OptimizerError(f"position {position} outside configuration")

    def render(self, path: Path | None = None) -> str:
        """Paper-style rendering: ``{(Per.owns.man, NIX), (Comp..., MX)}``."""
        inner = ", ".join(a.render(path) for a in self.assignments)
        return "{" + inner + "}"
