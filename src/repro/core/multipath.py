"""Multi-path configuration selection — the Section 6 extension.

The paper's further-research list opens with "the extension of the
algorithm such that it may generate index configurations for n paths",
noting that "a path may be a subpath of another path or paths may overlap
each other".

This module implements the extension for the practically relevant case:
a set of paths over one schema, each with its own statistics and workload.
Two paths that select the *identical* physical subpath (the same sequence
of ``(class, attribute)`` steps) with the same organization share one
physical index, so its maintenance cost (inserts, deletes, CMD) is paid
once — and its storage pages are occupied once — rather than per path.
Query costs are always per path.

Selection is staged:

1. **Candidate generation per path.** Each path contributes its locally
   cheapest configurations, with the best ``per_row_organizations``
   organizations per subpath so sharing can win even when it is not
   locally optimal. Short paths are enumerated exactly; beyond
   :data:`EXACT_CANDIDATE_LIMIT` candidates the generator is the k-best
   beam sweep :func:`repro.search.greedy_beam.top_configurations`
   (``beam_width`` candidates per path, exact over the space it covers),
   which keeps many-long-paths joint selection out of the ``2^(n-1)``
   regime entirely. Passing ``beam_width`` explicitly forces the beam;
   the exact enumeration is retained as the parity oracle for small
   instances.
2. **Joint search across paths.** The cross product of the candidate
   sets is searched exactly when it is small
   (:data:`_EXACT_LIMIT` combinations) and by greedy coordinate descent
   otherwise — hedged with :data:`DEFAULT_RESTARTS` seeded randomized
   restarts against its local minima — with shared physical indexes
   charged once.
3. **Storage budget (optional).** ``optimize_multipath(budget_pages=...)``
   constrains the union of selected physical indexes — priced per
   :class:`SharedIndexKey` from the cost-model storage estimates, which
   derive from :class:`repro.storage.sizes.SizeModel` — to a page
   budget: exact filtered search when the cross product is small, and
   otherwise a greedy marginal-benefit sweep (best cost-reduction per
   added page first) whose recorded trajectory is filtered by the
   budget, so tighter budgets always cost at least as much as looser
   ones. The budget-free path remains the default (``budget_pages=None``).

For what-if loops, :func:`optimize_multipath` also accepts one
:class:`~repro.whatif.AdvisorSession` per path (``sessions=``): matrices
come from the sessions' incremental recomputes, and each path's candidate
set — including its per-:class:`SharedIndexKey` maintenance and storage
pricing — is cached on the session and regenerated only when that path's
dirty version moved. A caller-owned ``joint_cache`` extends the reuse to
the joint stage itself: in the descent regime the previously selected
configurations are kept (re-priced, multi-start descent skipped) while
they remain a local optimum of the regenerated candidate sets.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.core.configuration import IndexConfiguration, IndexedSubpath
from repro.core.cost_matrix import CostMatrix
from repro.costmodel.params import PathStatistics
from repro.errors import OptimizerError
from repro.obs.recorder import NULL_RECORDER, resolve_recorder
from repro.organizations import CONFIGURABLE_ORGANIZATIONS, IndexOrganization
from repro.search.greedy_beam import top_configurations
from repro.search.partitions import configuration_count, enumerate_partitions
from repro.workload.load import LoadDistribution

#: Above this many cross-path combinations the joint search switches to
#: coordinate descent.
_EXACT_LIMIT = 200_000

#: Largest per-path candidate space (``r·(1+r)^(n-1)``) that is still
#: enumerated exactly when ``beam_width`` is not forced. Length 10 with
#: two organizations per row is ~39k candidates; length 11 crosses this
#: limit and switches to the beam generator.
EXACT_CANDIDATE_LIMIT = 50_000

#: Candidates kept per path by the beam generator when ``beam_width`` is
#: not given. Wide enough that coordinate descent has realistic sharing
#: alternatives to move through, small enough that 8 × length-40 joint
#: selection stays in the seconds range.
DEFAULT_BEAM_WIDTH = 16

#: Seeded randomized restarts of the coordinate descent when the joint
#: stage runs beyond :data:`_EXACT_LIMIT`. The descent from the
#: independent optimum can sit in a local minimum of the sharing
#: landscape; a few random starting selections hedge against it at a cost
#: linear in the candidate-set sizes.
DEFAULT_RESTARTS = 4


@dataclass(frozen=True)
class PathWorkload:
    """One path's inputs: statistics plus load distribution."""

    stats: PathStatistics
    load: LoadDistribution


def validate_selection_options(
    per_row_organizations: int = 2,
    beam_width: int | None = None,
    budget_pages: float | None = None,
    restarts: int | None = None,
) -> None:
    """Reject invalid selection options with an :class:`OptimizerError`.

    Shared by :func:`optimize_multipath` and the CLI, which calls it
    *before* computing the cost matrices so bad flags fail fast (the
    same fail-before-the-expensive-run convention as ``advise``'s
    strategy resolution). ``budget_pages`` must be a non-negative real
    number — NaN is rejected explicitly because every ``storage <=
    budget`` comparison against it is silently false.
    """
    if per_row_organizations < 1:
        raise OptimizerError(
            f"organizations per block must be positive, got "
            f"{per_row_organizations}"
        )
    if beam_width is not None and beam_width < 1:
        raise OptimizerError(f"beam width must be positive, got {beam_width}")
    if budget_pages is not None and not budget_pages >= 0:
        raise OptimizerError(
            f"storage budget must be a non-negative number of pages, got "
            f"{budget_pages}"
        )
    if restarts is not None and restarts < 0:
        raise OptimizerError(
            f"restarts must be non-negative, got {restarts}"
        )


@dataclass(frozen=True)
class SharedIndexKey:
    """Identity of a physical index: the steps it covers plus organization."""

    steps: tuple[tuple[str, str], ...]
    organization: IndexOrganization


@dataclass
class MultiPathResult:
    """Joint configuration selection outcome.

    ``exact`` is ``True`` only when both stages were exhaustive: the
    candidate sets covered each path's full (organization-limited) space
    *and* the joint cross product was searched completely.
    ``storage_pages`` prices the union of selected physical indexes
    (shared indexes once); ``budget_pages`` echoes the constraint when
    one was given, with ``unconstrained_cost`` the joint cost the same
    candidate sets reach without it.
    """

    configurations: list[IndexConfiguration]
    total_cost: float
    shared_savings: float
    independent_cost: float
    exact: bool
    storage_pages: float = 0.0
    budget_pages: float | None = None
    unconstrained_cost: float | None = None
    #: Human-readable records of every deadline fallback taken while
    #: producing this result (empty when selection ran at full quality).
    degradations: tuple[str, ...] = ()

    def render(self, workloads: list[PathWorkload]) -> str:
        """Readable multi-path report."""
        lines = []
        for workload, configuration in zip(workloads, self.configurations):
            lines.append(
                f"  {workload.stats.path}: {configuration.render(workload.stats.path)}"
            )
        lines.append(
            f"joint cost {self.total_cost:.2f} "
            f"(independent {self.independent_cost:.2f}, "
            f"shared savings {self.shared_savings:.2f}, "
            f"{'exact' if self.exact else 'beam/greedy'} search)"
        )
        if self.budget_pages is not None:
            extra = (
                f" (+{self.total_cost - self.unconstrained_cost:.2f} vs "
                f"unconstrained)"
                if self.unconstrained_cost is not None
                else ""
            )
            # Translate pages back to bytes with the fleet's size model so
            # the budget means something to an administrator.
            sizes = workloads[0].stats.config.sizes
            lines.append(
                f"storage {sizes.describe_pages(self.storage_pages)} of "
                f"{self.budget_pages:.0f} budget pages{extra}"
            )
        return "\n".join(lines)


def _subpath_key(
    stats: PathStatistics, start: int, end: int, organization: IndexOrganization
) -> SharedIndexKey:
    path = stats.path
    steps = tuple(
        (path.class_at(position), path.attribute_at(position))
        for position in range(start, end + 1)
    )
    return SharedIndexKey(steps=steps, organization=organization)


@dataclass(frozen=True)
class _Candidate:
    """One candidate configuration of one path, with cost and storage split."""

    configuration: IndexConfiguration
    query_cost: float
    maintenance: dict[SharedIndexKey, float]
    storage: dict[SharedIndexKey, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.query_cost + sum(self.maintenance.values())


def _candidate_from_parts(
    stats: PathStatistics,
    matrix: CostMatrix,
    parts: tuple[IndexedSubpath, ...],
) -> _Candidate:
    """Price one configuration into its query/maintenance/storage split."""
    query_cost = 0.0
    maintenance: dict[SharedIndexKey, float] = {}
    storage: dict[SharedIndexKey, float] = {}
    for part in parts:
        breakdown = matrix.breakdown(part.start, part.end, part.organization)
        if breakdown is None:
            raise OptimizerError(
                "multi-path selection requires a computed cost matrix"
            )
        query_cost += breakdown.query
        key = _subpath_key(stats, part.start, part.end, part.organization)
        maintenance[key] = (
            maintenance.get(key, 0.0)
            + breakdown.insert
            + breakdown.delete
            + breakdown.cmd
        )
        storage[key] = max(storage.get(key, 0.0), breakdown.storage_pages)
    return _Candidate(
        configuration=IndexConfiguration(tuple(parts)),
        query_cost=query_cost,
        maintenance=maintenance,
        storage=storage,
    )


#: Candidate batches below this size are priced by the scalar loop —
#: the batched pricer's array setup costs more than it saves there.
_BATCH_PRICING_MIN = 16


def _price_candidates(
    stats: PathStatistics,
    matrix: CostMatrix,
    parts_list: list[tuple[IndexedSubpath, ...]],
) -> list[_Candidate]:
    """Price a whole candidate set in one batched kernel evaluation.

    :func:`_candidate_from_parts` re-derived as array operations: every
    distinct ``(start, end, organization)`` triple across the set is
    looked up and :class:`SharedIndexKey`-built exactly once, and the
    per-candidate query sums run through one
    :func:`repro.kernel.arrays.fold_segments` call whose segmented fold
    replays the scalar ``+=`` accumulation order — so the batched prices
    are bit-identical to the per-candidate loop, which stays on as the
    small-set fast path and the no-numpy fallback.
    """
    from repro import kernel

    if len(parts_list) < _BATCH_PRICING_MIN or not kernel.is_available():
        return [
            _candidate_from_parts(stats, matrix, parts)
            for parts in parts_list
        ]
    import numpy as np

    from repro.kernel.arrays import fold_segments

    # One breakdown lookup and one key construction per distinct triple
    # (candidate sets repeat each block's ranked organizations across
    # hundreds of partitions — the scalar loop re-prices every repeat).
    triples: dict[tuple[int, int, IndexOrganization], tuple] = {}
    for parts in parts_list:
        for part in parts:
            triple = (part.start, part.end, part.organization)
            if triple in triples:
                continue
            breakdown = matrix.breakdown(*triple)
            if breakdown is None:
                raise OptimizerError(
                    "multi-path selection requires a computed cost matrix"
                )
            triples[triple] = (
                breakdown.query,
                ((0.0 + breakdown.insert) + breakdown.delete)
                + breakdown.cmd,
                breakdown.storage_pages,
                _subpath_key(stats, *triple),
            )

    counts = [len(parts) for parts in parts_list]
    entry_count = sum(counts)
    values = np.empty(entry_count)
    segment = np.empty(entry_count, dtype=np.int64)
    rank = np.empty(entry_count, dtype=np.int64)
    position = 0
    for index, parts in enumerate(parts_list):
        for offset, part in enumerate(parts):
            values[position] = triples[
                (part.start, part.end, part.organization)
            ][0]
            segment[position] = index
            rank[position] = offset
            position += 1
    query_costs = fold_segments(
        values, segment, rank, len(parts_list), max(counts, default=0)
    )

    candidates: list[_Candidate] = []
    for index, parts in enumerate(parts_list):
        maintenance: dict[SharedIndexKey, float] = {}
        storage: dict[SharedIndexKey, float] = {}
        for part in parts:
            _query, upkeep, pages, key = triples[
                (part.start, part.end, part.organization)
            ]
            # Blocks of one candidate partition the path, so each key
            # appears once — plain assignment matches the scalar
            # accumulate/max exactly.
            maintenance[key] = upkeep
            storage[key] = pages
        candidates.append(
            _Candidate(
                configuration=IndexConfiguration(tuple(parts)),
                query_cost=float(query_costs[index]),
                maintenance=maintenance,
                storage=storage,
            )
        )
    return candidates


def _candidates_exact(
    workload: PathWorkload, matrix: CostMatrix, per_row_organizations: int
) -> list[_Candidate]:
    """The parity oracle: all partitions × best organizations per block."""
    assignments: list[tuple[IndexedSubpath, ...]] = []
    for blocks in enumerate_partitions(matrix.length):
        # Per block: the best `per_row_organizations` organizations.
        options: list[list[IndexedSubpath]] = []
        for start, end in blocks:
            # Tie-tolerant ranking (the Min_Cost tolerance): near-tie
            # organizations rank by column order, so the candidate pool is
            # stable across platforms and cost-model reformulations.
            ranked = matrix.ranked_organizations(
                start, end, limit=per_row_organizations
            )
            options.append(
                [IndexedSubpath(start, end, org) for org in ranked]
            )
        assignments.extend(itertools.product(*options))
    return _price_candidates(workload.stats, matrix, assignments)


def _candidates_beam(
    workload: PathWorkload,
    matrix: CostMatrix,
    per_row_organizations: int,
    width: int,
) -> list[_Candidate]:
    """Top-``width`` locally cheapest configurations via the k-best sweep."""
    return _price_candidates(
        workload.stats,
        matrix,
        [
            parts
            for _cost, parts in top_configurations(
                matrix, count=width, per_row_organizations=per_row_organizations
            )
        ],
    )


def _storage_matrix(matrix: CostMatrix) -> CostMatrix:
    """A literal matrix whose entries are storage pages, not costs.

    Budgeted candidate generation runs the same k-best sweep over this
    matrix to surface the *smallest* configurations of a path (the
    zero-storage all-``NONE`` fallback among them) — the candidates a
    cost-ranked beam never proposes but a tight budget needs.
    """
    values: dict[tuple[int, int], dict[IndexOrganization, float]] = {}
    for start, end in matrix.rows():
        row: dict[IndexOrganization, float] = {}
        for organization in matrix.organizations:
            breakdown = matrix.breakdown(start, end, organization)
            if breakdown is None:
                raise OptimizerError(
                    "budget-constrained multi-path selection requires a "
                    "computed cost matrix"
                )
            row[organization] = breakdown.storage_pages
        values[(start, end)] = row
    return CostMatrix.from_values(matrix.length, values)


def _candidates_budget(
    workload: PathWorkload,
    matrix: CostMatrix,
    width: int,
) -> list[_Candidate]:
    """Beam candidates for the budgeted search: cheapest ∪ smallest.

    Two k-best sweeps over every organization per block — one ranked by
    processing cost, one by storage pages — merged without duplicates.
    With ``width`` at least the candidate-space size the cost sweep alone
    already covers the whole space.
    """
    organizations = len(matrix.organizations)
    assignments = [
        tuple(parts)
        for _cost, parts in top_configurations(
            matrix, count=width, per_row_organizations=organizations
        )
    ]
    # Dedupe by parts (configuration identity) *before* pricing, so the
    # storage sweep's overlap with the cost sweep is never priced twice.
    seen = set(assignments)
    for _pages, parts in top_configurations(
        _storage_matrix(matrix), count=width, per_row_organizations=organizations
    ):
        assignment = tuple(parts)
        if assignment not in seen:
            seen.add(assignment)
            assignments.append(assignment)
    return _price_candidates(workload.stats, matrix, assignments)


def _candidate_descriptors(
    matrices: list[CostMatrix],
    per_row_organizations: int,
    beam_width: int | None,
    budget_pages: float | None,
) -> tuple[list[tuple], bool]:
    """Per-path candidate-generation descriptors plus the exactness flag.

    A descriptor is a hashable tuple fully determining what
    :func:`_generate_candidates` produces for a path — ``("exact", r)``,
    ``("beam", r, width)`` or ``("budget_beam", width)`` — which makes it
    the cache key for session-carried candidate sets: identical
    descriptor + unchanged matrix (session version) ⇒ identical
    candidates. The mode decisions are unchanged from the pre-session
    code paths; only their bookkeeping moved here.
    """
    descriptors: list[tuple] = []
    generation_exact = True
    if budget_pages is None:
        for matrix in matrices:
            space = configuration_count(matrix.length, per_row_organizations)
            if beam_width is None and space <= EXACT_CANDIDATE_LIMIT:
                descriptors.append(("exact", per_row_organizations))
            else:
                width = (
                    beam_width if beam_width is not None else DEFAULT_BEAM_WIDTH
                )
                descriptors.append(("beam", per_row_organizations, width))
                if width < space:
                    generation_exact = False
    else:
        # A storage budget couples the per-block organization choices (the
        # affordable option may be any organization, NONE included), so
        # budgeted generation ranks over every organization in the matrix
        # — the same widening optimize_with_budget applies — instead of
        # the cost-ranked best per_row_organizations. The generation mode
        # is decided globally: exact enumeration only when the downstream
        # filtered cross product is exhaustive too, because handing tens
        # of thousands of exact candidates per path to the greedy sweep
        # multiplies every swap scan for no exactness in return.
        spaces = [
            configuration_count(matrix.length, len(matrix.organizations))
            for matrix in matrices
        ]
        product = 1
        for space in spaces:
            product *= space
        if (
            beam_width is None
            and max(spaces) <= EXACT_CANDIDATE_LIMIT
            and product <= _EXACT_LIMIT
        ):
            for matrix in matrices:
                descriptors.append(("exact", len(matrix.organizations)))
        else:
            width = beam_width if beam_width is not None else DEFAULT_BEAM_WIDTH
            for space in spaces:
                descriptors.append(("budget_beam", width))
                if width < space:
                    generation_exact = False
    return descriptors, generation_exact


def _generate_candidates(
    workload: PathWorkload, matrix: CostMatrix, descriptor: tuple
) -> list[_Candidate]:
    """Produce one path's candidate set for a generation descriptor."""
    kind = descriptor[0]
    if kind == "exact":
        return _candidates_exact(workload, matrix, descriptor[1])
    if kind == "beam":
        return _candidates_beam(workload, matrix, descriptor[1], descriptor[2])
    return _candidates_budget(workload, matrix, descriptor[1])


def _joint_cost(selection: tuple[_Candidate, ...]) -> tuple[float, float]:
    """Total joint cost and the sharing savings of one selection."""
    query = sum(candidate.query_cost for candidate in selection)
    merged: dict[SharedIndexKey, float] = {}
    raw = 0.0
    for candidate in selection:
        for key, cost in candidate.maintenance.items():
            raw += cost
            # A shared physical index is maintained once; the paths may
            # estimate its maintenance slightly differently (different
            # ending attributes), so charge the most expensive estimate.
            merged[key] = max(merged.get(key, 0.0), cost)
    maintenance = sum(merged.values())
    return query + maintenance, raw - maintenance


def _joint_storage(selection: tuple[_Candidate, ...]) -> float:
    """Pages of the union of physical indexes (shared indexes once)."""
    merged: dict[SharedIndexKey, float] = {}
    for candidate in selection:
        for key, pages in candidate.storage.items():
            merged[key] = max(merged.get(key, 0.0), pages)
    return sum(merged.values())


def _descend(
    candidate_sets: list[list[_Candidate]], selection: list[_Candidate]
) -> list[_Candidate]:
    """Greedy coordinate descent: re-optimize one path at a time until stable."""
    improved = True
    while improved:
        improved = False
        for index, candidates in enumerate(candidate_sets):
            current_cost, _ = _joint_cost(tuple(selection))
            for candidate in candidates:
                trial = list(selection)
                trial[index] = candidate
                cost, _ = _joint_cost(tuple(trial))
                if cost < current_cost - 1e-12:
                    selection = trial
                    current_cost = cost
                    improved = True
    return selection


def _reuse_joint_selection(
    joint_cache: dict,
    cache_key: tuple,
    candidate_sets: list[list[_Candidate]],
) -> list[_Candidate] | None:
    """The cached joint selection re-validated against fresh candidates.

    Maps the previously selected configurations into the regenerated
    candidate sets (their pricing may have moved with the perturbed
    matrices) and scans for a single improving single-path swap — the
    same improvement predicate as the coordinate descent, stopping at
    the first hit. When no swap improves, the cached selection is still
    a local optimum of the updated sharing landscape: the mapped
    selection is returned, the caller skips the multi-start descent
    entirely, and the ``reuses`` counter records it so tests can assert
    the reuse happened rather than timing it. Any other outcome
    (options changed, a selected configuration fell out of its
    candidate set, a swap improved) returns ``None`` after at most one
    partial sweep and the full joint stage runs.
    """
    entry = joint_cache.get("entry")
    if entry is None or entry[0] != cache_key:
        return None
    previous: list[IndexConfiguration] = entry[1]
    if len(previous) != len(candidate_sets):
        return None
    mapped: list[_Candidate] = []
    for configuration, candidates in zip(previous, candidate_sets):
        match = next(
            (
                candidate
                for candidate in candidates
                if candidate.configuration == configuration
            ),
            None,
        )
        if match is None:
            return None
        mapped.append(match)
    current_cost, _ = _joint_cost(tuple(mapped))
    for index, candidates in enumerate(candidate_sets):
        for candidate in candidates:
            if candidate is mapped[index]:
                continue
            trial = list(mapped)
            trial[index] = candidate
            cost, _ = _joint_cost(tuple(trial))
            if cost < current_cost - 1e-12:
                return None
    joint_cache["reuses"] = joint_cache.get("reuses", 0) + 1
    return mapped


def _select_unconstrained(
    candidate_sets: list[list[_Candidate]],
    restarts: int = DEFAULT_RESTARTS,
    seed: int = 0,
) -> tuple[list[_Candidate], bool]:
    """Best joint selection, exact for small cross products.

    Beyond :data:`_EXACT_LIMIT` combinations the search is coordinate
    descent from the independent optimum, hedged by ``restarts`` extra
    descents from selections drawn uniformly at random per path (seeded:
    the same ``seed`` always explores the same restarts, so results are
    deterministic). The best of all descents wins; ties keep the
    independent-optimum descent.
    """
    combinations = 1
    for candidates in candidate_sets:
        combinations *= len(candidates)
    if combinations <= _EXACT_LIMIT:
        best_cost = float("inf")
        best_selection: tuple[_Candidate, ...] | None = None
        for selection in itertools.product(*candidate_sets):
            cost, _ = _joint_cost(selection)
            if cost < best_cost:
                best_cost = cost
                best_selection = selection
        assert best_selection is not None
        return list(best_selection), True

    # Start from each path's independent best and descend.
    selection = [
        min(candidates, key=lambda candidate: candidate.total)
        for candidates in candidate_sets
    ]
    best_selection = _descend(candidate_sets, selection)
    best_cost, _ = _joint_cost(tuple(best_selection))
    rng = random.Random(seed)
    for _ in range(restarts):
        start = [rng.choice(candidates) for candidates in candidate_sets]
        restarted = _descend(candidate_sets, start)
        cost, _ = _joint_cost(tuple(restarted))
        if cost < best_cost - 1e-12:
            best_cost = cost
            best_selection = restarted
    return best_selection, False


def _select_budgeted_exact(
    candidate_sets: list[list[_Candidate]], budget_pages: float
) -> tuple[list[_Candidate], list[_Candidate]]:
    """One exhaustive pass over the cross product, tracking two optima.

    Returns ``(best_feasible, best_overall)`` — the cheapest selection
    whose physical-index union fits the budget and the cheapest
    selection outright (for the ``unconstrained_cost`` report) — so the
    exact budgeted path never walks the product twice.
    """
    best_cost = float("inf")
    best_selection: tuple[_Candidate, ...] | None = None
    overall_cost = float("inf")
    overall_selection: tuple[_Candidate, ...] | None = None
    for selection in itertools.product(*candidate_sets):
        cost, _ = _joint_cost(selection)
        if cost < overall_cost:
            overall_cost = cost
            overall_selection = selection
        if cost < best_cost and _joint_storage(selection) <= budget_pages:
            best_cost = cost
            best_selection = selection
    if best_selection is None:
        raise OptimizerError(
            f"no joint configuration fits within {budget_pages} pages; "
            "consider including the NONE organization"
        )
    assert overall_selection is not None
    return list(best_selection), list(overall_selection)


def _best_swap(
    candidate_sets: list[list[_Candidate]],
    selection: list[_Candidate],
    rank,
) -> tuple[tuple, int, _Candidate, float, float] | None:
    """The best single-path swap under a ranking rule, or ``None``.

    ``rank(trial_cost, trial_storage)`` returns a comparable rank tuple,
    or ``None`` to reject the move; the highest rank wins. Shared by the
    sweep's two phases so the swap enumeration cannot drift between
    them.
    """
    best: tuple[tuple, int, _Candidate, float, float] | None = None
    for index, candidates in enumerate(candidate_sets):
        for candidate in candidates:
            if candidate is selection[index]:
                continue
            trial = list(selection)
            trial[index] = candidate
            trial_cost, _ = _joint_cost(tuple(trial))
            trial_storage = _joint_storage(tuple(trial))
            move_rank = rank(trial_cost, trial_storage)
            if move_rank is None:
                continue
            if best is None or move_rank > best[0]:
                best = (move_rank, index, candidate, trial_cost, trial_storage)
    return best


def _budget_sweep(
    candidate_sets: list[list[_Candidate]],
    budget_pages: float,
    unconstrained: list[_Candidate],
) -> list[_Candidate]:
    """Greedy marginal-benefit selection under the budget.

    Two budget-independent phases, every visited selection recorded:

    1. **Storage descent.** From the smallest per-path-footprint
       selection, repeatedly apply the single-path swap that most
       shrinks the joint union (ties prefer the smaller cost increase).
       The per-path start cannot see union effects — two paths may each
       prefer a private index while a shared key is jointly smaller —
       so the descent walks toward minimal-union selections tight
       budgets need.
    2. **Marginal benefit.** From the descent's end point, repeatedly
       apply the single-path swap with the best cost reduction per
       added page (pure cost reductions rank above everything).

    The unconstrained optimum is seeded into the record so generous
    budgets recover it exactly. The answer is the cheapest recorded
    selection that fits; nothing recorded depends on the budget, so
    feasible sets nest as the budget grows and the returned cost
    degrades monotonically as it tightens.
    """
    selection = [
        min(
            candidates,
            key=lambda candidate: (sum(candidate.storage.values()), candidate.total),
        )
        for candidates in candidate_sets
    ]
    cost, _ = _joint_cost(tuple(selection))
    storage = _joint_storage(tuple(selection))
    visited: list[tuple[list[_Candidate], float, float]] = [
        (list(selection), cost, storage),
        (
            list(unconstrained),
            _joint_cost(tuple(unconstrained))[0],
            _joint_storage(tuple(unconstrained)),
        ),
    ]

    def shrink_rank(trial_cost: float, trial_storage: float):
        reduction = storage - trial_storage
        if reduction <= 1e-12:
            return None
        return (reduction, cost - trial_cost)

    def benefit_rank(trial_cost: float, trial_storage: float):
        reduction = cost - trial_cost
        if reduction <= 1e-12:
            return None
        added = trial_storage - storage
        ratio = float("inf") if added <= 0 else reduction / added
        return (ratio, reduction)

    for rank in (shrink_rank, benefit_rank):
        while True:
            move = _best_swap(candidate_sets, selection, rank)
            if move is None:
                break
            _, index, candidate, cost, storage = move
            selection[index] = candidate
            visited.append((list(selection), cost, storage))
    feasible = [entry for entry in visited if entry[2] <= budget_pages]
    if not feasible:
        raise OptimizerError(
            f"no joint configuration fits within {budget_pages} pages; "
            "consider including the NONE organization"
        )
    best = min(feasible, key=lambda entry: entry[1])
    return best[0]


def optimize_multipath(
    workloads: list[PathWorkload] | None = None,
    per_row_organizations: int = 2,
    matrices: list[CostMatrix] | None = None,
    organizations: tuple[IndexOrganization, ...] | None = None,
    workers: int | None = None,
    kernel: str = "auto",
    beam_width: int | None = None,
    budget_pages: float | None = None,
    restarts: int = DEFAULT_RESTARTS,
    seed: int = 0,
    sessions: list | None = None,
    joint_cache: dict | None = None,
    deadline=None,
    degradation=None,
    recorder=None,
) -> MultiPathResult:
    """Jointly select configurations for several related paths.

    Parameters
    ----------
    workloads:
        One :class:`PathWorkload` per path (same schema assumed).
    per_row_organizations:
        How many of each subpath's best organizations to consider; 1 makes
        sharing only possible when locally optimal, 2 (default) lets a
        slightly worse organization win through sharing.
    matrices:
        Precomputed cost matrices, one per workload in order (e.g. from a
        previous :meth:`CostMatrix.recompute` what-if loop). Each must be
        a computed matrix (with breakdowns) of the workload's path length;
        when given, ``organizations``, ``workers`` and ``kernel`` are
        ignored.
    organizations:
        Candidate organizations for the computed matrices (default: the
        paper's MX/MIX/NIX).
    workers:
        Worker processes per matrix construction (see
        :meth:`CostMatrix.compute`).
    kernel:
        Evaluation engine per matrix construction (see
        :meth:`CostMatrix.compute`); every kernel builds bit-identical
        matrices.
    beam_width:
        ``None`` (default) enumerates a path's candidates exactly while
        its ``r·(1+r)^(n-1)`` candidate space stays within
        :data:`EXACT_CANDIDATE_LIMIT` and falls back to a
        :data:`DEFAULT_BEAM_WIDTH`-wide k-best beam beyond; an integer
        forces the beam with that many candidates per path. With
        ``beam_width`` at least the candidate-space size the beam covers
        the whole space and matches the exact oracle.
    budget_pages:
        Constrain the union of selected physical indexes (shared indexes
        stored once) to this many pages; ``None`` (default) selects
        without a storage constraint. Because the constraint couples the
        per-block organization choices, budgeted generation ranks over
        *every* organization in the matrix (``per_row_organizations`` is
        ignored, and the beam adds a storage-ranked sweep so tight
        budgets keep feasible candidates). Candidates are enumerated
        exactly only when the downstream filtered cross product is
        exhaustive as well; otherwise every path uses the capped beam so
        the greedy sweep stays fast. Include the ``NONE`` organization
        to guarantee a zero-storage fallback. Tightening the budget
        never decreases the returned cost.
    restarts:
        Seeded randomized restarts of the coordinate descent when the
        joint stage runs beyond the exact cross-product limit (default
        :data:`DEFAULT_RESTARTS`); ``0`` restores the single descent
        from the independent optimum. Deterministic under a fixed
        ``seed``; has no effect on exact joint searches.
    seed:
        Seed for the restart selections.
    sessions:
        One :class:`~repro.whatif.AdvisorSession` per path, instead of
        ``workloads``/``matrices``. The sessions' current statistics,
        workloads and incrementally recomputed matrices are used
        directly, and each path's candidate set is cached on its session
        keyed by the generation descriptor and the session's dirty
        version — so a what-if step re-generates candidates (and
        re-prices their :class:`SharedIndexKey` maintenance/storage
        splits) only for the paths it actually touched; untouched paths
        reuse theirs as-is.
    joint_cache:
        A caller-owned dict carrying joint-selection reuse state across
        calls (:class:`~repro.whatif.MultiPathSession` passes its own).
        In the unbudgeted *descent* regime (cross product beyond the
        exact limit) the previously selected configurations are mapped
        into the fresh candidate sets and kept — multi-start descent
        skipped, ``joint_cache["reuses"]`` incremented — whenever they
        are still a local optimum, i.e. when only candidates *outside*
        the selection changed enough to matter; the result is re-priced
        against the current matrices either way. Exact joint searches
        and budgeted selections ignore the cache (their answers come
        from exhaustive scans that cannot be partially reused).
    deadline:
        An optional :class:`~repro.resilience.Deadline`. Selection never
        aborts on expiry — it *degrades*: paths whose candidates are not
        yet generated (or cached) fall back to a width-1 beam, the
        unbudgeted joint stage returns the independent per-path optima,
        and the budgeted sweep is seeded with them instead of the
        multi-start descent. Every fallback taken is listed in the
        result's ``degradations`` (and recorded into ``degradation``
        when one is given), and degraded runs never write the
        ``joint_cache`` or session candidate caches.
    degradation:
        An optional :class:`~repro.resilience.DegradationReport`
        collecting structured records of every fallback — the deadline
        rungs here, plus any serial/kernel fallbacks inside the matrix
        constructions this call triggers.
    recorder:
        An optional :class:`~repro.obs.Recorder` collecting tracing
        spans (``multipath.optimize`` > ``multipath.candidates`` /
        ``multipath.joint``) and metrics (candidate-cache hits, joint
        reuses) for this selection and the matrix builds it triggers.
    """
    recorder = resolve_recorder(recorder)
    with recorder.span("multipath.optimize") as span:
        result = _optimize_multipath(
            workloads,
            per_row_organizations,
            matrices,
            organizations,
            workers,
            kernel,
            beam_width,
            budget_pages,
            restarts,
            seed,
            sessions,
            joint_cache,
            deadline,
            degradation,
            recorder,
        )
        span.note(paths=len(result.configurations), exact=result.exact)
    recorder.counter("multipath.optimizations").add()
    return result


def _optimize_multipath(
    workloads,
    per_row_organizations,
    matrices,
    organizations,
    workers,
    kernel,
    beam_width,
    budget_pages,
    restarts,
    seed,
    sessions,
    joint_cache,
    deadline,
    degradation,
    recorder=NULL_RECORDER,
) -> MultiPathResult:
    """The selection pipeline behind :func:`optimize_multipath`."""
    if sessions is not None:
        if workloads is not None or matrices is not None:
            raise OptimizerError(
                "pass either sessions or workloads/matrices, not both"
            )
        workloads = [
            PathWorkload(stats=session.stats, load=session.load)
            for session in sessions
        ]
        matrices = [session.matrix for session in sessions]
    if not workloads:
        raise OptimizerError("at least one path is required")
    validate_selection_options(
        per_row_organizations, beam_width, budget_pages, restarts
    )
    if matrices is not None:
        if len(matrices) != len(workloads):
            raise OptimizerError(
                f"{len(matrices)} matrices for {len(workloads)} workloads"
            )
        for workload, matrix in zip(workloads, matrices):
            if matrix.length != workload.stats.length:
                raise OptimizerError(
                    f"matrix of length {matrix.length} cannot describe "
                    f"{workload.stats.path} (length {workload.stats.length})"
                )
    else:
        compute_organizations = (
            organizations
            if organizations is not None
            else CONFIGURABLE_ORGANIZATIONS
        )
        matrices = [
            CostMatrix.compute(
                w.stats,
                w.load,
                organizations=compute_organizations,
                workers=workers,
                kernel=kernel,
                degradation=degradation,
                recorder=recorder,
            )
            for w in workloads
        ]

    degradations: list[str] = []

    def degrade(action: str, **detail) -> None:
        if degradation is not None:
            degradation.record("multipath", action, "deadline_expired", **detail)
        rendered = " ".join(f"{key}={value}" for key, value in detail.items())
        degradations.append(
            f"{action}: deadline_expired" + (f" {rendered}" if rendered else "")
        )

    descriptors, generation_exact = _candidate_descriptors(
        matrices, per_row_organizations, beam_width, budget_pages
    )
    candidate_sets: list[list[_Candidate]] = []
    with recorder.span("multipath.candidates", paths=len(workloads)):
        for index, (workload, matrix, descriptor) in enumerate(
            zip(workloads, matrices, descriptors)
        ):
            session = sessions[index] if sessions is not None else None
            if session is not None:
                cached = session.candidate_cache.get(descriptor)
                if cached is not None and cached[0] == session.version:
                    recorder.counter("multipath.candidate_cache_hits").add()
                    candidate_sets.append(cached[1])
                    continue
            if deadline is not None and deadline.expired:
                # Out of time before this path's candidates were
                # generated: a width-1 beam (its single locally cheapest
                # configuration) keeps the joint stage answerable in
                # O(path length) — and the degraded set is never stored
                # in the session cache.
                fallback = (
                    ("budget_beam", 1)
                    if budget_pages is not None
                    else ("beam", per_row_organizations, 1)
                )
                degrade("candidates_beam1", path=index)
                recorder.counter(
                    "resilience.degradations",
                    layer="multipath",
                    action="candidates_beam1",
                ).add()
                generation_exact = False
                candidate_sets.append(
                    _generate_candidates(workload, matrix, fallback)
                )
                continue
            candidates = _generate_candidates(workload, matrix, descriptor)
            if session is not None:
                session.candidate_cache[descriptor] = (
                    session.version,
                    candidates,
                )
            candidate_sets.append(candidates)

    independent = 0.0
    for candidates in candidate_sets:
        independent += min(candidate.total for candidate in candidates)

    if budget_pages is None:
        if deadline is not None and deadline.expired:
            # No time for a joint search: each path keeps its independent
            # optimum (sharing savings may be left on the table, but the
            # selection is valid and fully priced).
            selection = [
                min(candidates, key=lambda candidate: candidate.total)
                for candidates in candidate_sets
            ]
            degrade("joint_independent")
            recorder.counter(
                "resilience.degradations",
                layer="multipath",
                action="joint_independent",
            ).add()
            cost, savings = _joint_cost(tuple(selection))
            return MultiPathResult(
                configurations=[c.configuration for c in selection],
                total_cost=cost,
                shared_savings=savings,
                independent_cost=independent,
                exact=False,
                storage_pages=_joint_storage(tuple(selection)),
                degradations=tuple(degradations),
            )
        combinations = 1
        for candidates in candidate_sets:
            combinations *= len(candidates)
        descent_regime = combinations > _EXACT_LIMIT
        cache_key = (per_row_organizations, beam_width, restarts, seed)
        if joint_cache is not None and descent_regime and not degradations:
            reused = _reuse_joint_selection(
                joint_cache, cache_key, candidate_sets
            )
            if reused is not None:
                recorder.counter("multipath.joint_reuses").add()
                cost, savings = _joint_cost(tuple(reused))
                return MultiPathResult(
                    configurations=[c.configuration for c in reused],
                    total_cost=cost,
                    shared_savings=savings,
                    independent_cost=independent,
                    exact=False,
                    storage_pages=_joint_storage(tuple(reused)),
                )
        with recorder.span(
            "multipath.joint", combinations=combinations, budgeted=False
        ):
            selection, product_exact = _select_unconstrained(
                candidate_sets, restarts, seed
            )
        if joint_cache is not None and descent_regime and not degradations:
            joint_cache["entry"] = (
                cache_key,
                [candidate.configuration for candidate in selection],
            )
        cost, savings = _joint_cost(tuple(selection))
        return MultiPathResult(
            configurations=[c.configuration for c in selection],
            total_cost=cost,
            shared_savings=savings,
            independent_cost=independent,
            exact=generation_exact and product_exact,
            storage_pages=_joint_storage(tuple(selection)),
            degradations=tuple(degradations),
        )

    combinations = 1
    for candidates in candidate_sets:
        combinations *= len(candidates)
    expired = deadline is not None and deadline.expired
    with recorder.span(
        "multipath.joint", combinations=combinations, budgeted=True
    ):
        if combinations <= _EXACT_LIMIT and not expired:
            selection, unconstrained = _select_budgeted_exact(
                candidate_sets, budget_pages
            )
            budget_exact = True
        else:
            if expired:
                # Feasibility cannot be skipped under a budget, so the
                # sweep still runs — but seeded with the independent
                # optima instead of the multi-start coordinate descent.
                unconstrained = [
                    min(candidates, key=lambda candidate: candidate.total)
                    for candidates in candidate_sets
                ]
                degrade("budget_sweep_seeded")
                recorder.counter(
                    "resilience.degradations",
                    layer="multipath",
                    action="budget_sweep_seeded",
                ).add()
            else:
                unconstrained, _ = _select_unconstrained(
                    candidate_sets, restarts, seed
                )
            selection = _budget_sweep(
                candidate_sets, budget_pages, unconstrained
            )
            budget_exact = False
    cost, savings = _joint_cost(tuple(selection))
    return MultiPathResult(
        configurations=[c.configuration for c in selection],
        total_cost=cost,
        shared_savings=savings,
        independent_cost=independent,
        exact=generation_exact and budget_exact,
        storage_pages=_joint_storage(tuple(selection)),
        budget_pages=budget_pages,
        unconstrained_cost=_joint_cost(tuple(unconstrained))[0],
        degradations=tuple(degradations),
    )
