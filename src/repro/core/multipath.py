"""Multi-path configuration selection — the Section 6 extension.

The paper's further-research list opens with "the extension of the
algorithm such that it may generate index configurations for n paths",
noting that "a path may be a subpath of another path or paths may overlap
each other".

This module implements the extension for the practically relevant case:
a set of paths over one schema, each with its own statistics and workload.
Two paths that select the *identical* physical subpath (the same sequence
of ``(class, attribute)`` steps) with the same organization share one
physical index, so its maintenance cost (inserts, deletes, CMD) is paid
once rather than per path. Query costs are always per path.

The optimizer enumerates, per path, the partitions with per-subpath best
organizations (plus the runner-up organizations, so sharing can win even
when it is not locally optimal), then searches the cross product exactly
when small and greedily otherwise.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.configuration import IndexConfiguration, IndexedSubpath
from repro.core.cost_matrix import CostMatrix
from repro.costmodel.params import PathStatistics
from repro.errors import OptimizerError
from repro.organizations import CONFIGURABLE_ORGANIZATIONS, IndexOrganization
from repro.search.partitions import enumerate_partitions
from repro.workload.load import LoadDistribution

#: Above this many combinations the search switches to coordinate descent.
_EXACT_LIMIT = 200_000


@dataclass(frozen=True)
class PathWorkload:
    """One path's inputs: statistics plus load distribution."""

    stats: PathStatistics
    load: LoadDistribution


@dataclass(frozen=True)
class SharedIndexKey:
    """Identity of a physical index: the steps it covers plus organization."""

    steps: tuple[tuple[str, str], ...]
    organization: IndexOrganization


@dataclass
class MultiPathResult:
    """Joint configuration selection outcome."""

    configurations: list[IndexConfiguration]
    total_cost: float
    shared_savings: float
    independent_cost: float
    exact: bool

    def render(self, workloads: list[PathWorkload]) -> str:
        """Readable multi-path report."""
        lines = []
        for workload, configuration in zip(workloads, self.configurations):
            lines.append(
                f"  {workload.stats.path}: {configuration.render(workload.stats.path)}"
            )
        lines.append(
            f"joint cost {self.total_cost:.2f} "
            f"(independent {self.independent_cost:.2f}, "
            f"shared savings {self.shared_savings:.2f}, "
            f"{'exact' if self.exact else 'greedy'} search)"
        )
        return "\n".join(lines)


def _subpath_key(
    stats: PathStatistics, start: int, end: int, organization: IndexOrganization
) -> SharedIndexKey:
    path = stats.path
    steps = tuple(
        (path.class_at(position), path.attribute_at(position))
        for position in range(start, end + 1)
    )
    return SharedIndexKey(steps=steps, organization=organization)


@dataclass(frozen=True)
class _Candidate:
    """One candidate configuration of one path, with cost split."""

    configuration: IndexConfiguration
    query_cost: float
    maintenance: dict[SharedIndexKey, float]

    @property
    def total(self) -> float:
        return self.query_cost + sum(self.maintenance.values())


def _candidates_for(
    workload: PathWorkload, matrix: CostMatrix, per_row_organizations: int
) -> list[_Candidate]:
    """All partitions, each with its best few organizations per subpath."""
    stats = workload.stats
    candidates: list[_Candidate] = []
    for blocks in enumerate_partitions(matrix.length):
        # Per block: the best `per_row_organizations` organizations.
        options: list[list[IndexedSubpath]] = []
        for start, end in blocks:
            # Tie-tolerant ranking (the Min_Cost tolerance): near-tie
            # organizations rank by column order, so the candidate pool is
            # stable across platforms and cost-model reformulations.
            ranked = matrix.ranked_organizations(
                start, end, limit=per_row_organizations
            )
            options.append(
                [IndexedSubpath(start, end, org) for org in ranked]
            )
        for assignment in itertools.product(*options):
            query_cost = 0.0
            maintenance: dict[SharedIndexKey, float] = {}
            for part in assignment:
                breakdown = matrix.breakdown(part.start, part.end, part.organization)
                if breakdown is None:
                    raise OptimizerError(
                        "multi-path selection requires a computed cost matrix"
                    )
                query_cost += breakdown.query
                key = _subpath_key(stats, part.start, part.end, part.organization)
                maintenance[key] = (
                    maintenance.get(key, 0.0)
                    + breakdown.insert
                    + breakdown.delete
                    + breakdown.cmd
                )
            candidates.append(
                _Candidate(
                    configuration=IndexConfiguration(tuple(assignment)),
                    query_cost=query_cost,
                    maintenance=maintenance,
                )
            )
    return candidates


def _joint_cost(selection: tuple[_Candidate, ...]) -> tuple[float, float]:
    """Total joint cost and the sharing savings of one selection."""
    query = sum(candidate.query_cost for candidate in selection)
    merged: dict[SharedIndexKey, float] = {}
    raw = 0.0
    for candidate in selection:
        for key, cost in candidate.maintenance.items():
            raw += cost
            # A shared physical index is maintained once; the paths may
            # estimate its maintenance slightly differently (different
            # ending attributes), so charge the most expensive estimate.
            merged[key] = max(merged.get(key, 0.0), cost)
    maintenance = sum(merged.values())
    return query + maintenance, raw - maintenance


def optimize_multipath(
    workloads: list[PathWorkload],
    per_row_organizations: int = 2,
    matrices: list[CostMatrix] | None = None,
    organizations: tuple[IndexOrganization, ...] | None = None,
    workers: int | None = None,
) -> MultiPathResult:
    """Jointly select configurations for several related paths.

    Parameters
    ----------
    workloads:
        One :class:`PathWorkload` per path (same schema assumed).
    per_row_organizations:
        How many of each subpath's best organizations to consider; 1 makes
        sharing only possible when locally optimal, 2 (default) lets a
        slightly worse organization win through sharing.
    matrices:
        Precomputed cost matrices, one per workload in order (e.g. from a
        previous :meth:`CostMatrix.recompute` what-if loop). Each must be
        a computed matrix (with breakdowns) of the workload's path length;
        when given, ``organizations`` and ``workers`` are ignored.
    organizations:
        Candidate organizations for the computed matrices (default: the
        paper's MX/MIX/NIX).
    workers:
        Worker processes per matrix construction (see
        :meth:`CostMatrix.compute`).
    """
    if not workloads:
        raise OptimizerError("at least one path is required")
    if matrices is not None:
        if len(matrices) != len(workloads):
            raise OptimizerError(
                f"{len(matrices)} matrices for {len(workloads)} workloads"
            )
        for workload, matrix in zip(workloads, matrices):
            if matrix.length != workload.stats.length:
                raise OptimizerError(
                    f"matrix of length {matrix.length} cannot describe "
                    f"{workload.stats.path} (length {workload.stats.length})"
                )
    else:
        compute_organizations = (
            organizations
            if organizations is not None
            else CONFIGURABLE_ORGANIZATIONS
        )
        matrices = [
            CostMatrix.compute(
                w.stats,
                w.load,
                organizations=compute_organizations,
                workers=workers,
            )
            for w in workloads
        ]
    candidate_sets = [
        _candidates_for(workload, matrix, per_row_organizations)
        for workload, matrix in zip(workloads, matrices)
    ]
    independent = 0.0
    for candidates in candidate_sets:
        independent += min(candidate.total for candidate in candidates)

    combinations = 1
    for candidates in candidate_sets:
        combinations *= len(candidates)

    if combinations <= _EXACT_LIMIT:
        best_cost = float("inf")
        best_savings = 0.0
        best_selection: tuple[_Candidate, ...] | None = None
        for selection in itertools.product(*candidate_sets):
            cost, savings = _joint_cost(selection)
            if cost < best_cost:
                best_cost = cost
                best_savings = savings
                best_selection = selection
        assert best_selection is not None
        return MultiPathResult(
            configurations=[c.configuration for c in best_selection],
            total_cost=best_cost,
            shared_savings=best_savings,
            independent_cost=independent,
            exact=True,
        )

    # Greedy coordinate descent: start from each path's independent best,
    # then re-optimize one path at a time against the others until stable.
    selection = [
        min(candidates, key=lambda candidate: candidate.total)
        for candidates in candidate_sets
    ]
    improved = True
    while improved:
        improved = False
        for index, candidates in enumerate(candidate_sets):
            current_cost, _ = _joint_cost(tuple(selection))
            for candidate in candidates:
                trial = list(selection)
                trial[index] = candidate
                cost, _ = _joint_cost(tuple(trial))
                if cost < current_cost - 1e-12:
                    selection = trial
                    current_cost = cost
                    improved = True
    cost, savings = _joint_cost(tuple(selection))
    return MultiPathResult(
        configurations=[c.configuration for c in selection],
        total_cost=cost,
        shared_savings=savings,
        independent_cost=independent,
        exact=False,
    )
