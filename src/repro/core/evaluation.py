"""Configuration cost evaluation.

Two evaluators:

* :func:`configuration_cost` — the paper's additive evaluation: the sum of
  the matrix entries of the configuration's subpaths (Proposition 4.2).
* :func:`coupled_configuration_cost` — an *exact* extension: query costs
  are chained across subpaths with the true oid fan-in (Corollary 4.1),
  instead of the one-probe-per-subpath approximation that makes the matrix
  decomposition possible. The benchmarks use it to quantify how tight the
  paper's approximation is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import IndexConfiguration
from repro.core.cost_matrix import CostMatrix
from repro.costmodel.params import PathStatistics
from repro.costmodel.subpath import build_model
from repro.workload.load import LoadDistribution


def configuration_cost(
    matrix: CostMatrix, configuration: IndexConfiguration
) -> float:
    """Additive cost: the sum of the configuration's matrix entries."""
    return sum(
        matrix.cost(part.start, part.end, part.organization)
        for part in configuration.assignments
    )


@dataclass(frozen=True)
class CoupledCost:
    """Breakdown of the exact (coupled) configuration evaluation."""

    query: float
    insert: float
    delete: float
    cmd: float

    @property
    def total(self) -> float:
        """Sum of all components."""
        return self.query + self.insert + self.delete + self.cmd


def per_class_analytic_costs(
    stats: PathStatistics,
    configuration: IndexConfiguration,
) -> dict[tuple[int, str], dict[str, float]]:
    """Expected per-operation page accesses for every scope class.

    For each ``(position, class)`` the returned mapping holds the exact
    (coupled) expected cost of one ``query`` targeting the class, one
    ``insert`` of an object of the class, and one ``delete`` (including
    the ``CMD`` charge on the preceding subpath when the class starts a
    subpath). This is what the validation harness compares against
    measured page counts.
    """
    parts = configuration.assignments
    models = [
        build_model(stats, part.start, part.end, part.organization)
        for part in parts
    ]
    probes = [1.0] * len(parts)
    for g in range(len(parts) - 2, -1, -1):
        probes[g] = models[g + 1].emitted_oids(probes[g + 1])
    tail_cost = [0.0] * (len(parts) + 1)
    for g in range(len(parts) - 1, -1, -1):
        tail_cost[g] = tail_cost[g + 1] + models[g].hierarchy_query_cost(
            parts[g].start, probes[g]
        )

    results: dict[tuple[int, str], dict[str, float]] = {}
    for g, (part, model) in enumerate(zip(parts, models)):
        for position in range(part.start, part.end + 1):
            for member in stats.members(position):
                query = model.query_cost(position, member, probes[g]) + tail_cost[g + 1]
                insert = model.insert_cost(position, member)
                delete = model.delete_cost(position, member)
                if position == part.start and g > 0:
                    delete += models[g - 1].cmd_cost()
                results[(position, member)] = {
                    "query": query,
                    "insert": insert,
                    "delete": delete,
                }
    return results


def coupled_configuration_cost(
    stats: PathStatistics,
    load: LoadDistribution,
    configuration: IndexConfiguration,
) -> CoupledCost:
    """Exact configuration cost with cross-subpath probe chaining.

    A query with respect to class ``C_{l,x}`` in subpath ``S_g`` performs:
    the full lookup on every later subpath (each fed the oid fan-in of the
    subpath after it) plus the partial lookup within ``S_g`` starting at
    position ``l``. Maintenance costs are the same as in the additive
    evaluation (they are exactly decomposable).
    """
    parts = configuration.assignments
    models = [
        build_model(stats, part.start, part.end, part.organization)
        for part in parts
    ]
    # probes[g]: equality values fed to subpath g's ending attribute.
    probes = [1.0] * len(parts)
    for g in range(len(parts) - 2, -1, -1):
        probes[g] = models[g + 1].emitted_oids(probes[g + 1])

    # Cost of the "tail" lookups: subpaths strictly after g, probed fully.
    tail_cost = [0.0] * (len(parts) + 1)
    for g in range(len(parts) - 1, -1, -1):
        tail_cost[g] = tail_cost[g + 1] + models[g].hierarchy_query_cost(
            parts[g].start, probes[g]
        )

    query = 0.0
    insert = 0.0
    delete = 0.0
    cmd = 0.0
    for g, (part, model) in enumerate(zip(parts, models)):
        for position in range(part.start, part.end + 1):
            for member in stats.members(position):
                triplet = load.triplet(member)
                if triplet.query:
                    own = model.query_cost(position, member, probes[g])
                    query += triplet.query * (own + tail_cost[g + 1])
                if triplet.insert:
                    insert += triplet.insert * model.insert_cost(position, member)
                if triplet.delete:
                    delete += triplet.delete * model.delete_cost(position, member)
        if part.end < stats.length:
            per_deletion = model.cmd_cost()
            if per_deletion:
                following = sum(
                    load.triplet(member).delete
                    for member in stats.members(part.end + 1)
                )
                cmd += following * per_deletion
    return CoupledCost(query=query, insert=insert, delete=delete, cmd=cmd)
