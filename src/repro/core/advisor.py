"""The high-level advisor API: one call from statistics to configuration.

:func:`advise` runs the complete pipeline of Section 5 — ``Cost_Matrix``,
``Min_Cost``, ``Opt_Ind_Con`` — plus the baselines the paper compares
against (single-index whole-path configurations, exhaustive enumeration)
and packages everything in an :class:`AdvisorReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost_matrix import CostMatrix
from repro.core.dynprog import DynamicProgramResult, dynamic_program
from repro.core.exhaustive import ExhaustiveResult, exhaustive_search
from repro.core.optimizer import OptimizationResult, optimize
from repro.costmodel.params import PathStatistics
from repro.organizations import CONFIGURABLE_ORGANIZATIONS, IndexOrganization
from repro.workload.load import LoadDistribution


@dataclass
class AdvisorReport:
    """Everything the advisor computed for one path and workload."""

    stats: PathStatistics
    load: LoadDistribution
    matrix: CostMatrix
    optimal: OptimizationResult
    exhaustive: ExhaustiveResult | None = None
    dynprog: DynamicProgramResult | None = None
    single_index_costs: dict[IndexOrganization, float] = field(default_factory=dict)

    @property
    def best_single_index(self) -> tuple[IndexOrganization, float]:
        """The cheapest whole-path single-index configuration."""
        organization = min(self.single_index_costs, key=self.single_index_costs.get)
        return organization, self.single_index_costs[organization]

    @property
    def improvement_factor(self) -> float:
        """Best single-index cost divided by the optimal configuration cost.

        The paper's headline: splitting ``P_exa`` "decreases the processing
        cost of a path by a factor 2.7" against the whole-path NIX.
        """
        if self.optimal.cost <= 0:
            return float("inf")
        return self.best_single_index[1] / self.optimal.cost

    def render(self) -> str:
        """Multi-line, human-readable report."""
        path = self.stats.path
        lines = [
            f"path: {path}",
            "",
            self.matrix.render(path),
            "",
            f"optimal: {self.optimal.render(path)}",
        ]
        breakdown_lines = []
        for assignment in self.optimal.configuration.assignments:
            breakdown = self.matrix.breakdown(
                assignment.start, assignment.end, assignment.organization
            )
            if breakdown is None:
                continue
            breakdown_lines.append(
                f"  {assignment.render(path)}: query={breakdown.query:.2f} "
                f"insert={breakdown.insert:.2f} delete={breakdown.delete:.2f} "
                f"cmd={breakdown.cmd:.2f}"
            )
        if breakdown_lines:
            lines.append("cost breakdown per subpath:")
            lines.extend(breakdown_lines)
        if self.single_index_costs:
            lines.append("single-index baselines:")
            for organization, cost in sorted(
                self.single_index_costs.items(), key=lambda item: item[1]
            ):
                lines.append(f"  {{({path}, {organization})}}: {cost:.2f}")
            lines.append(
                f"improvement over best single index: {self.improvement_factor:.2f}x"
            )
        if self.exhaustive is not None:
            lines.append(
                f"exhaustive: cost {self.exhaustive.cost:.2f} over "
                f"{self.exhaustive.evaluated} configurations"
            )
        if self.dynprog is not None:
            lines.append(
                f"dynamic program: cost {self.dynprog.cost:.2f} "
                f"({self.dynprog.rows_inspected} row lookups)"
            )
        return "\n".join(lines)


def advise(
    stats: PathStatistics,
    load: LoadDistribution,
    organizations: tuple[IndexOrganization, ...] = CONFIGURABLE_ORGANIZATIONS,
    include_noindex: bool = False,
    run_baselines: bool = True,
    keep_trace: bool = False,
    range_selectivity: float | None = None,
) -> AdvisorReport:
    """Select the optimal index configuration for a path.

    Parameters
    ----------
    stats:
        Path statistics (the Figure 7 inputs).
    load:
        The workload distribution over the path's scope.
    organizations:
        Candidate organizations per subpath (default: MX, MIX, NIX).
    include_noindex:
        Also consider leaving subpaths unindexed (Section 6 extension).
    run_baselines:
        Compute exhaustive enumeration, the DP optimum and the
        single-index whole-path baselines alongside.
    keep_trace:
        Record the branch-and-bound decision trace.
    range_selectivity:
        Treat the workload's queries as range predicates covering this
        fraction of the distinct ending values.
    """
    matrix = CostMatrix.compute(
        stats,
        load,
        organizations=organizations,
        include_noindex=include_noindex,
        range_selectivity=range_selectivity,
    )
    optimal = optimize(matrix, keep_trace=keep_trace)
    report = AdvisorReport(stats=stats, load=load, matrix=matrix, optimal=optimal)
    if run_baselines:
        report.exhaustive = exhaustive_search(matrix)
        report.dynprog = dynamic_program(matrix)
        report.single_index_costs = {
            organization: matrix.cost(1, stats.length, organization)
            for organization in matrix.organizations
        }
    return report
