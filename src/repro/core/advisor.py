"""The high-level advisor API: one call from statistics to configuration.

:func:`advise` runs the complete pipeline of Section 5 — ``Cost_Matrix``,
``Min_Cost``, then a pluggable search strategy from :mod:`repro.search`
(``Opt_Ind_Con`` branch and bound by default) — plus the baselines the
paper compares against (single-index whole-path configurations,
exhaustive enumeration, the DP optimum) and packages everything in an
:class:`AdvisorReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost_matrix import CostMatrix
from repro.costmodel.params import PathStatistics
from repro.errors import DeadlineExceeded, OptimizerError
from repro.obs.recorder import resolve_recorder
from repro.organizations import CONFIGURABLE_ORGANIZATIONS, IndexOrganization
from repro.resilience.degrade import degraded_search
from repro.search import SearchResult, get_strategy
from repro.workload.load import LoadDistribution

#: The default search strategy: the paper's ``Opt_Ind_Con``.
DEFAULT_STRATEGY = "branch_and_bound"

#: Longest path for which the exhaustive baseline is run alongside the
#: chosen strategy: 2^(n-1) partitions stay under ~64k. Beyond it only
#: the O(n²) dynamic program serves as the exact baseline, so anytime
#: strategies remain usable on the long paths they were built for.
EXHAUSTIVE_BASELINE_MAX_LENGTH = 17


@dataclass
class AdvisorReport:
    """Everything the advisor computed for one path and workload.

    The search outcomes (``optimal``, ``exhaustive``, ``dynprog``) are
    unified :class:`~repro.search.SearchResult` objects; strategy-specific
    payloads such as the DP's ``rows_inspected`` live in their ``extras``
    (before the ``repro.search`` extraction these fields were per-searcher
    dataclasses). ``exhaustive`` is only populated for paths up to
    :data:`EXHAUSTIVE_BASELINE_MAX_LENGTH`.
    """

    stats: PathStatistics
    load: LoadDistribution
    matrix: CostMatrix
    optimal: SearchResult
    exhaustive: SearchResult | None = None
    dynprog: SearchResult | None = None
    single_index_costs: dict[IndexOrganization, float] = field(default_factory=dict)

    @property
    def best_single_index(self) -> tuple[IndexOrganization, float]:
        """The cheapest whole-path single-index configuration.

        Raises :class:`~repro.errors.OptimizerError` when no single-index
        baselines were computed (``advise(..., run_baselines=False)``).
        """
        if not self.single_index_costs:
            raise OptimizerError(
                "no single-index baselines were computed; call "
                "advise(..., run_baselines=True) to populate them"
            )
        organization = min(self.single_index_costs, key=self.single_index_costs.get)
        return organization, self.single_index_costs[organization]

    @property
    def improvement_factor(self) -> float:
        """Best single-index cost divided by the optimal configuration cost.

        The paper's headline: splitting ``P_exa`` "decreases the processing
        cost of a path by a factor 2.7" against the whole-path NIX.
        Raises :class:`~repro.errors.OptimizerError` when no single-index
        baselines were computed (``advise(..., run_baselines=False)``).
        """
        best = self.best_single_index[1]
        if self.optimal.cost <= 0:
            return float("inf")
        return best / self.optimal.cost

    def render(self) -> str:
        """Multi-line, human-readable report."""
        path = self.stats.path
        lines = [
            f"path: {path}",
            "",
            self.matrix.render(path),
            "",
            f"optimal: {self.optimal.render(path)}",
        ]
        if self.optimal.strategy and self.optimal.strategy != DEFAULT_STRATEGY:
            lines.append(f"strategy: {self.optimal.strategy}")
        breakdown_lines = []
        for assignment in self.optimal.configuration.assignments:
            breakdown = self.matrix.breakdown(
                assignment.start, assignment.end, assignment.organization
            )
            if breakdown is None:
                continue
            breakdown_lines.append(
                f"  {assignment.render(path)}: query={breakdown.query:.2f} "
                f"insert={breakdown.insert:.2f} delete={breakdown.delete:.2f} "
                f"cmd={breakdown.cmd:.2f}"
            )
        if breakdown_lines:
            lines.append("cost breakdown per subpath:")
            lines.extend(breakdown_lines)
        if self.single_index_costs:
            lines.append("single-index baselines:")
            for organization, cost in sorted(
                self.single_index_costs.items(), key=lambda item: item[1]
            ):
                lines.append(f"  {{({path}, {organization})}}: {cost:.2f}")
            lines.append(
                f"improvement over best single index: {self.improvement_factor:.2f}x"
            )
        if self.exhaustive is not None:
            lines.append(
                f"exhaustive: cost {self.exhaustive.cost:.2f} over "
                f"{self.exhaustive.evaluated} configurations"
            )
        if self.dynprog is not None:
            lines.append(
                f"dynamic program: cost {self.dynprog.cost:.2f} "
                f"({self.dynprog.extras['rows_inspected']} row lookups)"
            )
        return "\n".join(lines)


def advise(
    stats: PathStatistics,
    load: LoadDistribution,
    organizations: tuple[IndexOrganization, ...] = CONFIGURABLE_ORGANIZATIONS,
    include_noindex: bool = False,
    run_baselines: bool = True,
    keep_trace: bool = False,
    range_selectivity: float | None = None,
    strategy: str = DEFAULT_STRATEGY,
    workers: int | None = None,
    kernel: str = "auto",
    deadline=None,
    degradation=None,
    recorder=None,
    **strategy_options,
) -> AdvisorReport:
    """Select the optimal index configuration for a path.

    Parameters
    ----------
    stats:
        Path statistics (the Figure 7 inputs).
    load:
        The workload distribution over the path's scope.
    organizations:
        Candidate organizations per subpath (default: MX, MIX, NIX).
    include_noindex:
        Also consider leaving subpaths unindexed (Section 6 extension).
    run_baselines:
        Compute exhaustive enumeration (paths up to
        :data:`EXHAUSTIVE_BASELINE_MAX_LENGTH` only — beyond that the
        2^(n-1) sweep is infeasible), the DP optimum and the
        single-index whole-path baselines alongside.
    keep_trace:
        Record the search strategy's decision trace.
    range_selectivity:
        Treat the workload's queries as range predicates covering this
        fraction of the distinct ending values.
    strategy:
        Registered search strategy name (see
        :func:`repro.search.available_strategies`); defaults to the
        paper's branch and bound. ``"greedy_beam"`` gives anytime
        near-optimal answers on long paths.
    workers:
        Worker processes for the ``Cost_Matrix`` construction (see
        :meth:`~repro.core.cost_matrix.CostMatrix.compute`): ``None``
        auto-parallelizes long paths, ``0`` forces serial, ``N`` uses
        exactly ``N`` processes. The search itself is always in-process.
    kernel:
        Evaluation engine for the matrix construction (see
        :meth:`~repro.core.cost_matrix.CostMatrix.compute`):
        ``"auto"`` (default) uses the columnar numpy kernel when
        available, ``"columnar"``/``"legacy"`` force one engine. All
        kernels produce bit-identical matrices.
    deadline:
        An optional :class:`~repro.resilience.Deadline` bounding the
        search. On expiry the exact strategy is abandoned and the
        degradation ladder answers instead (shrinking greedy beams; see
        :func:`repro.resilience.degraded_search`) — the report's
        ``optimal`` then carries ``extras["degraded"]`` and the rung
        that produced it. Baselines are skipped once the deadline has
        expired. The matrix construction itself is never bounded: cost
        rows are the ground truth every rung prices against.
    degradation:
        An optional
        :class:`~repro.resilience.DegradationReport` collecting a
        structured record of every fallback taken (deadline rungs,
        worker-pool serial fallbacks, kernel downgrades). When omitted,
        deadline fallbacks are still applied — just not recorded.
    recorder:
        An optional :class:`~repro.obs.Recorder` collecting tracing
        spans and metrics for the whole pipeline (matrix build, kernel
        lowering/fold, search, baselines). ``None`` (the default) means
        no recording and effectively zero overhead.
    strategy_options:
        Extra keyword options for the strategy constructor (e.g.
        ``width=4`` for ``greedy_beam``).
    """
    # Resolve the strategy first: a bad name or option must fail before
    # the expensive cost-model run, not after.
    searcher = get_strategy(strategy, **strategy_options)
    recorder = resolve_recorder(recorder)
    with recorder.span("advise", strategy=strategy, length=stats.length):
        recorder.counter("advise.calls").add()
        matrix = CostMatrix.compute(
            stats,
            load,
            organizations=organizations,
            include_noindex=include_noindex,
            range_selectivity=range_selectivity,
            workers=workers,
            kernel=kernel,
            degradation=degradation,
            recorder=recorder,
        )
        search_options: dict = {"keep_trace": keep_trace}
        if deadline is not None:
            search_options["deadline"] = deadline
        if recorder.enabled:
            # Only forwarded when recording: third-party strategies
            # registered before this keyword existed keep working.
            search_options["recorder"] = recorder
        try:
            optimal = searcher.search(matrix, **search_options)
        except DeadlineExceeded as error:
            if degradation is not None:
                degradation.record(
                    "advise",
                    "exact_abandoned",
                    "deadline_expired",
                    strategy=strategy,
                    message=str(error),
                )
            optimal = degraded_search(
                matrix,
                deadline=deadline,
                degradation=degradation,
                keep_trace=keep_trace,
                layer="advise",
                recorder=recorder,
            )
        report = AdvisorReport(
            stats=stats, load=load, matrix=matrix, optimal=optimal
        )
        if run_baselines and deadline is not None and deadline.expired:
            # The budget is gone: answering beat completeness, and the
            # skipped baselines must not pass silently.
            if degradation is not None:
                degradation.record(
                    "advise", "baselines_skipped", "deadline_expired"
                )
            run_baselines = False
        if run_baselines:
            with recorder.span("advise.baselines", length=stats.length):
                baseline_options: dict = {}
                if recorder.enabled:
                    baseline_options["recorder"] = recorder
                # A baseline that *is* the chosen strategy was already
                # computed.
                if strategy == "exhaustive":
                    report.exhaustive = optimal
                elif stats.length <= EXHAUSTIVE_BASELINE_MAX_LENGTH:
                    report.exhaustive = get_strategy("exhaustive").search(
                        matrix, **baseline_options
                    )
                # Both DP registrations compute the identical exact optimum.
                report.dynprog = (
                    optimal
                    if strategy
                    in ("dynamic_program", "incremental_dynamic_program")
                    else get_strategy("dynamic_program").search(
                        matrix, **baseline_options
                    )
                )
                report.single_index_costs = {
                    organization: matrix.cost(1, stats.length, organization)
                    for organization in matrix.organizations
                }
    return report
