"""Physical size constants.

The paper treats page size, key/oid/pointer lengths and the derived
``pr``/``pm`` parameters as inputs ("we consider the values for pr_X and
pm_X as input parameters"). :class:`SizeModel` centralizes them so the
analytic cost model and the operational simulator use identical numbers.

Defaults are chosen to be era-plausible (4 KiB pages, 8-byte oids) but
every field can be overridden.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import StorageError


@dataclass(frozen=True)
class SizeModel:
    """Physical constants, all in bytes unless stated otherwise.

    Attributes
    ----------
    page_size:
        ``p`` in the paper's formulas.
    oid_size:
        Length of an object identifier.
    pointer_size:
        Length of a physical page pointer inside index nodes.
    atomic_key_size:
        Length of an atomic key value (the ending attribute ``A_n``).
    numchild_size:
        Length of the ``numchild`` counter stored next to oids in NIX
        primary records for multi-valued attributes.
    record_header_size:
        Fixed overhead of one index record (key-length field, counts).
    class_directory_entry_size:
        Per-class entry in the directory of a NIX primary record (class id
        plus offset, Figure 3).
    object_overhead_size:
        Per-object overhead in heap pages.
    object_size:
        Default payload size of one stored object (used by heap extents
        and the no-index traversal model when no per-class size is given).
    """

    page_size: int = 4096
    oid_size: int = 8
    pointer_size: int = 8
    atomic_key_size: int = 16
    numchild_size: int = 4
    record_header_size: int = 8
    class_directory_entry_size: int = 12
    object_overhead_size: int = 16
    object_size: int = 128

    def __post_init__(self) -> None:
        for name in (
            "page_size",
            "oid_size",
            "pointer_size",
            "atomic_key_size",
            "numchild_size",
            "record_header_size",
            "class_directory_entry_size",
            "object_overhead_size",
            "object_size",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise StorageError(f"{name} must be a positive integer, got {value!r}")
        if self.page_size < self.oid_size + self.pointer_size + self.atomic_key_size:
            raise StorageError("page too small to hold a single index entry")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def key_size(self, atomic: bool) -> int:
        """Key length: atomic ending-attribute value or an oid key."""
        return self.atomic_key_size if atomic else self.oid_size

    def nonleaf_entry_size(self, atomic_key: bool) -> int:
        """Size of a ``(attribute value, pointer)`` non-leaf pair."""
        return self.key_size(atomic_key) + self.pointer_size

    def nonleaf_fanout(self, atomic_key: bool) -> int:
        """How many children a non-leaf node can address."""
        fanout = self.page_size // self.nonleaf_entry_size(atomic_key)
        return max(fanout, 2)

    def pages_for(self, record_length: float) -> int:
        """``ceil(ln / p)``: pages occupied by a record of the given length."""
        if record_length <= 0:
            return 0
        return max(1, math.ceil(record_length / self.page_size))

    def records_per_page(self, record_length: float) -> int:
        """How many records of a given length fit in one page (min 1)."""
        if record_length <= 0:
            raise StorageError("record length must be positive")
        return max(1, int(self.page_size // max(record_length, 1.0)))

    def leaf_pages(self, record_count: float, record_length: float) -> float:
        """``np``: leaf pages needed for ``record_count`` records.

        Records longer than a page each occupy ``ceil(ln/p)`` pages;
        shorter records are packed ``floor(p/ln)`` per page.
        """
        if record_count <= 0:
            return 0.0
        if record_length > self.page_size:
            return record_count * self.pages_for(record_length)
        return max(1.0, record_count / self.records_per_page(record_length))

    def describe_pages(self, pages: float) -> str:
        """Human-readable page count: ``"1234 pages (4.8 MiB)"``.

        Storage budgets (``optimize_with_budget``,
        ``optimize_multipath(budget_pages=...)``) are stated in pages
        because every cost formula is; reports translate them back to
        bytes so the numbers mean something to an administrator.
        """
        if pages < 0:
            raise StorageError(f"page count cannot be negative: {pages}")
        size = pages * self.page_size
        for unit, scale in (("GiB", 2**30), ("MiB", 2**20), ("KiB", 2**10)):
            if size >= scale:
                return f"{pages:.0f} pages ({size / scale:.1f} {unit})"
        return f"{pages:.0f} pages ({size:.0f} B)"
