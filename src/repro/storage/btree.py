"""An operational B+-tree with page-access accounting.

Matches the paper's physical assumptions (Section 3.1):

* non-leaf records are ``(attribute value, pointer)`` pairs;
* leaf nodes contain the index records and are chained;
* an index record longer than a page spills into an overflow chain of
  dedicated pages (the leaf keeps a short stub), so retrieving it costs
  the tree descent plus the record pages — the analytic ``h - 1 + pr``
  shape.

Every node occupies exactly one page of the :class:`~repro.storage.pager.Pager`,
which counts the reads and writes.

Deletion uses the *lazy* strategy: records are removed in place and empty
nodes are unlinked, but non-empty nodes are never rebalanced. Heights only
shrink when the root collapses. This keeps all structural invariants
(sorted keys, uniform leaf depth, correct chaining) while avoiding the
merge/borrow machinery that page-access counts do not need.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterator

from repro.errors import StorageError
from repro.storage.pager import Pager
from repro.storage.sizes import SizeModel


class _Record:
    """A stored index record: opaque value plus its byte size."""

    __slots__ = ("value", "size", "overflow_pages")

    def __init__(self, value: object, size: int, overflow_pages: list[int]):
        self.value = value
        self.size = size
        self.overflow_pages = overflow_pages


class _Leaf:
    __slots__ = ("page_id", "keys", "records", "next_leaf", "prev_leaf")

    def __init__(self, page_id: int):
        self.page_id = page_id
        self.keys: list[object] = []
        self.records: list[_Record] = []
        self.next_leaf: _Leaf | None = None
        self.prev_leaf: _Leaf | None = None


class _Internal:
    __slots__ = ("page_id", "keys", "children")

    def __init__(self, page_id: int):
        self.page_id = page_id
        # keys[i] is the smallest key reachable under children[i + 1].
        self.keys: list[object] = []
        self.children: list[object] = []


class BPlusTree:
    """A B+-tree keyed by comparable Python values.

    Parameters
    ----------
    pager:
        The accounting pager; one page per node, plus overflow pages.
    sizes:
        Physical constants; determines fanout and leaf byte budget.
    atomic_keys:
        Whether keys are atomic attribute values (longer) or oids.
    name:
        Cosmetic identifier used in error messages.
    """

    def __init__(
        self,
        pager: Pager,
        sizes: SizeModel,
        atomic_keys: bool = True,
        name: str = "index",
    ) -> None:
        self._pager = pager
        self._sizes = sizes
        self._name = name
        self._fanout = sizes.nonleaf_fanout(atomic_keys)
        self._leaf_budget = sizes.page_size - sizes.record_header_size
        self._stub_size = sizes.key_size(atomic_keys) + sizes.pointer_size
        self._root: _Leaf | _Internal = _Leaf(pager.allocate())
        self._record_count = 0

    # ------------------------------------------------------------------
    # public geometry
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Identifier given at construction."""
        return self._name

    @property
    def height(self) -> int:
        """Number of levels, leaf level included (``h_X`` in the paper)."""
        height = 1
        node = self._root
        while isinstance(node, _Internal):
            height += 1
            node = node.children[0]
        return height

    @property
    def record_count(self) -> int:
        """Number of stored index records (distinct keys)."""
        return self._record_count

    def leaf_page_count(self) -> int:
        """Number of leaf pages (``np`` in the paper), overflow excluded."""
        count = 0
        leaf = self._leftmost_leaf()
        while leaf is not None:
            count += 1
            leaf = leaf.next_leaf
        return count

    def node_count(self) -> int:
        """Total number of tree nodes (pages), overflow excluded."""
        total = 0
        stack: list[object] = [self._root]
        while stack:
            node = stack.pop()
            total += 1
            if isinstance(node, _Internal):
                stack.extend(node.children)
        return total

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(self, key: object, partial_pages: int | None = None) -> object | None:
        """Retrieve the record stored under ``key``, counting page reads.

        ``partial_pages`` limits how many overflow pages are fetched for an
        oversized record (the paper's ``pr`` < full size case: "some
        organizations retrieve only a fraction of the index record").
        Returns the record value, or ``None`` when the key is absent.
        """
        leaf, index = self._descend_counted(key)
        if index is None:
            return None
        record = leaf.records[index]
        for page_id in self._overflow_slice(record, partial_pages):
            self._pager.read(page_id)
        return record.value

    def search_direct(self, key: object, partial_pages: int | None = None) -> object | None:
        """Retrieve a record through a direct pointer (no tree descent).

        Models following a stored physical pointer (e.g. the pointer array
        of a NIX 3-tuple, Figure 4): only the leaf page holding the record
        and its overflow pages are charged, not the root-to-leaf path.
        """
        leaf, index = self._descend(key)
        if index is None:
            return None
        self._pager.read(leaf.page_id)
        record = leaf.records[index]
        for page_id in self._overflow_slice(record, partial_pages):
            self._pager.read(page_id)
        return record.value

    def update_direct(self, key: object, value: object, size: int) -> None:
        """Rewrite a record through a direct pointer (no tree descent).

        Charges the leaf page write and the new record image's overflow
        pages; the caller is assumed to have already read the record (via
        :meth:`search_direct`).
        """
        if size <= 0:
            raise StorageError(f"{self._name}: record size must be positive")
        path = self._descend_path(key)
        leaf = path[-1][0]
        assert isinstance(leaf, _Leaf)
        position = bisect.bisect_left(leaf.keys, key)  # type: ignore[type-var]
        if position >= len(leaf.keys) or leaf.keys[position] != key:
            raise StorageError(f"{self._name}: direct update of missing key {key!r}")
        old = leaf.records[position]
        self._free_overflow(old)
        record = self._make_record(value, size)
        leaf.records[position] = record
        for page_id in record.overflow_pages:
            self._pager.write(page_id)
        self._pager.write(leaf.page_id)
        # Structural splits (the record may have grown) charge their own
        # page writes; the descent itself was free (pointer access).
        self._split_upward(path)

    def contains(self, key: object) -> bool:
        """Uncounted membership test (for assertions and tests)."""
        leaf, index = self._descend(key)
        return index is not None

    def get(self, key: object) -> object | None:
        """Uncounted lookup (for assertions and tests)."""
        leaf, index = self._descend(key)
        return leaf.records[index].value if index is not None else None

    def range_scan(self, low: object, high: object) -> list[tuple[object, object]]:
        """All ``(key, value)`` with ``low <= key <= high``, counting reads.

        Uses the leaf chaining the paper prescribes for range predicates.
        """
        results: list[tuple[object, object]] = []
        leaf, _ = self._descend_counted(low)
        while leaf is not None:
            consumed = False
            for key, record in zip(leaf.keys, leaf.records):
                if key < low:  # type: ignore[operator]
                    continue
                if key > high:  # type: ignore[operator]
                    return results
                for page_id in record.overflow_pages:
                    self._pager.read(page_id)
                results.append((key, record.value))
                consumed = True
            next_leaf = leaf.next_leaf
            if next_leaf is not None and (consumed or not leaf.keys):
                self._pager.read(next_leaf.page_id)
            leaf = next_leaf
        return results

    # ------------------------------------------------------------------
    # modification
    # ------------------------------------------------------------------
    def insert(self, key: object, value: object, size: int) -> None:
        """Insert a new record; raises if the key already exists."""
        if size <= 0:
            raise StorageError(f"{self._name}: record size must be positive")
        path = self._descend_path_counted(key)
        leaf = path[-1][0]
        assert isinstance(leaf, _Leaf)
        position = bisect.bisect_left(leaf.keys, key)  # type: ignore[type-var]
        if position < len(leaf.keys) and leaf.keys[position] == key:
            raise StorageError(f"{self._name}: duplicate key {key!r}")
        record = self._make_record(value, size)
        leaf.keys.insert(position, key)
        leaf.records.insert(position, record)
        self._record_count += 1
        self._pager.write(leaf.page_id)
        self._split_upward(path)

    def update(self, key: object, value: object, size: int) -> None:
        """Replace the record stored under an existing key.

        Counts the descent, the overflow rewrite (only the pages of the new
        record image: "only the pages which should be modified are
        retrieved and updated"), and the leaf write.
        """
        if size <= 0:
            raise StorageError(f"{self._name}: record size must be positive")
        path = self._descend_path_counted(key)
        leaf = path[-1][0]
        assert isinstance(leaf, _Leaf)
        position = bisect.bisect_left(leaf.keys, key)  # type: ignore[type-var]
        if position >= len(leaf.keys) or leaf.keys[position] != key:
            raise StorageError(f"{self._name}: update of missing key {key!r}")
        old = leaf.records[position]
        self._free_overflow(old)
        record = self._make_record(value, size)
        leaf.records[position] = record
        for page_id in record.overflow_pages:
            self._pager.write(page_id)
        self._pager.write(leaf.page_id)
        self._split_upward(path)

    def upsert(self, key: object, value: object, size: int) -> None:
        """Insert or update, whichever applies."""
        if self.contains(key):
            self.update(key, value, size)
        else:
            self.insert(key, value, size)

    def delete(self, key: object) -> object:
        """Remove a record, returning its value; raises if absent."""
        path = self._descend_path_counted(key)
        leaf = path[-1][0]
        assert isinstance(leaf, _Leaf)
        position = bisect.bisect_left(leaf.keys, key)  # type: ignore[type-var]
        if position >= len(leaf.keys) or leaf.keys[position] != key:
            raise StorageError(f"{self._name}: delete of missing key {key!r}")
        record = leaf.records.pop(position)
        leaf.keys.pop(position)
        self._record_count -= 1
        self._free_overflow(record)
        self._pager.write(leaf.page_id)
        if not leaf.keys:
            self._unlink_empty(path)
        return record.value

    # ------------------------------------------------------------------
    # uncounted iteration / verification (test support)
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[object, object]]:
        """All records in key order, without touching the counters."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, (record.value for record in leaf.records))
            leaf = leaf.next_leaf

    def check_invariants(self) -> None:
        """Assert structural invariants; raises :class:`StorageError`.

        * keys strictly increasing across the whole leaf chain;
        * every leaf reachable from the root is on the chain and vice versa;
        * all leaves at the same depth;
        * internal separator keys bound their subtrees;
        * fanout within limits (except lazily-deleted underflow).
        """
        depths: set[int] = set()
        chain = []
        leaf = self._leftmost_leaf()
        while leaf is not None:
            chain.append(leaf.page_id)
            leaf = leaf.next_leaf
        reachable: list[int] = []

        def visit(node: object, depth: int, low: object, high: object) -> None:
            if isinstance(node, _Leaf):
                depths.add(depth)
                reachable.append(node.page_id)
                for key in node.keys:
                    self._check_bound(key, low, high)
                sorted_keys = sorted(node.keys)  # type: ignore[type-var]
                if sorted_keys != node.keys:
                    raise StorageError(f"{self._name}: unsorted leaf keys")
                return
            assert isinstance(node, _Internal)
            if len(node.children) != len(node.keys) + 1:
                raise StorageError(f"{self._name}: malformed internal node")
            if len(node.children) > self._fanout + 1:
                raise StorageError(f"{self._name}: fanout overflow")
            bounds = [low, *node.keys, high]
            for index, child in enumerate(node.children):
                visit(child, depth + 1, bounds[index], bounds[index + 1])

        visit(self._root, 0, None, None)
        if len(depths) > 1:
            raise StorageError(f"{self._name}: leaves at different depths")
        if sorted(chain) != sorted(reachable):
            raise StorageError(f"{self._name}: leaf chain does not match tree")
        keys = [key for key, _ in self.items()]
        if any(a >= b for a, b in zip(keys, keys[1:])):  # type: ignore[operator]
            raise StorageError(f"{self._name}: keys not strictly increasing")

    def _check_bound(self, key: object, low: object, high: object) -> None:
        if low is not None and key < low:  # type: ignore[operator]
            raise StorageError(f"{self._name}: key below subtree bound")
        if high is not None and key >= high:  # type: ignore[operator]
            raise StorageError(f"{self._name}: key above subtree bound")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _leftmost_leaf(self) -> _Leaf | None:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        assert isinstance(node, _Leaf)
        return node

    def _make_record(self, value: object, size: int) -> _Record:
        overflow: list[int] = []
        if size > self._leaf_budget:
            overflow = self._pager.allocate_many(self._sizes.pages_for(size))
            for page_id in overflow:
                self._pager.write(page_id)
        return _Record(value=value, size=size, overflow_pages=overflow)

    def _free_overflow(self, record: _Record) -> None:
        for page_id in record.overflow_pages:
            self._pager.free(page_id)
        record.overflow_pages = []

    def _overflow_slice(self, record: _Record, partial_pages: int | None) -> list[int]:
        if partial_pages is None:
            return record.overflow_pages
        if partial_pages < 0:
            raise StorageError("partial_pages must be non-negative")
        return record.overflow_pages[:partial_pages]

    def _leaf_weight(self, record: _Record) -> int:
        return self._stub_size if record.overflow_pages else record.size

    def _leaf_overfull(self, leaf: _Leaf) -> bool:
        if len(leaf.keys) <= 1:
            return False
        return sum(self._leaf_weight(r) for r in leaf.records) > self._leaf_budget

    def _descend(self, key: object) -> tuple[_Leaf, int | None]:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[bisect.bisect_right(node.keys, key)]  # type: ignore[type-var]
        assert isinstance(node, _Leaf)
        position = bisect.bisect_left(node.keys, key)  # type: ignore[type-var]
        if position < len(node.keys) and node.keys[position] == key:
            return node, position
        return node, None

    def _descend_counted(self, key: object) -> tuple[_Leaf, int | None]:
        node = self._root
        self._pager.read(node.page_id)
        while isinstance(node, _Internal):
            node = node.children[bisect.bisect_right(node.keys, key)]  # type: ignore[type-var]
            self._pager.read(node.page_id)
        assert isinstance(node, _Leaf)
        position = bisect.bisect_left(node.keys, key)  # type: ignore[type-var]
        if position < len(node.keys) and node.keys[position] == key:
            return node, position
        return node, None

    def _descend_path_counted(
        self, key: object
    ) -> list[tuple[object, int | None]]:
        """Root-to-leaf path as ``(node, child index taken)`` pairs."""
        path: list[tuple[object, int | None]] = []
        node = self._root
        self._pager.read(node.page_id)
        while isinstance(node, _Internal):
            index = bisect.bisect_right(node.keys, key)  # type: ignore[type-var]
            path.append((node, index))
            node = node.children[index]
            self._pager.read(node.page_id)
        path.append((node, None))
        return path

    def _descend_path(self, key: object) -> list[tuple[object, int | None]]:
        """Uncounted root-to-leaf path (for direct-pointer operations)."""
        path: list[tuple[object, int | None]] = []
        node = self._root
        while isinstance(node, _Internal):
            index = bisect.bisect_right(node.keys, key)  # type: ignore[type-var]
            path.append((node, index))
            node = node.children[index]
        path.append((node, None))
        return path

    def _split_upward(self, path: list[tuple[object, int | None]]) -> None:
        """Split overfull nodes from the leaf upward."""
        leaf = path[-1][0]
        assert isinstance(leaf, _Leaf)
        carry: tuple[object, object] | None = None  # (separator key, new node)
        if self._leaf_overfull(leaf):
            carry = self._split_leaf(leaf)
        for node, child_index in reversed(path[:-1]):
            if carry is None:
                return
            assert isinstance(node, _Internal) and child_index is not None
            separator, new_child = carry
            node.keys.insert(child_index, separator)
            node.children.insert(child_index + 1, new_child)
            self._pager.write(node.page_id)
            carry = None
            if len(node.children) > self._fanout:
                carry = self._split_internal(node)
        if carry is not None:
            separator, new_child = carry
            new_root = _Internal(self._pager.allocate())
            new_root.keys = [separator]
            new_root.children = [self._root, new_child]
            self._root = new_root
            self._pager.write(new_root.page_id)

    def _split_leaf(self, leaf: _Leaf) -> tuple[object, _Leaf]:
        middle = len(leaf.keys) // 2
        sibling = _Leaf(self._pager.allocate())
        sibling.keys = leaf.keys[middle:]
        sibling.records = leaf.records[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.records = leaf.records[:middle]
        sibling.next_leaf = leaf.next_leaf
        if sibling.next_leaf is not None:
            sibling.next_leaf.prev_leaf = sibling
        sibling.prev_leaf = leaf
        leaf.next_leaf = sibling
        self._pager.write(leaf.page_id)
        self._pager.write(sibling.page_id)
        return sibling.keys[0], sibling

    def _split_internal(self, node: _Internal) -> tuple[object, _Internal]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        sibling = _Internal(self._pager.allocate())
        sibling.keys = node.keys[middle + 1 :]
        sibling.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        self._pager.write(node.page_id)
        self._pager.write(sibling.page_id)
        return separator, sibling

    def _unlink_empty(self, path: list[tuple[object, int | None]]) -> None:
        """Remove an emptied leaf and cascade through emptied ancestors."""
        leaf = path[-1][0]
        assert isinstance(leaf, _Leaf)
        if len(path) == 1:
            return  # The root leaf may stay empty.
        if leaf.prev_leaf is not None:
            leaf.prev_leaf.next_leaf = leaf.next_leaf
        if leaf.next_leaf is not None:
            leaf.next_leaf.prev_leaf = leaf.prev_leaf
        self._pager.free(leaf.page_id)
        child: object = leaf
        for node, child_index in reversed(path[:-1]):
            assert isinstance(node, _Internal) and child_index is not None
            position = node.children.index(child)
            node.children.pop(position)
            if node.keys:
                node.keys.pop(max(position - 1, 0))
            self._pager.write(node.page_id)
            if node.children:
                break
            self._pager.free(node.page_id)
            child = node
        self._collapse_root()

    def _collapse_root(self) -> None:
        while isinstance(self._root, _Internal) and len(self._root.children) == 1:
            old = self._root
            self._root = old.children[0]  # type: ignore[assignment]
            self._pager.free(old.page_id)


def record_size_of(entry_count: int, entry_size: int, header: int = 8) -> int:
    """Helper: byte size of a record with ``entry_count`` fixed-size entries."""
    return header + max(0, entry_count) * entry_size


SizeFunction = Callable[[object], int]
