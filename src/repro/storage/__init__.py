"""Page-level storage simulator.

The paper counts *page accesses* as the only cost factor and assumes
indexes are B+-trees with chained leaf nodes (Section 3.1). This package
provides:

* :class:`~repro.storage.sizes.SizeModel` — the physical constants (page
  size, oid/pointer/key lengths) that the paper leaves as inputs;
* :class:`~repro.storage.pager.Pager` — page allocation plus read/write
  accounting;
* :class:`~repro.storage.btree.BPlusTree` — an operational B+-tree whose
  every node occupies one page, with overflow chains for index records
  longer than a page;
* :class:`~repro.storage.heap.ClassExtent` — heap files packing the objects
  of a single class (the paper assumes a page contains objects of only one
  class);
* :class:`~repro.storage.hashdir.HashDirectory` and
  :class:`~repro.storage.chains.ChainedRecordStore` — alternative
  equality-only layouts (hash directory with chained bucket pages; one
  dedicated page chain per record) used by the ground-truth backend's
  ``layout="hash"`` mode.
"""

from repro.storage.btree import BPlusTree
from repro.storage.chains import ChainedRecordStore
from repro.storage.hashdir import HashDirectory
from repro.storage.heap import ClassExtent
from repro.storage.pager import AccessStats, Pager
from repro.storage.sizes import SizeModel

__all__ = [
    "AccessStats",
    "BPlusTree",
    "ChainedRecordStore",
    "ClassExtent",
    "HashDirectory",
    "Pager",
    "SizeModel",
]
