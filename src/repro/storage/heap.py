"""Heap files: class extents packed into pages.

The paper assumes "a page contains objects of only one class".
:class:`ClassExtent` packs the objects of a single class into pages and
charges page reads when objects are fetched by oid — the cost component of
a query that the paper calls "the costs to retrieve these objects" (it
focuses on the *searching* cost, but the operational executor accounts for
both so measured totals are meaningful).
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.model.objects import OID
from repro.storage.pager import Pager
from repro.storage.sizes import SizeModel


class ClassExtent:
    """Objects of one class packed into simulated pages.

    Placement is first-fit append: objects fill a page until the byte
    budget is exhausted, then a new page is allocated. Deleting an object
    leaves a hole (no compaction), matching simple slotted-page behaviour.
    """

    def __init__(
        self,
        pager: Pager,
        sizes: SizeModel,
        class_name: str,
        object_size: int,
    ) -> None:
        if object_size <= 0:
            raise StorageError("object size must be positive")
        self._pager = pager
        self._sizes = sizes
        self.class_name = class_name
        self.object_size = object_size + sizes.object_overhead_size
        self._capacity = max(1, sizes.page_size // self.object_size)
        self._page_of: dict[OID, int] = {}
        self._population: dict[int, int] = {}
        self._open_page: int | None = None

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place(self, oid: OID) -> int:
        """Assign the object to a page, returning the page id."""
        if oid.class_name != self.class_name and not oid.class_name:
            raise StorageError(f"extent {self.class_name}: foreign oid {oid}")
        if oid in self._page_of:
            raise StorageError(f"extent {self.class_name}: {oid} already placed")
        if (
            self._open_page is None
            or self._population[self._open_page] >= self._capacity
        ):
            self._open_page = self._pager.allocate()
            self._population[self._open_page] = 0
        self._page_of[oid] = self._open_page
        self._population[self._open_page] += 1
        return self._open_page

    def remove(self, oid: OID) -> None:
        """Drop the object's placement, freeing fully-emptied pages."""
        page_id = self._page_of.pop(oid, None)
        if page_id is None:
            raise StorageError(f"extent {self.class_name}: {oid} not placed")
        self._population[page_id] -= 1
        if self._population[page_id] == 0 and page_id != self._open_page:
            del self._population[page_id]
            self._pager.free(page_id)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def fetch(self, oid: OID) -> int:
        """Charge a page read for fetching the object; returns the page id."""
        page_id = self._page_of.get(oid)
        if page_id is None:
            raise StorageError(f"extent {self.class_name}: {oid} not placed")
        self._pager.read(page_id)
        return page_id

    def fetch_many(self, oids: list[OID]) -> int:
        """Fetch several objects, charging each distinct page once.

        Returns the number of distinct pages read — the quantity Yao's
        formula estimates in expectation.
        """
        pages = {self._page_of[oid] for oid in oids if oid in self._page_of}
        missing = [oid for oid in oids if oid not in self._page_of]
        if missing:
            raise StorageError(
                f"extent {self.class_name}: unplaced oids {missing[:3]}..."
            )
        for page_id in sorted(pages):
            self._pager.read(page_id)
        return len(pages)

    def scan(self) -> int:
        """Charge a full sequential scan of the extent; returns pages read."""
        pages = [
            page_id
            for page_id, count in self._population.items()
            if count > 0
        ]
        for page_id in sorted(pages):
            self._pager.read(page_id)
        return len(pages)

    def page_count(self) -> int:
        """Number of pages currently holding at least one object."""
        return sum(1 for count in self._population.values() if count > 0)

    def object_count(self) -> int:
        """Number of placed objects."""
        return len(self._page_of)

    @property
    def objects_per_page(self) -> int:
        """Placement capacity per page."""
        return self._capacity
