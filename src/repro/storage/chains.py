"""A chained-record store: every record in its own page chain.

The paper's NIX primary index packs records into B+-tree leaves with
overflow chains for oversized records. :class:`ChainedRecordStore` is the
alternative layout where *every* record occupies a dedicated chain of
pages and the keys live in a linear chain of directory pages, in arrival
order. Locating a key reads the directory chain up to the page holding
it; retrieving the record then reads its chain. This trades the
logarithmic descent of the tree for a layout whose per-record cost is
exact (no sharing of leaf pages between records) — cheap for large
records such as NIX primary records, expensive for many small ones.

Direct-pointer access (``search_direct``/``update_direct``) reads or
rewrites only the record's chain, modeling the stored physical pointers
of the NIX 3-tuples.

Range scans are unsupported (the directory is not key-ordered) and raise
:class:`~repro.errors.StorageError`.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import StorageError
from repro.storage.pager import Pager
from repro.storage.sizes import SizeModel


class _DirectoryPage:
    __slots__ = ("page_id", "keys")

    def __init__(self, page_id: int):
        self.page_id = page_id
        self.keys: list[object] = []


class _Chain:
    __slots__ = ("value", "size", "pages")

    def __init__(self, value: object, size: int, pages: list[int]):
        self.value = value
        self.size = size
        self.pages = pages


class ChainedRecordStore:
    """Keyed records stored as dedicated page chains.

    Implements the counted-access method subset of
    :class:`~repro.storage.btree.BPlusTree` that the operational indexes
    use, so it can serve as the NIX primary structure under the backend's
    chained layout.
    """

    def __init__(
        self,
        pager: Pager,
        sizes: SizeModel,
        atomic_keys: bool = True,
        name: str = "chains",
    ) -> None:
        self._pager = pager
        self._sizes = sizes
        self._name = name
        entry_size = sizes.key_size(atomic_keys) + sizes.pointer_size
        self._capacity = max(1, sizes.page_size // entry_size)
        self._directory: list[_DirectoryPage] = [_DirectoryPage(pager.allocate())]
        self._chains: dict[object, _Chain] = {}

    # ------------------------------------------------------------------
    # public geometry
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Identifier given at construction."""
        return self._name

    @property
    def height(self) -> int:
        """Access depth: the directory level plus the record level."""
        return 2

    @property
    def record_count(self) -> int:
        """Number of stored records."""
        return len(self._chains)

    def leaf_page_count(self) -> int:
        """Number of directory pages."""
        return len(self._directory)

    def node_count(self) -> int:
        """Directory pages plus record-chain pages."""
        return len(self._directory) + sum(
            len(chain.pages) for chain in self._chains.values()
        )

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(self, key: object, partial_pages: int | None = None) -> object | None:
        """Counted probe: directory pages up to the holder, then the chain."""
        found = False
        for page in self._directory:
            self._pager.read(page.page_id)
            if key in page.keys:
                found = True
                break
        if not found:
            return None
        chain = self._chains[key]
        for page_id in self._chain_slice(chain, partial_pages):
            self._pager.read(page_id)
        return chain.value

    def search_direct(self, key: object, partial_pages: int | None = None) -> object | None:
        """Retrieve through a direct pointer: only the chain is charged."""
        chain = self._chains.get(key)
        if chain is None:
            return None
        for page_id in self._chain_slice(chain, partial_pages):
            self._pager.read(page_id)
        return chain.value

    def update_direct(self, key: object, value: object, size: int) -> None:
        """Rewrite a record through a direct pointer (chain pages only)."""
        if size <= 0:
            raise StorageError(f"{self._name}: record size must be positive")
        chain = self._chains.get(key)
        if chain is None:
            raise StorageError(f"{self._name}: direct update of missing key {key!r}")
        self._replace_chain(chain, value, size)

    def contains(self, key: object) -> bool:
        """Uncounted membership test."""
        return key in self._chains

    def get(self, key: object) -> object | None:
        """Uncounted lookup."""
        chain = self._chains.get(key)
        return chain.value if chain is not None else None

    def range_scan(self, low: object, high: object) -> list[tuple[object, object]]:
        """Unsupported: the directory is not key-ordered."""
        raise StorageError(
            f"{self._name}: chained layout does not support range scans"
        )

    # ------------------------------------------------------------------
    # modification
    # ------------------------------------------------------------------
    def insert(self, key: object, value: object, size: int) -> None:
        """Insert a new record; raises if the key already exists.

        Reads the whole directory chain (the duplicate check), writes the
        directory page receiving the key, then allocates and writes the
        record's chain.
        """
        if size <= 0:
            raise StorageError(f"{self._name}: record size must be positive")
        target: _DirectoryPage | None = None
        for page in self._directory:
            self._pager.read(page.page_id)
            if key in page.keys:
                raise StorageError(f"{self._name}: duplicate key {key!r}")
            if target is None and len(page.keys) < self._capacity:
                target = page
        if target is None:
            target = _DirectoryPage(self._pager.allocate())
            self._directory.append(target)
        target.keys.append(key)
        self._pager.write(target.page_id)
        pages = self._pager.allocate_many(max(1, self._sizes.pages_for(size)))
        for page_id in pages:
            self._pager.write(page_id)
        self._chains[key] = _Chain(value=value, size=size, pages=pages)

    def update(self, key: object, value: object, size: int) -> None:
        """Replace the record under an existing key (counted probe)."""
        if size <= 0:
            raise StorageError(f"{self._name}: record size must be positive")
        for page in self._directory:
            self._pager.read(page.page_id)
            if key in page.keys:
                self._replace_chain(self._chains[key], value, size)
                return
        raise StorageError(f"{self._name}: update of missing key {key!r}")

    def upsert(self, key: object, value: object, size: int) -> None:
        """Insert or update, whichever applies."""
        if self.contains(key):
            self.update(key, value, size)
        else:
            self.insert(key, value, size)

    def delete(self, key: object) -> object:
        """Remove a record, returning its value; raises if absent."""
        for index, page in enumerate(self._directory):
            self._pager.read(page.page_id)
            if key in page.keys:
                chain = self._chains.pop(key)
                for page_id in chain.pages:
                    self._pager.free(page_id)
                page.keys.remove(key)
                self._pager.write(page.page_id)
                if not page.keys and len(self._directory) > 1:
                    self._directory.pop(index)
                    self._pager.free(page.page_id)
                return chain.value
        raise StorageError(f"{self._name}: delete of missing key {key!r}")

    # ------------------------------------------------------------------
    # uncounted iteration / verification
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[object, object]]:
        """All records in directory order, without touching the counters."""
        for page in self._directory:
            for key in page.keys:
                yield key, self._chains[key].value

    def check_invariants(self) -> None:
        """Assert structural invariants; raises :class:`StorageError`."""
        seen: set[object] = set()
        for page in self._directory:
            if len(page.keys) > self._capacity:
                raise StorageError(f"{self._name}: directory page over capacity")
            for key in page.keys:
                if key in seen:
                    raise StorageError(f"{self._name}: duplicate key {key!r}")
                if key not in self._chains:
                    raise StorageError(f"{self._name}: dangling directory key")
                seen.add(key)
        if seen != set(self._chains):
            raise StorageError(f"{self._name}: directory does not match chains")
        for chain in self._chains.values():
            if len(chain.pages) != max(1, self._sizes.pages_for(chain.size)):
                raise StorageError(f"{self._name}: chain length drifted")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _replace_chain(self, chain: _Chain, value: object, size: int) -> None:
        needed = max(1, self._sizes.pages_for(size))
        if needed != len(chain.pages):
            for page_id in chain.pages:
                self._pager.free(page_id)
            chain.pages = self._pager.allocate_many(needed)
        chain.value = value
        chain.size = size
        for page_id in chain.pages:
            self._pager.write(page_id)

    def _chain_slice(self, chain: _Chain, partial_pages: int | None) -> list[int]:
        if partial_pages is None:
            return chain.pages
        if partial_pages < 0:
            raise StorageError("partial_pages must be non-negative")
        return chain.pages[:partial_pages]
