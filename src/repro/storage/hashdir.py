"""A page-based hash directory with chained bucket pages.

The paper's cost formulas assume B+-trees, but its page-access accounting
applies to any page-structured organization. :class:`HashDirectory` is an
alternative *layout* for the equality-only structures of the operational
indexes: a fixed directory of hash buckets (one directory entry per
bucket, packed into directory pages) where each bucket is a chain of
record pages. Equality lookups cost one directory-page read plus the
bucket-chain walk; records longer than a page spill into dedicated
overflow pages exactly like B+-tree leaf records, so the ``pr``/``pm``
partial-retrieval semantics carry over unchanged.

Range scans are unsupported by construction — hashing destroys key order —
and raise :class:`~repro.errors.StorageError`, which is how the backend
surfaces "this layout cannot serve range predicates".

The bucket function is deterministic across processes (CRC-32 of the
key's ``repr``), so page layouts — and therefore measured page counts —
are reproducible for a given operation sequence.
"""

from __future__ import annotations

import math
import zlib
from typing import Iterator

from repro.errors import StorageError
from repro.storage.pager import Pager
from repro.storage.sizes import SizeModel


def bucket_hash(key: object, bucket_count: int) -> int:
    """Deterministic bucket assignment (stable across processes)."""
    return zlib.crc32(repr(key).encode("utf-8")) % bucket_count


class _Record:
    __slots__ = ("value", "size", "overflow_pages")

    def __init__(self, value: object, size: int, overflow_pages: list[int]):
        self.value = value
        self.size = size
        self.overflow_pages = overflow_pages


class _BucketPage:
    __slots__ = ("page_id", "keys", "records", "next_page")

    def __init__(self, page_id: int):
        self.page_id = page_id
        self.keys: list[object] = []
        self.records: list[_Record] = []
        self.next_page: _BucketPage | None = None


class HashDirectory:
    """A hash directory with the B+-tree's counted-access interface.

    Implements the method subset the operational indexes use
    (``search``/``search_direct``/``update_direct``/``insert``/``update``/
    ``upsert``/``delete``/``contains``/``get``/``items``), so it can stand
    in for :class:`~repro.storage.btree.BPlusTree` wherever only equality
    probes are needed.

    Parameters
    ----------
    pager, sizes:
        Accounting substrate and physical constants.
    atomic_keys:
        Whether keys are atomic attribute values or oids (affects the
        stub size of spilled records, as in the B+-tree).
    name:
        Identifier for error messages.
    bucket_count:
        Number of hash buckets; the directory occupies
        ``ceil(bucket_count / entries_per_page)`` pages.
    """

    def __init__(
        self,
        pager: Pager,
        sizes: SizeModel,
        atomic_keys: bool = True,
        name: str = "hashdir",
        bucket_count: int = 64,
    ) -> None:
        if bucket_count <= 0:
            raise StorageError("bucket count must be positive")
        self._pager = pager
        self._sizes = sizes
        self._name = name
        self._leaf_budget = sizes.page_size - sizes.record_header_size
        self._stub_size = sizes.key_size(atomic_keys) + sizes.pointer_size
        self._bucket_count = bucket_count
        entries_per_page = max(1, sizes.page_size // sizes.pointer_size)
        directory_pages = math.ceil(bucket_count / entries_per_page)
        self._directory_pages = pager.allocate_many(directory_pages)
        self._directory_of = [
            self._directory_pages[bucket // entries_per_page]
            for bucket in range(bucket_count)
        ]
        self._buckets: list[_BucketPage | None] = [None] * bucket_count
        self._record_count = 0

    # ------------------------------------------------------------------
    # public geometry
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Identifier given at construction."""
        return self._name

    @property
    def height(self) -> int:
        """Access depth: one directory level plus the bucket level."""
        return 2

    @property
    def record_count(self) -> int:
        """Number of stored records (distinct keys)."""
        return self._record_count

    def leaf_page_count(self) -> int:
        """Number of bucket pages currently allocated."""
        return sum(1 for _ in self._iter_pages())

    def node_count(self) -> int:
        """Directory plus bucket pages, overflow excluded."""
        return len(self._directory_pages) + self.leaf_page_count()

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(self, key: object, partial_pages: int | None = None) -> object | None:
        """Counted equality probe: directory page, bucket chain, overflow."""
        bucket = bucket_hash(key, self._bucket_count)
        self._pager.read(self._directory_of[bucket])
        page = self._buckets[bucket]
        while page is not None:
            self._pager.read(page.page_id)
            if key in page.keys:
                record = page.records[page.keys.index(key)]
                for page_id in self._overflow_slice(record, partial_pages):
                    self._pager.read(page_id)
                return record.value
            page = page.next_page
        return None

    def search_direct(self, key: object, partial_pages: int | None = None) -> object | None:
        """Retrieve through a direct pointer: only the holding page and
        the record's overflow pages are charged, not the directory."""
        located = self._locate(key)
        if located is None:
            return None
        page, index = located
        self._pager.read(page.page_id)
        record = page.records[index]
        for page_id in self._overflow_slice(record, partial_pages):
            self._pager.read(page_id)
        return record.value

    def update_direct(self, key: object, value: object, size: int) -> None:
        """Rewrite a record through a direct pointer (no directory walk)."""
        if size <= 0:
            raise StorageError(f"{self._name}: record size must be positive")
        located = self._locate(key)
        if located is None:
            raise StorageError(f"{self._name}: direct update of missing key {key!r}")
        page, index = located
        self._free_overflow(page.records[index])
        record = self._make_record(value, size)
        page.records[index] = record
        for page_id in record.overflow_pages:
            self._pager.write(page_id)
        self._pager.write(page.page_id)
        self._fix_overfull(bucket_hash(key, self._bucket_count))

    def contains(self, key: object) -> bool:
        """Uncounted membership test."""
        return self._locate(key) is not None

    def get(self, key: object) -> object | None:
        """Uncounted lookup."""
        located = self._locate(key)
        if located is None:
            return None
        page, index = located
        return page.records[index].value

    def range_scan(self, low: object, high: object) -> list[tuple[object, object]]:
        """Unsupported: hashing destroys key order."""
        raise StorageError(
            f"{self._name}: hash layout does not support range scans"
        )

    # ------------------------------------------------------------------
    # modification
    # ------------------------------------------------------------------
    def insert(self, key: object, value: object, size: int) -> None:
        """Insert a new record; raises if the key already exists.

        Counts the directory-page read and the full bucket-chain walk (the
        duplicate check every hash insert performs), then the page write.
        """
        if size <= 0:
            raise StorageError(f"{self._name}: record size must be positive")
        bucket = bucket_hash(key, self._bucket_count)
        self._pager.read(self._directory_of[bucket])
        weight = self._stub_size if size > self._leaf_budget else size
        target: _BucketPage | None = None
        tail: _BucketPage | None = None
        page = self._buckets[bucket]
        while page is not None:
            self._pager.read(page.page_id)
            if key in page.keys:
                raise StorageError(f"{self._name}: duplicate key {key!r}")
            if target is None and self._page_weight(page) + weight <= self._leaf_budget:
                target = page
            tail = page
            page = page.next_page
        if target is None:
            target = _BucketPage(self._pager.allocate())
            if tail is None:
                self._buckets[bucket] = target
            else:
                tail.next_page = target
                self._pager.write(tail.page_id)
        record = self._make_record(value, size)
        target.keys.append(key)
        target.records.append(record)
        self._record_count += 1
        self._pager.write(target.page_id)

    def update(self, key: object, value: object, size: int) -> None:
        """Replace the record under an existing key (counted probe)."""
        if size <= 0:
            raise StorageError(f"{self._name}: record size must be positive")
        bucket = bucket_hash(key, self._bucket_count)
        self._pager.read(self._directory_of[bucket])
        page = self._buckets[bucket]
        while page is not None:
            self._pager.read(page.page_id)
            if key in page.keys:
                index = page.keys.index(key)
                self._free_overflow(page.records[index])
                record = self._make_record(value, size)
                page.records[index] = record
                for page_id in record.overflow_pages:
                    self._pager.write(page_id)
                self._pager.write(page.page_id)
                self._fix_overfull(bucket)
                return
            page = page.next_page
        raise StorageError(f"{self._name}: update of missing key {key!r}")

    def upsert(self, key: object, value: object, size: int) -> None:
        """Insert or update, whichever applies."""
        if self.contains(key):
            self.update(key, value, size)
        else:
            self.insert(key, value, size)

    def delete(self, key: object) -> object:
        """Remove a record, returning its value; raises if absent."""
        bucket = bucket_hash(key, self._bucket_count)
        self._pager.read(self._directory_of[bucket])
        previous: _BucketPage | None = None
        page = self._buckets[bucket]
        while page is not None:
            self._pager.read(page.page_id)
            if key in page.keys:
                index = page.keys.index(key)
                record = page.records.pop(index)
                page.keys.pop(index)
                self._record_count -= 1
                self._free_overflow(record)
                self._pager.write(page.page_id)
                if not page.keys:
                    if previous is None:
                        self._buckets[bucket] = page.next_page
                    else:
                        previous.next_page = page.next_page
                        self._pager.write(previous.page_id)
                    self._pager.free(page.page_id)
                return record.value
            previous = page
            page = page.next_page
        raise StorageError(f"{self._name}: delete of missing key {key!r}")

    # ------------------------------------------------------------------
    # uncounted iteration / verification
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[object, object]]:
        """All records in bucket order, without touching the counters."""
        for page in self._iter_pages():
            yield from zip(page.keys, (record.value for record in page.records))

    def check_invariants(self) -> None:
        """Assert structural invariants; raises :class:`StorageError`."""
        seen: set[object] = set()
        count = 0
        for bucket, head in enumerate(self._buckets):
            page = head
            while page is not None:
                if len(page.keys) != len(page.records):
                    raise StorageError(f"{self._name}: malformed bucket page")
                if not page.keys:
                    raise StorageError(f"{self._name}: empty bucket page kept")
                if len(page.keys) > 1 and self._page_weight(page) > self._leaf_budget:
                    raise StorageError(f"{self._name}: bucket page over budget")
                for key in page.keys:
                    if bucket_hash(key, self._bucket_count) != bucket:
                        raise StorageError(f"{self._name}: key in wrong bucket")
                    if key in seen:
                        raise StorageError(f"{self._name}: duplicate key {key!r}")
                    seen.add(key)
                    count += 1
                page = page.next_page
        if count != self._record_count:
            raise StorageError(f"{self._name}: record count drifted")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _iter_pages(self) -> Iterator[_BucketPage]:
        for head in self._buckets:
            page = head
            while page is not None:
                yield page
                page = page.next_page

    def _locate(self, key: object) -> tuple[_BucketPage, int] | None:
        page = self._buckets[bucket_hash(key, self._bucket_count)]
        while page is not None:
            if key in page.keys:
                return page, page.keys.index(key)
            page = page.next_page
        return None

    def _make_record(self, value: object, size: int) -> _Record:
        overflow: list[int] = []
        if size > self._leaf_budget:
            overflow = self._pager.allocate_many(self._sizes.pages_for(size))
            for page_id in overflow:
                self._pager.write(page_id)
        return _Record(value=value, size=size, overflow_pages=overflow)

    def _free_overflow(self, record: _Record) -> None:
        for page_id in record.overflow_pages:
            self._pager.free(page_id)
        record.overflow_pages = []

    def _overflow_slice(self, record: _Record, partial_pages: int | None) -> list[int]:
        if partial_pages is None:
            return record.overflow_pages
        if partial_pages < 0:
            raise StorageError("partial_pages must be non-negative")
        return record.overflow_pages[:partial_pages]

    def _record_weight(self, record: _Record) -> int:
        return self._stub_size if record.overflow_pages else record.size

    def _page_weight(self, page: _BucketPage) -> int:
        return sum(self._record_weight(record) for record in page.records)

    def _fix_overfull(self, bucket: int) -> None:
        """Spill grown records to the next chain page (write both pages)."""
        page = self._buckets[bucket]
        while page is not None:
            while len(page.keys) > 1 and self._page_weight(page) > self._leaf_budget:
                key = page.keys.pop()
                record = page.records.pop()
                if page.next_page is None:
                    page.next_page = _BucketPage(self._pager.allocate())
                page.next_page.keys.append(key)
                page.next_page.records.append(record)
                self._pager.write(page.page_id)
                self._pager.write(page.next_page.page_id)
            page = page.next_page
