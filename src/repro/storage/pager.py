"""Page allocation and access accounting.

Every node of an operational index and every heap block occupies exactly
one page. The :class:`Pager` hands out page ids and counts reads and
writes; :class:`AccessStats` snapshots let callers measure the page
accesses of a single operation, which is how the validation harness
compares measured costs against the paper's analytic formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError


@dataclass(frozen=True)
class AccessStats:
    """An immutable snapshot of page-access counters."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        """Reads plus writes — the paper's single cost metric."""
        return self.reads + self.writes

    def __sub__(self, other: "AccessStats") -> "AccessStats":
        return AccessStats(reads=self.reads - other.reads, writes=self.writes - other.writes)

    def __add__(self, other: "AccessStats") -> "AccessStats":
        return AccessStats(reads=self.reads + other.reads, writes=self.writes + other.writes)


class Pager:
    """Allocates page ids and counts page reads/writes.

    The pager does not store page *contents* — operational structures keep
    their own in-memory state — it is purely the accounting substrate.
    A tiny optional "buffer" models the paper's note that a page is fetched
    only once while maintaining all its records: repeated accesses to the
    same page inside one :meth:`measure` block can be deduplicated.
    """

    def __init__(self, page_size: int = 4096) -> None:
        if page_size <= 0:
            raise StorageError("page size must be positive")
        self.page_size = page_size
        self._next_page = 0
        self._reads = 0
        self._writes = 0
        self._live: set[int] = set()
        self._pinned: set[int] | None = None

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Allocate a fresh page and return its id."""
        page_id = self._next_page
        self._next_page += 1
        self._live.add(page_id)
        return page_id

    def allocate_many(self, count: int) -> list[int]:
        """Allocate ``count`` pages."""
        if count < 0:
            raise StorageError("cannot allocate a negative number of pages")
        return [self.allocate() for _ in range(count)]

    def free(self, page_id: int) -> None:
        """Release a page."""
        if page_id not in self._live:
            raise StorageError(f"double free or unknown page: {page_id}")
        self._live.discard(page_id)

    @property
    def live_pages(self) -> int:
        """Number of currently allocated pages."""
        return len(self._live)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def read(self, page_id: int) -> None:
        """Record a page read."""
        self._check_live(page_id)
        if self._pinned is not None and page_id in self._pinned:
            return
        self._reads += 1
        if self._pinned is not None:
            self._pinned.add(page_id)

    def write(self, page_id: int) -> None:
        """Record a page write."""
        self._check_live(page_id)
        self._writes += 1

    def _check_live(self, page_id: int) -> None:
        if page_id not in self._live:
            raise StorageError(f"access to unallocated page: {page_id}")

    def stats(self) -> AccessStats:
        """Current cumulative counters."""
        return AccessStats(reads=self._reads, writes=self._writes)

    def reset(self) -> None:
        """Zero the counters (allocations are kept)."""
        self._reads = 0
        self._writes = 0

    class _Measure:
        def __init__(self, pager: "Pager", buffered: bool) -> None:
            self._pager = pager
            self._buffered = buffered
            self._before = pager.stats()
            self.result: AccessStats | None = None

        def __enter__(self) -> "Pager._Measure":
            if self._buffered:
                self._pager._pinned = set()
            return self

        def __exit__(self, *exc_info: object) -> None:
            self.result = self._pager.stats() - self._before
            if self._buffered:
                self._pager._pinned = None

    def measure(self, buffered: bool = False) -> "Pager._Measure":
        """Context manager measuring the accesses of one operation.

        With ``buffered=True`` repeated reads of one page inside the block
        count once, modeling the paper's "a page will be fetched only once"
        assumption for batched maintenance.
        """
        return Pager._Measure(self, buffered)
