"""Populating a path schema to match target statistics.

Objects are created bottom-up (ending class first) so forward references
always point at existing objects. Attribute values are drawn to hit the
target ``(n, d, nin)`` statistics of each class: exactly ``d`` distinct
values are used, each object holds ``nin`` of them (multi-valued levels),
and values are assigned round-robin so every distinct value is populated.
"""

from __future__ import annotations

import random

from repro.costmodel.params import ClassStats
from repro.errors import SchemaError
from repro.model.objects import OID, OODatabase
from repro.model.path import Path
from repro.model.schema import Schema


def populate_path_database(
    schema: Schema,
    path: Path,
    specs: dict[str, ClassStats],
    seed: int = 0,
) -> OODatabase:
    """Create a database matching per-class ``(n, d, nin)`` targets.

    Parameters
    ----------
    schema, path:
        The synthetic (or hand-built) schema and the path through it.
    specs:
        Target statistics per scope class. ``objects`` and ``distinct``
        must be integers for an operational database; ``fanout`` values
        are rounded per object so the mean approaches the target.
    seed:
        PRNG seed (value assignment shuffling).
    """
    rng = random.Random(seed)
    missing = [name for name in path.scope if name not in specs]
    if missing:
        raise SchemaError(f"missing population specs for: {missing}")
    database = OODatabase(schema)

    # Build levels from the ending class backwards.
    created: dict[int, list[OID]] = {}
    for position in range(path.length, 0, -1):
        level_oids: list[OID] = []
        pool = created.get(position + 1, [])
        for member in path.hierarchy_at(position):
            spec = specs[member]
            count = int(spec.objects)
            distinct = max(1, min(int(spec.distinct), _value_space(path, position, pool)))
            if count == 0:
                continue
            values = _value_pool(path, position, member, distinct, pool, rng)
            attribute = path.attribute_def_at(position)
            for index in range(count):
                chosen = _draw_values(values, spec.fanout, index, rng)
                attributes = schema.all_attributes(member)
                kwargs: dict[str, object] = {}
                for name, definition in attributes.items():
                    if name == attribute.name:
                        if definition.multi_valued:
                            kwargs[name] = chosen
                        else:
                            kwargs[name] = chosen[0]
                    elif definition.is_atomic:
                        kwargs[name] = _atomic_default(definition)
                    else:
                        raise SchemaError(
                            f"class {member!r} has a non-path reference "
                            f"attribute {name!r}; synthetic population only "
                            "supports path references"
                        )
                oid = database.create(member, **kwargs)
                level_oids.append(oid)
        if not level_oids:
            raise SchemaError(f"no objects created at position {position}")
        created[position] = level_oids
    return database


def _value_space(path: Path, position: int, pool: list[OID]) -> int:
    attribute = path.attribute_def_at(position)
    if attribute.is_atomic:
        return 10**9
    return max(1, len(pool))


def _value_pool(
    path: Path,
    position: int,
    member: str,
    distinct: int,
    pool: list[OID],
    rng: random.Random,
) -> list[object]:
    attribute = path.attribute_def_at(position)
    if attribute.is_atomic:
        return [f"{member}-v{i}" for i in range(distinct)]
    if distinct > len(pool):
        raise SchemaError(
            f"class {member!r} wants {distinct} distinct references but only "
            f"{len(pool)} targets exist"
        )
    chosen = list(pool)
    rng.shuffle(chosen)
    return chosen[:distinct]


def _draw_values(
    values: list[object], fanout: float, index: int, rng: random.Random
) -> list[object]:
    """Pick ``~fanout`` values for one object, covering all values in turn."""
    count = max(1, int(round(fanout)))
    count = min(count, len(values))
    start = (index * count) % len(values)
    chosen = [(values[(start + i) % len(values)]) for i in range(count)]
    return chosen


def _atomic_default(definition: object) -> object:
    from repro.model.attribute import AtomicType, Attribute

    assert isinstance(definition, Attribute)
    domain = definition.domain
    assert isinstance(domain, AtomicType)
    if domain is AtomicType.INTEGER:
        return 0
    if domain is AtomicType.REAL:
        return 0.0
    if domain is AtomicType.BOOLEAN:
        return False
    return "x"
