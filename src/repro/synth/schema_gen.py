"""Synthetic linear-path schemas.

Generates schemas shaped like the paper's evaluation path: a chain of
classes ``L1 → L2 → ... → Ln`` connected by reference attributes, with an
atomic ending attribute on the last class and an optional number of
subclasses per level (to exercise the inheritance machinery).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaError
from repro.model.attribute import AtomicType
from repro.model.path import Path
from repro.model.schema import Schema, atomic, reference


@dataclass(frozen=True)
class LevelSpec:
    """Shape of one level of a synthetic path schema.

    Attributes
    ----------
    name:
        Class name for the level's hierarchy root.
    subclasses:
        Number of direct subclasses (0 for a plain class).
    multi_valued:
        Whether the level's path attribute is set-valued.
    """

    name: str
    subclasses: int = 0
    multi_valued: bool = False

    def __post_init__(self) -> None:
        if self.subclasses < 0:
            raise SchemaError("subclass count cannot be negative")


def linear_path_schema(
    levels: list[LevelSpec], ending_attribute: str = "label"
) -> tuple[Schema, Path]:
    """Build a frozen schema and the path through it.

    Level ``i``'s path attribute is named ``ref{i}`` (referencing level
    ``i+1``'s root class); the last level carries the atomic
    ``ending_attribute``. Every class also gets a ``payload`` attribute so
    objects have some width.
    """
    if not levels:
        raise SchemaError("at least one level is required")
    schema = Schema()
    names = [spec.name for spec in levels]
    if len(set(names)) != len(names):
        raise SchemaError(f"duplicate level names: {names}")

    for position, spec in enumerate(levels):
        is_last = position == len(levels) - 1
        if is_last:
            path_attribute = atomic(
                ending_attribute, AtomicType.STRING, multi_valued=spec.multi_valued
            )
        else:
            path_attribute = reference(
                f"ref{position + 1}",
                levels[position + 1].name,
                multi_valued=spec.multi_valued,
            )
        schema.define(
            spec.name,
            [path_attribute, atomic("payload", AtomicType.INTEGER)],
        )
        for index in range(spec.subclasses):
            schema.define(
                f"{spec.name}Sub{index + 1}",
                [atomic(f"extra{index + 1}", AtomicType.INTEGER)],
                superclass=spec.name,
            )
    schema.freeze()
    attributes = [
        f"ref{i + 1}" for i in range(len(levels) - 1)
    ] + [ending_attribute]
    path = Path(
        schema=schema,
        starting_class=levels[0].name,
        attribute_names=tuple(attributes),
    )
    return schema, path
