"""Synthetic schema, database and statistics generation.

Used by the validation harness (build a database matching target
statistics, then check the analytic model against measured page counts)
and by the sweep benchmarks (random paths of varying length, fan-out and
inheritance shape).
"""

from repro.synth.data_gen import populate_path_database
from repro.synth.schema_gen import LevelSpec, linear_path_schema
from repro.synth.stats import derive_class_stats, derive_path_statistics

__all__ = [
    "LevelSpec",
    "derive_class_stats",
    "derive_path_statistics",
    "linear_path_schema",
    "populate_path_database",
]
