"""Deriving cost-model statistics from a populated database.

The inverse of :mod:`repro.synth.data_gen`: measure the actual
``(n, d, nin)`` of every scope class of a path — what a database
administrator's statistics collector would report — and package them as
:class:`~repro.costmodel.params.PathStatistics` for the analytic model.
"""

from __future__ import annotations

from repro.costmodel.params import ClassStats, CostModelConfig, PathStatistics
from repro.model.objects import OODatabase
from repro.model.path import Path


def derive_class_stats(
    database: OODatabase, path: Path, class_name: str, position: int
) -> ClassStats:
    """Measure ``(n, d, nin)`` of one scope class for its path attribute."""
    attribute = path.attribute_at(position)
    objects = database.extent_size(class_name)
    if objects == 0:
        return ClassStats(objects=0, distinct=0, fanout=0.0)
    distinct = database.distinct_values(class_name, attribute)
    fanout = database.average_fanout(class_name, attribute)
    return ClassStats(objects=objects, distinct=distinct, fanout=fanout)


def derive_path_statistics(
    database: OODatabase,
    path: Path,
    config: CostModelConfig | None = None,
) -> PathStatistics:
    """Measure statistics for every class in ``scope(path)``."""
    per_class: dict[str, ClassStats] = {}
    for position in range(1, path.length + 1):
        for member in path.hierarchy_at(position):
            per_class[member] = derive_class_stats(database, path, member, position)
    return PathStatistics(path, per_class, config=config)
