"""Index organization identifiers.

The paper considers five techniques — simple index (SIX), inherited index
(IIX), multi-index (MX), multi-inherited index (MIX) and nested inherited
index (NIX) — and observes that SIX and IIX are the single-class special
cases of MX and MIX. The selection algorithm therefore only deliberates
between MX, MIX and NIX (:data:`CONFIGURABLE_ORGANIZATIONS`); ``NONE``
supports the "no index on a subpath" extension of Section 6.
"""

from __future__ import annotations

import enum


class IndexOrganization(enum.Enum):
    """The index organizations of Section 2.2 plus the Section 6 extensions.

    ``PX`` (path index, [Bertino & Guglielmina 92]) and ``NX`` (nested
    index, [Bertino & Kim 89]) are the organizations the paper's
    conclusions say "can be done straightforward since the maintenance and
    retrieval costs on a subpath indexed by these types can be estimated
    independently of other subpaths".
    """

    SIX = "SIX"
    IIX = "IIX"
    MX = "MX"
    MIX = "MIX"
    NIX = "NIX"
    PX = "PX"
    NX = "NX"
    NONE = "NONE"

    def __str__(self) -> str:
        return self.value


#: The organizations the selection algorithm deliberates between
#: (Section 5: "we consider the three index organizations MX, MIX and NIX").
CONFIGURABLE_ORGANIZATIONS: tuple[IndexOrganization, ...] = (
    IndexOrganization.MX,
    IndexOrganization.MIX,
    IndexOrganization.NIX,
)

#: Organizations including the Section 6 "no index" extension.
EXTENDED_ORGANIZATIONS: tuple[IndexOrganization, ...] = (
    *CONFIGURABLE_ORGANIZATIONS,
    IndexOrganization.NONE,
)

#: All selectable organizations, including the Section 6 path/nested
#: index extensions.
ALL_ORGANIZATIONS: tuple[IndexOrganization, ...] = (
    *CONFIGURABLE_ORGANIZATIONS,
    IndexOrganization.PX,
    IndexOrganization.NX,
    IndexOrganization.NONE,
)
