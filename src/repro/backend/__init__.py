"""Ground-truth execution backend.

The advisor's numbers are Yao-formula analytics; this package is the
machinery that checks them against *real* page I/O:

* :class:`~repro.backend.tracker.PageAccessTracker` — a pager that, on
  top of read/write counting, tracks allocations, frees and per-owner
  attribution (which subpath index or heap extent owns each page), and
  measures named operations;
* :class:`~repro.backend.materialize.MaterializedConfiguration` — an
  advised configuration built as actual page structures behind a tracker,
  with measured ``query``/``insert``/``delete``;
* :mod:`~repro.backend.replay` — runs a :mod:`repro.trace` JSONL stream
  against a materialized configuration and reports measured page I/O
  beside the analytic predictions, per (operation, class) and per
  (subpath, organization);
* :mod:`~repro.backend.scenarios` — the seeded scenario suite the
  accuracy guard runs on;
* :mod:`~repro.backend.calibrate` — least-squares fit of per-organization
  correction constants to measured counts, a
  :class:`~repro.backend.calibrate.CalibrationReport`, and the CI-grade
  ``check`` that fails when any scenario's post-fit relative error
  exceeds the threshold.
"""

from repro.backend.calibrate import (
    CalibrationReport,
    ConstantFit,
    ScenarioMeasurement,
    calibrate,
    measure_scenarios,
    render_calibration,
    run_calibration,
)
from repro.backend.materialize import MaterializedConfiguration, MeasuredOperation
from repro.backend.replay import (
    BackendReplayReport,
    render_backend_replay,
    replay_trace,
)
from repro.backend.scenarios import BackendScenario, default_scenarios
from repro.backend.tracker import OperationIO, PageAccessTracker

__all__ = [
    "BackendReplayReport",
    "BackendScenario",
    "CalibrationReport",
    "ConstantFit",
    "MaterializedConfiguration",
    "MeasuredOperation",
    "OperationIO",
    "PageAccessTracker",
    "ScenarioMeasurement",
    "calibrate",
    "default_scenarios",
    "measure_scenarios",
    "render_backend_replay",
    "render_calibration",
    "replay_trace",
    "run_calibration",
]
