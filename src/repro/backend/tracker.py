"""Page-access tracking with ownership attribution.

:class:`PageAccessTracker` extends the accounting
:class:`~repro.storage.pager.Pager` with the three things the ground-truth
backend needs and the plain pager does not provide:

* **allocation/free counters** — structure growth is visible, not just
  traffic;
* **ownership** — every page is attributed to the owner label active when
  it was allocated (``owner("S[1,3]:NIX")`` around index construction and
  maintenance), so any measured I/O splits by (subpath, organization) and
  heap extent for free;
* **per-operation measurement** — :meth:`track` wraps one logical
  operation and yields an :class:`OperationIO`: total reads/writes, pages
  allocated and freed, and the per-owner breakdown.

The tracker is a drop-in pager: :class:`~repro.indexes.manager.ConfigurationIndexSet`
discovers the ``owner`` hook by duck typing and works identically on a
plain pager.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.storage.pager import AccessStats, Pager

#: Owner label used when no ``owner(...)`` scope is active.
UNOWNED = "(unowned)"


@dataclass(frozen=True)
class OperationIO:
    """Measured page I/O of one logical operation."""

    label: str
    stats: AccessStats
    allocations: int = 0
    frees: int = 0
    by_owner: Mapping[str, AccessStats] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Reads plus writes — the paper's single cost metric."""
        return self.stats.total


class PageAccessTracker(Pager):
    """A pager that attributes page traffic to named owners."""

    def __init__(self, page_size: int = 4096) -> None:
        super().__init__(page_size)
        self.allocations = 0
        self.frees = 0
        self._owner_stack: list[str] = []
        self._page_owner: dict[int, str] = {}
        self._owner_reads: Counter = Counter()
        self._owner_writes: Counter = Counter()
        self.operations: list[OperationIO] = []

    # ------------------------------------------------------------------
    # ownership
    # ------------------------------------------------------------------
    @contextmanager
    def owner(self, label: str) -> Iterator[None]:
        """Attribute pages allocated inside the block to ``label``."""
        self._owner_stack.append(label)
        try:
            yield
        finally:
            self._owner_stack.pop()

    def owner_of(self, page_id: int) -> str:
        """Owner label of a live page."""
        return self._page_owner.get(page_id, UNOWNED)

    def owner_live_pages(self) -> dict[str, int]:
        """Live page count per owner label."""
        counts: Counter = Counter()
        for page_id in self._live:
            counts[self.owner_of(page_id)] += 1
        return dict(counts)

    def owner_stats(self) -> dict[str, AccessStats]:
        """Cumulative reads/writes per owner label."""
        labels = set(self._owner_reads) | set(self._owner_writes)
        return {
            label: AccessStats(
                reads=self._owner_reads[label], writes=self._owner_writes[label]
            )
            for label in sorted(labels)
        }

    # ------------------------------------------------------------------
    # counted pager interface
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Allocate a page, recording the active owner."""
        page_id = super().allocate()
        self.allocations += 1
        if self._owner_stack:
            self._page_owner[page_id] = self._owner_stack[-1]
        return page_id

    def free(self, page_id: int) -> None:
        """Release a page, dropping its ownership record."""
        super().free(page_id)
        self.frees += 1
        self._page_owner.pop(page_id, None)

    def read(self, page_id: int) -> None:
        """Record a page read, attributed to the page's owner.

        The buffered-measurement dedup of the base pager applies: a read
        it swallows is not attributed either.
        """
        before = self._reads
        super().read(page_id)
        if self._reads != before:
            self._owner_reads[self.owner_of(page_id)] += 1

    def write(self, page_id: int) -> None:
        """Record a page write, attributed to the page's owner."""
        super().write(page_id)
        self._owner_writes[self.owner_of(page_id)] += 1

    # ------------------------------------------------------------------
    # per-operation measurement
    # ------------------------------------------------------------------
    class _Track:
        def __init__(self, tracker: "PageAccessTracker", label: str, buffered: bool):
            self._tracker = tracker
            self._label = label
            self._measure = tracker.measure(buffered=buffered)
            self._allocations = tracker.allocations
            self._frees = tracker.frees
            self._reads = Counter(tracker._owner_reads)
            self._writes = Counter(tracker._owner_writes)
            self.result: OperationIO | None = None

        def __enter__(self) -> "PageAccessTracker._Track":
            self._measure.__enter__()
            return self

        def __exit__(self, *exc_info: object) -> None:
            self._measure.__exit__(*exc_info)
            tracker = self._tracker
            assert self._measure.result is not None
            by_owner: dict[str, AccessStats] = {}
            labels = set(tracker._owner_reads) | set(tracker._owner_writes)
            for label in sorted(labels):
                delta = AccessStats(
                    reads=tracker._owner_reads[label] - self._reads[label],
                    writes=tracker._owner_writes[label] - self._writes[label],
                )
                if delta.total:
                    by_owner[label] = delta
            self.result = OperationIO(
                label=self._label,
                stats=self._measure.result,
                allocations=tracker.allocations - self._allocations,
                frees=tracker.frees - self._frees,
                by_owner=by_owner,
            )
            tracker.operations.append(self.result)

    def track(self, label: str, buffered: bool = True) -> "PageAccessTracker._Track":
        """Measure one named operation (buffered by default, matching the
        paper's fetch-a-page-once maintenance assumption)."""
        return PageAccessTracker._Track(self, label, buffered)
