"""Replaying a :mod:`repro.trace` stream against real page structures.

:func:`replay_trace` takes the same JSONL event stream the advisor mines
for workload drift and executes it — operation by operation — on a
:class:`~repro.backend.materialize.MaterializedConfiguration`. Events
name only a kind and a scope class; the replay driver makes them
concrete deterministically (seeded probe values, seeded deletion
victims, clone-template inserts), so the same trace against the same
world measures the same page I/O every run.

The report shows the analytic CRT/CMT expectation beside the measured
count twice over:

* per ``(operation, class)`` — the same axis the validation harness
  uses, now fed by a trace instead of uniform sampling;
* per ``(subpath, organization)`` — the analytic side split with
  :func:`per_part_analytic_costs`, the measured side split by the
  tracker's page-owner attribution.

The per-part split has one deliberate asymmetry: heap traffic (object
fetches, ``NX``/``NONE`` extent scans) is owned by ``heap:<Class>``
labels on the measured side, while the analytic formulas fold scan costs
into the part. The report therefore lists heap I/O separately instead of
pretending the two decompositions coincide; totals are comparable,
per-part figures are diagnostic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.backend.materialize import MaterializedConfiguration
from repro.core.configuration import IndexConfiguration
from repro.core.evaluation import per_class_analytic_costs
from repro.costmodel.params import CostModelConfig, PathStatistics
from repro.costmodel.subpath import build_model
from repro.errors import ReproError
from repro.indexes.manager import part_label
from repro.model.objects import OID, OODatabase, ObjectInstance
from repro.model.path import Path
from repro.synth.stats import derive_path_statistics
from repro.trace.events import TraceEvent


def ending_values(database: OODatabase, path: Path) -> list[object]:
    """All distinct ending-attribute values, in deterministic order."""
    values: set[object] = set()
    ending = path.attribute_at(path.length)
    for member in path.hierarchy_at(path.length):
        for instance in database.extent(member):
            values.update(instance.value_list(ending))
    return sorted(values, key=repr)


def clone_kwargs(
    database: OODatabase, instance: ObjectInstance
) -> dict[str, object] | None:
    """Attribute values cloning ``instance``, with dead references pruned.

    Returns ``None`` when the template is unusable (every reference in
    some attribute points at deleted objects), matching the validation
    harness's insert sampling.
    """
    kwargs: dict[str, object] = {}
    for name in database.schema.all_attributes(instance.oid.class_name):
        value = instance.values[name]
        if isinstance(value, list):
            live = [
                v
                for v in value
                if not isinstance(v, OID) or database.contains(v)
            ]
            if not live:
                return None
            kwargs[name] = live
        elif isinstance(value, OID) and not database.contains(value):
            return None
        else:
            kwargs[name] = value
    return kwargs


def per_part_analytic_costs(
    stats: PathStatistics,
    configuration: IndexConfiguration,
) -> dict[tuple[int, str], dict[str, list[float]]]:
    """Per-part split of the coupled per-class expected costs.

    For each ``(position, class)`` and operation kind, a list with one
    entry per configuration part: the pages the analytic model charges
    that part for one such operation. Summing the list reproduces
    :func:`~repro.core.evaluation.per_class_analytic_costs` exactly — a
    query charges its own part ``query_cost`` and every later part its
    full ``hierarchy_query_cost``, a delete adds the ``CMD`` charge to
    the *preceding* part when the class starts a subpath.
    """
    parts = configuration.assignments
    models = [
        build_model(stats, part.start, part.end, part.organization)
        for part in parts
    ]
    probes = [1.0] * len(parts)
    for g in range(len(parts) - 2, -1, -1):
        probes[g] = models[g + 1].emitted_oids(probes[g + 1])
    hierarchy = [
        models[g].hierarchy_query_cost(parts[g].start, probes[g])
        for g in range(len(parts))
    ]

    split: dict[tuple[int, str], dict[str, list[float]]] = {}
    for g, (part, model) in enumerate(zip(parts, models)):
        for position in range(part.start, part.end + 1):
            for member in stats.members(position):
                query = [0.0] * len(parts)
                query[g] = model.query_cost(position, member, probes[g])
                for h in range(g + 1, len(parts)):
                    query[h] = hierarchy[h]
                insert = [0.0] * len(parts)
                insert[g] = model.insert_cost(position, member)
                delete = [0.0] * len(parts)
                delete[g] = model.delete_cost(position, member)
                if position == part.start and g > 0:
                    delete[g - 1] += models[g - 1].cmd_cost()
                split[(position, member)] = {
                    "query": query,
                    "insert": insert,
                    "delete": delete,
                }
    return split


@dataclass(frozen=True)
class ReplayRow:
    """Replayed events of one (kind, class): predicted vs measured."""

    kind: str
    class_name: str
    events: int
    predicted: float
    measured: int

    @property
    def predicted_mean(self) -> float:
        """Predicted pages per event."""
        return self.predicted / self.events if self.events else 0.0

    @property
    def measured_mean(self) -> float:
        """Measured pages per event."""
        return self.measured / self.events if self.events else 0.0

    @property
    def ratio(self) -> float:
        """measured / predicted (``inf`` when the prediction is zero)."""
        if self.predicted == 0:
            return float("inf") if self.measured else 1.0
        return self.measured / self.predicted


@dataclass(frozen=True)
class PartIORow:
    """One configuration part's share of the replayed I/O."""

    label: str
    organization: str
    predicted: float
    measured: int


@dataclass(frozen=True)
class BackendReplayReport:
    """Measured-vs-predicted outcome of one trace replay."""

    rows: tuple[ReplayRow, ...]
    parts: tuple[PartIORow, ...]
    heap_measured: int
    events: int
    replayed: int
    skipped: int
    build_total: int
    seed: int
    layout: str

    @property
    def predicted_total(self) -> float:
        """Analytic pages expected for all replayed events."""
        return sum(row.predicted for row in self.rows)

    @property
    def measured_total(self) -> int:
        """Pages actually touched by all replayed events."""
        return sum(row.measured for row in self.rows)

    @property
    def ratio(self) -> float:
        """measured / predicted over the whole replay."""
        predicted = self.predicted_total
        if predicted == 0:
            return float("inf") if self.measured_total else 1.0
        return self.measured_total / predicted

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (the benchmark artifact schema)."""
        return {
            "events": self.events,
            "replayed": self.replayed,
            "skipped": self.skipped,
            "seed": self.seed,
            "layout": self.layout,
            "build_total": self.build_total,
            "predicted_total": self.predicted_total,
            "measured_total": self.measured_total,
            "ratio": self.ratio,
            "heap_measured": self.heap_measured,
            "rows": [
                {
                    "kind": row.kind,
                    "class": row.class_name,
                    "events": row.events,
                    "predicted": row.predicted,
                    "measured": row.measured,
                }
                for row in self.rows
            ],
            "parts": [
                {
                    "label": part.label,
                    "organization": part.organization,
                    "predicted": part.predicted,
                    "measured": part.measured,
                }
                for part in self.parts
            ],
        }


_KIND_ORDER = {"query": 0, "insert": 1, "delete": 2}


def replay_trace(
    database: OODatabase,
    path: Path,
    configuration: IndexConfiguration,
    events: Iterable[TraceEvent],
    seed: int = 0,
    config: CostModelConfig | None = None,
    stats: PathStatistics | None = None,
    layout: str = "btree",
    recorder=None,
) -> BackendReplayReport:
    """Execute a trace on real page structures and compare to the model.

    Parameters
    ----------
    database:
        A populated database; mutated by the stream's inserts/deletes.
    path, configuration:
        What to materialize.
    events:
        The trace, e.g. from :func:`repro.trace.read_trace`. Events whose
        class is outside the path's scope, or that cannot be made
        concrete (no value to probe, no object to delete or clone), are
        counted as skipped rather than failing the replay.
    seed:
        Drives probe-value choice, deletion victims and clone templates.
    stats:
        Analytic statistics; derived from the *initial* database when
        omitted. The analytic side is held fixed over the replay — drift
        between prediction and measurement under a mutating stream is
        exactly what the report is for.
    layout:
        Storage layout for the materialized structures.
    recorder:
        An optional :class:`~repro.obs.Recorder`: the replay runs under
        a ``backend.replay`` span (materialization under
        ``backend.materialize``), with ``backend.replay.events`` and
        ``backend.replay.skipped`` counters.
    """
    from repro.obs.recorder import resolve_recorder

    recorder = resolve_recorder(recorder)
    config = config or CostModelConfig()
    stats = stats or derive_path_statistics(database, path, config=config)
    analytic = per_class_analytic_costs(stats, configuration)
    split = per_part_analytic_costs(stats, configuration)
    with recorder.span("backend.materialize", layout=layout):
        backend = MaterializedConfiguration(
            database, path, configuration, sizes=config.sizes, layout=layout
        )
    tracker = backend.tracker
    owner_before = {
        label: io.total for label, io in tracker.owner_stats().items()
    }

    position_of: dict[str, int] = {}
    for position in range(1, path.length + 1):
        for member in path.hierarchy_at(position):
            position_of[member] = position
    ending_hierarchy = set(path.hierarchy_at(path.length))

    rng = random.Random(seed)
    values = ending_values(database, path)
    values_dirty = False

    parts = configuration.assignments
    part_predicted = [0.0] * len(parts)
    aggregates: dict[tuple[str, str], list[float]] = {}
    replayed = 0
    skipped = 0

    def account(kind: str, class_name: str, measured: int) -> None:
        nonlocal replayed
        position = position_of[class_name]
        predicted = analytic[(position, class_name)][kind]
        entry = aggregates.setdefault((kind, class_name), [0, 0.0, 0])
        entry[0] += 1
        entry[1] += predicted
        entry[2] += measured
        for g, share in enumerate(split[(position, class_name)][kind]):
            part_predicted[g] += share
        replayed += 1

    total_events = 0
    with recorder.span("backend.replay", layout=layout, seed=seed) as span:
        for event in events:
            total_events += 1
            class_name = event.class_name
            if class_name not in position_of:
                skipped += 1
                continue
            if event.kind == "query":
                if values_dirty:
                    values = ending_values(database, path)
                    values_dirty = False
                if not values:
                    skipped += 1
                    continue
                value = values[rng.randrange(len(values))]
                measured = backend.query(value, class_name)
                account("query", class_name, measured.io.total)
            elif event.kind == "insert":
                extent = list(database.extent(class_name))
                if not extent:
                    skipped += 1
                    continue
                template = extent[rng.randrange(len(extent))]
                kwargs = clone_kwargs(database, template)
                if kwargs is None:
                    skipped += 1
                    continue
                measured = backend.insert(class_name, **kwargs)
                account("insert", class_name, measured.io.total)
                if class_name in ending_hierarchy:
                    values_dirty = True
            elif event.kind == "delete":
                extent = list(database.extent(class_name))
                if not extent:
                    skipped += 1
                    continue
                victim = extent[rng.randrange(len(extent))]
                measured = backend.delete(victim.oid)
                account("delete", class_name, measured.io.total)
                if class_name in ending_hierarchy:
                    values_dirty = True
            else:  # pragma: no cover - TraceEvent validates kinds
                raise ReproError(f"unknown event kind {event.kind!r}")
        span.note(events=total_events, replayed=replayed, skipped=skipped)
    recorder.counter("backend.replay.events").add(total_events)
    recorder.counter("backend.replay.skipped").add(skipped)

    owner_after = {
        label: io.total for label, io in tracker.owner_stats().items()
    }
    measured_by_owner = {
        label: owner_after[label] - owner_before.get(label, 0)
        for label in owner_after
    }
    part_rows = tuple(
        PartIORow(
            label=part_label(part),
            organization=part.organization.name,
            predicted=part_predicted[g],
            measured=measured_by_owner.get(part_label(part), 0),
        )
        for g, part in enumerate(parts)
    )
    heap_measured = sum(
        total
        for label, total in measured_by_owner.items()
        if label.startswith("heap:")
    )
    rows = tuple(
        ReplayRow(
            kind=kind,
            class_name=class_name,
            events=int(entry[0]),
            predicted=entry[1],
            measured=int(entry[2]),
        )
        for (kind, class_name), entry in sorted(
            aggregates.items(),
            key=lambda item: (_KIND_ORDER[item[0][0]], item[0][1]),
        )
    )
    return BackendReplayReport(
        rows=rows,
        parts=part_rows,
        heap_measured=heap_measured,
        events=total_events,
        replayed=replayed,
        skipped=skipped,
        build_total=backend.build_io.total,
        seed=seed,
        layout=layout,
    )


def render_backend_replay(report: BackendReplayReport) -> str:
    """ASCII rendering: per-(kind, class) table, then the per-part table."""
    lines: list[str] = []
    header = (
        f"{'kind':<8} {'class':<16} {'events':>6} "
        f"{'pred/op':>9} {'meas/op':>9} {'ratio':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in report.rows:
        lines.append(
            f"{row.kind:<8} {row.class_name:<16} {row.events:>6} "
            f"{row.predicted_mean:>9.2f} {row.measured_mean:>9.2f} "
            f"{row.ratio:>7.2f}"
        )
    lines.append("")
    part_header = (
        f"{'part':<18} {'org':<5} {'predicted':>10} {'measured':>9}"
    )
    lines.append(part_header)
    lines.append("-" * len(part_header))
    for part in report.parts:
        lines.append(
            f"{part.label:<18} {part.organization:<5} "
            f"{part.predicted:>10.1f} {part.measured:>9}"
        )
    lines.append(
        f"{'heap (measured only)':<24} {'':>10} {report.heap_measured:>9}"
    )
    lines.append("")
    lines.append(
        f"events={report.events} replayed={report.replayed} "
        f"skipped={report.skipped} predicted={report.predicted_total:.1f} "
        f"measured={report.measured_total} ratio={report.ratio:.3f}"
    )
    return "\n".join(lines)
