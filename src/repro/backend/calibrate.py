"""Fitting the cost model's constants to measured page I/O.

The Section 3 formulas predict page accesses from statistics alone; the
backend measures the same operations on real structures. This module
closes the loop: :func:`measure_scenarios` runs the seeded scenario
suite and collects one :class:`ScenarioMeasurement` per
``(scenario, operation, class)``, and :func:`calibrate` fits one affine
correction ``measured ≈ scale·analytic + offset`` per organization-shape
group (see :func:`operation_organization`) by weighted least squares
over those rows — the per-organization residual fit the accuracy guard
needs.

The resulting :class:`CalibrationReport` keeps the raw measurements, so
per-scenario relative errors can be recomputed for *any* constant set —
that is what lets the CI guard detect tampered or stale constants, not
just a bad fit: ``report.check(threshold)`` fails when any scenario's
post-fit relative error exceeds the threshold.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.backend.materialize import MaterializedConfiguration
from repro.backend.replay import clone_kwargs, ending_values
from repro.backend.scenarios import BackendScenario, default_scenarios
from repro.core.evaluation import per_class_analytic_costs
from repro.costmodel.params import CostModelConfig
from repro.errors import ReproError


@dataclass(frozen=True)
class ScenarioMeasurement:
    """Mean analytic and measured pages of one (scenario, op, class)."""

    scenario: str
    organization: str
    operation: str
    class_name: str
    position: int
    analytic: float
    measured: float
    samples: int

    @property
    def key(self) -> str:
        """The constant group this row calibrates, e.g. ``c_query_nix``."""
        return constant_name(self.organization, self.operation)


def constant_name(organization: str, operation: str) -> str:
    """Name of the correction constant for one (organization, operation)."""
    return f"c_{operation}_{organization.lower()}"


def operation_organization(
    parts: Sequence[tuple[int, int, str]], position: int, operation: str
) -> str:
    """The organization *shape* an operation at a position traverses.

    The residual between the Yao expectation and a real structure is not
    one number per organization: it depends on the subpath length (the
    record shape), the depth of the target class within the subpath (how
    much of the structure a partial lookup walks), the later parts a
    query chains through, and the CMD charge a subpath-starting deletion
    pays on the *preceding* part. The constant key therefore encodes all
    of it — ``"nix3.d1"`` for an operation one level into a length-3 NIX
    part, ``"nix2+mix1.d0"`` for a query chained into a MIX tail,
    ``"mix1.d0+cmd-nix2"`` for a deletion paying CMD — so each fitted
    constant corrects a homogeneous population and generalizes across
    database sizes, which is the axis the scenario suite varies.
    """
    g = next(
        i for i, (start, end, _) in enumerate(parts) if start <= position <= end
    )
    start, end, organization = parts[g]
    own = f"{organization.lower()}{end - start + 1}"
    depth = position - start
    if operation == "query":
        tail = [
            f"{org.lower()}{e - s + 1}" for s, e, org in parts[g + 1 :]
        ]
        return f"{'+'.join([own, *tail])}.d{depth}"
    if operation == "delete" and position == start and g > 0:
        ps, pe, previous = parts[g - 1]
        return f"{own}.d{depth}+cmd-{previous.lower()}{pe - ps + 1}"
    return f"{own}.d{depth}"


@dataclass(frozen=True)
class ConstantFit:
    """One fitted correction constant: ``measured ≈ scale·x + offset``."""

    name: str
    scale: float
    offset: float
    samples: int
    residual: float

    def apply(self, analytic: float) -> float:
        """Calibrated prediction for an analytic cost."""
        return self.scale * analytic + self.offset


#: The identity constant: calibrated prediction equals the analytic one.
IDENTITY = ConstantFit(name="identity", scale=1.0, offset=0.0, samples=0, residual=0.0)


def measure_scenarios(
    scenarios: Sequence[BackendScenario] | None = None,
    layout: str = "btree",
    query_samples: int = 8,
    update_samples: int = 4,
    config: CostModelConfig | None = None,
) -> list[ScenarioMeasurement]:
    """Run every scenario on the backend and collect comparison rows.

    Each scenario is built fresh from its seed, materialized on a
    :class:`~repro.backend.tracker.PageAccessTracker`, and sampled:
    ``query_samples`` equality queries per scope class (before any
    mutation, so the analytic statistics still describe the database),
    then ``update_samples`` deletions and clone-template insertions per
    class. Everything — probe values, victims, templates — is drawn from
    a generator seeded by the scenario, so the returned rows are
    bit-identical across runs.
    """
    config = config or CostModelConfig()
    rows: list[ScenarioMeasurement] = []
    for scenario in scenarios if scenarios is not None else default_scenarios():
        database, path, stats, configuration = scenario.build(config)
        analytic = per_class_analytic_costs(stats, configuration)
        parts = [
            (part.start, part.end, part.organization.name)
            for part in configuration.assignments
        ]
        backend = MaterializedConfiguration(
            database, path, configuration, sizes=config.sizes, layout=layout
        )
        rng = random.Random(scenario.seed)
        values = ending_values(database, path)
        if not values:
            raise ReproError(
                f"scenario {scenario.name!r} produced no ending values"
            )

        def emit(
            operation: str, position: int, member: str, total: float, count: int
        ) -> None:
            if not count:
                return
            rows.append(
                ScenarioMeasurement(
                    scenario=scenario.name,
                    organization=operation_organization(
                        parts, position, operation
                    ),
                    operation=operation,
                    class_name=member,
                    position=position,
                    analytic=analytic[(position, member)][operation],
                    measured=total / count,
                    samples=count,
                )
            )

        # --- queries first: the database still matches the statistics.
        for position in range(1, path.length + 1):
            for member in path.hierarchy_at(position):
                if database.extent_size(member) == 0:
                    continue
                total = 0
                for _ in range(query_samples):
                    value = values[rng.randrange(len(values))]
                    total += backend.query(value, member).io.total
                emit("query", position, member, total, query_samples)

        # --- updates: deletions of random victims, then clone inserts.
        for position in range(1, path.length + 1):
            for member in path.hierarchy_at(position):
                if database.extent_size(member) <= update_samples:
                    continue
                total = 0
                count = 0
                for _ in range(update_samples):
                    extent = list(database.extent(member))
                    victim = extent[rng.randrange(len(extent))]
                    total += backend.delete(victim.oid).io.total
                    count += 1
                emit("delete", position, member, total, count)
                total = 0
                count = 0
                for _ in range(update_samples):
                    survivors = list(database.extent(member))
                    template = survivors[rng.randrange(len(survivors))]
                    kwargs = clone_kwargs(database, template)
                    if kwargs is None:
                        continue
                    total += backend.insert(member, **kwargs).io.total
                    count += 1
                emit("insert", position, member, total, count)
    return rows


def _fit_group(
    name: str, group: Sequence[ScenarioMeasurement]
) -> ConstantFit:
    """Weighted affine least squares over one constant group.

    Degenerate designs fall back gracefully: a single-point or
    constant-``x`` group gets a pure ratio fit (offset zero), an all-zero
    analytic column gets ``scale=1`` with the measured mean as offset,
    and a non-physical negative slope is replaced by the ratio fit —
    the correction must preserve "more predicted pages means more
    measured pages".
    """
    sw = sx = sy = sxx = sxy = 0.0
    for row in group:
        w = float(row.samples)
        sw += w
        sx += w * row.analytic
        sy += w * row.measured
        sxx += w * row.analytic * row.analytic
        sxy += w * row.analytic * row.measured

    def ratio_fit() -> tuple[float, float]:
        if sxx > 0:
            return sxy / sxx, 0.0
        return 1.0, sy / sw if sw else 0.0

    denominator = sw * sxx - sx * sx
    if denominator <= 1e-9 * max(sw * sxx, 1.0):
        scale, offset = ratio_fit()
    else:
        scale = (sw * sxy - sx * sy) / denominator
        offset = (sy - scale * sx) / sw
        if scale < 0:
            scale, offset = ratio_fit()
    residual_sq = 0.0
    for row in group:
        predicted = scale * row.analytic + offset
        residual_sq += row.samples * (predicted - row.measured) ** 2
    residual = math.sqrt(residual_sq / sw) if sw else 0.0
    return ConstantFit(
        name=name,
        scale=scale,
        offset=offset,
        samples=int(sum(row.samples for row in group)),
        residual=residual,
    )


def calibrate(
    measurements: Sequence[ScenarioMeasurement],
) -> "CalibrationReport":
    """Fit every (organization, operation) constant from measured rows."""
    if not measurements:
        raise ReproError("cannot calibrate without measurements")
    groups: dict[str, list[ScenarioMeasurement]] = {}
    for row in measurements:
        groups.setdefault(row.key, []).append(row)
    constants = {
        name: _fit_group(name, group) for name, group in sorted(groups.items())
    }
    return CalibrationReport(
        constants=constants, measurements=tuple(measurements)
    )


@dataclass(frozen=True)
class CalibrationReport:
    """Fitted constants plus the raw measurements they came from.

    Keeping the measurements makes the report *re-checkable*: every
    error metric accepts an alternative constant mapping, so the CI
    guard can evaluate the shipped constants — not merely the ones this
    fit would produce — against the same measured ground truth.
    """

    constants: Mapping[str, ConstantFit]
    measurements: tuple[ScenarioMeasurement, ...]

    def _constant(
        self, row: ScenarioMeasurement, constants: Mapping[str, ConstantFit]
    ) -> ConstantFit:
        return constants.get(row.key, IDENTITY)

    def predicted(
        self,
        row: ScenarioMeasurement,
        constants: Mapping[str, ConstantFit] | None = None,
    ) -> float:
        """Calibrated prediction for one measurement row."""
        mapping = self.constants if constants is None else constants
        return self._constant(row, mapping).apply(row.analytic)

    def scenario_errors(
        self, constants: Mapping[str, ConstantFit] | None = None
    ) -> dict[str, float]:
        """Relative error of total predicted vs measured pages, per scenario."""
        predicted: dict[str, float] = {}
        measured: dict[str, float] = {}
        for row in self.measurements:
            predicted[row.scenario] = predicted.get(row.scenario, 0.0) + (
                row.samples * self.predicted(row, constants)
            )
            measured[row.scenario] = measured.get(row.scenario, 0.0) + (
                row.samples * row.measured
            )
        errors: dict[str, float] = {}
        for scenario, total in measured.items():
            if total <= 0:
                errors[scenario] = float("inf")
            else:
                errors[scenario] = abs(predicted[scenario] - total) / total
        return errors

    @property
    def max_relative_error(self) -> float:
        """Worst post-fit per-scenario relative error."""
        return max(self.scenario_errors().values())

    def check(
        self,
        threshold: float = 0.15,
        constants: Mapping[str, ConstantFit] | None = None,
    ) -> list[str]:
        """CI-grade accuracy guard: failure messages, empty when passing."""
        failures: list[str] = []
        for scenario, error in sorted(self.scenario_errors(constants).items()):
            if not (error <= threshold):
                failures.append(
                    f"scenario {scenario}: relative error {error:.3f} "
                    f"exceeds threshold {threshold:.3f}"
                )
        return failures

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (the CI artifact schema)."""
        return {
            "constants": {
                name: {
                    "scale": fit.scale,
                    "offset": fit.offset,
                    "samples": fit.samples,
                    "residual": fit.residual,
                }
                for name, fit in sorted(self.constants.items())
            },
            "scenario_errors": {
                name: error
                for name, error in sorted(self.scenario_errors().items())
            },
            "max_relative_error": self.max_relative_error,
            "measurements": [
                {
                    "scenario": row.scenario,
                    "organization": row.organization,
                    "operation": row.operation,
                    "class": row.class_name,
                    "position": row.position,
                    "analytic": row.analytic,
                    "measured": row.measured,
                    "samples": row.samples,
                }
                for row in self.measurements
            ],
        }

    def to_json(self) -> str:
        """Compact JSON of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def render_calibration(report: CalibrationReport) -> str:
    """ASCII rendering: fitted constants, then per-scenario errors."""
    lines: list[str] = []
    header = (
        f"{'constant':<18} {'scale':>8} {'offset':>8} "
        f"{'samples':>7} {'residual':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, fit in sorted(report.constants.items()):
        lines.append(
            f"{name:<18} {fit.scale:>8.3f} {fit.offset:>8.3f} "
            f"{fit.samples:>7} {fit.residual:>9.3f}"
        )
    lines.append("")
    error_header = f"{'scenario':<24} {'rel.error':>9}"
    lines.append(error_header)
    lines.append("-" * len(error_header))
    for scenario, error in sorted(report.scenario_errors().items()):
        lines.append(f"{scenario:<24} {error:>9.3f}")
    lines.append("")
    lines.append(f"max relative error: {report.max_relative_error:.3f}")
    return "\n".join(lines)


def run_calibration(
    scenarios: Sequence[BackendScenario] | None = None,
    layout: str = "btree",
    query_samples: int = 8,
    update_samples: int = 4,
    config: CostModelConfig | None = None,
) -> CalibrationReport:
    """Measure the scenario suite and fit constants in one call."""
    return calibrate(
        measure_scenarios(
            scenarios,
            layout=layout,
            query_samples=query_samples,
            update_samples=update_samples,
            config=config,
        )
    )
