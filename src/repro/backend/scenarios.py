"""The seeded scenario suite behind the calibration accuracy guard.

Each :class:`BackendScenario` pins a synthetic world (schema shape, class
statistics, seed) and a configuration to materialize. The suite covers
the paper's five organizations — SIX and IIX on single-class subpaths,
MX, MIX and NIX on multi-class ones — plus a mixed partition, each at
three population sizes so the calibration fit sees the size trend, not a
single point.

Everything is deterministic per scenario: the populated database, the
derived statistics and therefore both the analytic and the measured side
of every comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import IndexConfiguration
from repro.costmodel.params import ClassStats, CostModelConfig, PathStatistics
from repro.model.objects import OODatabase
from repro.model.path import Path
from repro.organizations import IndexOrganization
from repro.synth import LevelSpec, linear_path_schema, populate_path_database
from repro.synth.stats import derive_path_statistics

SIX = IndexOrganization.SIX
IIX = IndexOrganization.IIX
MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX


@dataclass(frozen=True)
class BackendScenario:
    """One reproducible measured-vs-analytic comparison world."""

    name: str
    levels: tuple[LevelSpec, ...]
    specs: tuple[tuple[str, ClassStats], ...]
    assignments: tuple[tuple[int, int, IndexOrganization], ...]
    seed: int

    def build(
        self, config: CostModelConfig | None = None
    ) -> tuple[OODatabase, Path, PathStatistics, IndexConfiguration]:
        """Materialize the scenario's world (fresh database every call)."""
        schema, path = linear_path_schema(list(self.levels))
        database = populate_path_database(
            schema, path, dict(self.specs), seed=self.seed
        )
        stats = derive_path_statistics(database, path, config=config)
        configuration = IndexConfiguration.of(*self.assignments)
        return database, path, stats, configuration


def _two_level(prefix: str, scale: int, subclasses: int = 0) -> tuple:
    levels = (
        LevelSpec(f"{prefix}A", subclasses=subclasses, multi_valued=True),
        LevelSpec(f"{prefix}B", subclasses=subclasses),
    )
    specs = [
        (f"{prefix}A", ClassStats(objects=40 * scale, distinct=18 * scale, fanout=2)),
        (f"{prefix}B", ClassStats(objects=24 * scale, distinct=10 * scale, fanout=1)),
    ]
    for level in ("A", "B"):
        for sub in range(1, subclasses + 1):
            specs.append(
                (
                    f"{prefix}{level}Sub{sub}",
                    ClassStats(objects=12 * scale, distinct=6 * scale, fanout=1),
                )
            )
    return levels, tuple(specs)


def _three_level(prefix: str, scale: int, subclasses: int = 0) -> tuple:
    levels = (
        LevelSpec(f"{prefix}P", multi_valued=True),
        LevelSpec(f"{prefix}V", subclasses=subclasses),
        LevelSpec(f"{prefix}D", multi_valued=True),
    )
    specs = [
        (f"{prefix}P", ClassStats(objects=45 * scale, distinct=20 * scale, fanout=2)),
        (f"{prefix}V", ClassStats(objects=30 * scale, distinct=12 * scale, fanout=1)),
        (f"{prefix}D", ClassStats(objects=18 * scale, distinct=8 * scale, fanout=2)),
    ]
    for sub in range(1, subclasses + 1):
        specs.append(
            (
                f"{prefix}VSub{sub}",
                ClassStats(objects=15 * scale, distinct=7 * scale, fanout=1),
            )
        )
    return levels, tuple(specs)


def default_scenarios() -> list[BackendScenario]:
    """The suite the CI accuracy guard runs (deterministic, CI-sized)."""
    scenarios: list[BackendScenario] = []
    for scale, tag in ((3, "small"), (6, "large"), (9, "xlarge")):
        levels, specs = _two_level("Q", scale)
        scenarios.append(
            BackendScenario(
                name=f"six-pair-{tag}",
                levels=levels,
                specs=specs,
                assignments=((1, 1, SIX), (2, 2, SIX)),
                seed=11 + scale,
            )
        )
        levels, specs = _two_level("R", scale, subclasses=2)
        scenarios.append(
            BackendScenario(
                name=f"iix-pair-{tag}",
                levels=levels,
                specs=specs,
                assignments=((1, 1, IIX), (2, 2, IIX)),
                seed=23 + scale,
            )
        )
        levels, specs = _three_level("M", scale)
        scenarios.append(
            BackendScenario(
                name=f"mx-path-{tag}",
                levels=levels,
                specs=specs,
                assignments=((1, 3, MX),),
                seed=37 + scale,
            )
        )
        levels, specs = _three_level("X", scale, subclasses=2)
        scenarios.append(
            BackendScenario(
                name=f"mix-path-{tag}",
                levels=levels,
                specs=specs,
                assignments=((1, 3, MIX),),
                seed=41 + scale,
            )
        )
        levels, specs = _three_level("N", scale, subclasses=1)
        scenarios.append(
            BackendScenario(
                name=f"nix-path-{tag}",
                levels=levels,
                specs=specs,
                assignments=((1, 3, NIX),),
                seed=53 + scale,
            )
        )
        levels, specs = _three_level("Z", scale, subclasses=1)
        scenarios.append(
            BackendScenario(
                name=f"mixed-partition-{tag}",
                levels=levels,
                specs=specs,
                assignments=((1, 2, NIX), (3, 3, MIX)),
                seed=67 + scale,
            )
        )
    return scenarios
