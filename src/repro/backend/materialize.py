"""Materializing an advised configuration as real page structures.

:class:`MaterializedConfiguration` builds the
:class:`~repro.indexes.manager.ConfigurationIndexSet` of a configuration
on a :class:`~repro.backend.tracker.PageAccessTracker` instead of a plain
pager, so every structure's pages are attributed to their
(subpath, organization) or heap owner, and exposes measured
``query``/``insert``/``delete`` returning the result *and* the
:class:`~repro.backend.tracker.OperationIO` of the operation.

This is the ground-truth side of the cost model: what the analytic
CRT/CMT formulas predict, this measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.tracker import OperationIO, PageAccessTracker
from repro.core.configuration import IndexConfiguration
from repro.indexes.manager import ConfigurationIndexSet, part_label
from repro.model.objects import OID, OODatabase
from repro.model.path import Path
from repro.storage.sizes import SizeModel


@dataclass(frozen=True)
class MeasuredOperation:
    """Result and measured I/O of one backend operation."""

    kind: str
    oids: frozenset[OID]
    io: OperationIO


class MaterializedConfiguration:
    """An index configuration as actual page-based structures.

    Parameters
    ----------
    database, path, configuration:
        What to materialize. The database is mutated by inserts/deletes.
    sizes:
        Physical constants; defaults to :class:`SizeModel`.
    layout:
        ``"btree"`` (the paper's structures) or ``"hash"`` (hash
        directories plus chained NIX primaries; no range predicates).
    tracker:
        Share an existing tracker; a fresh one is created by default.
    """

    def __init__(
        self,
        database: OODatabase,
        path: Path,
        configuration: IndexConfiguration,
        sizes: SizeModel | None = None,
        layout: str = "btree",
        tracker: PageAccessTracker | None = None,
    ) -> None:
        self.sizes = sizes or SizeModel()
        self.tracker = tracker or PageAccessTracker(page_size=self.sizes.page_size)
        self.layout = layout
        with self.tracker.track("materialize", buffered=False) as build:
            self.indexes = ConfigurationIndexSet(
                database,
                path,
                configuration,
                sizes=self.sizes,
                pager=self.tracker,
                layout=layout,
            )
        assert build.result is not None
        #: I/O of the bulk build itself (page allocations included).
        self.build_io: OperationIO = build.result

    @property
    def database(self) -> OODatabase:
        """The underlying (mutated) object store."""
        return self.indexes.database

    @property
    def path(self) -> Path:
        """The indexed path."""
        return self.indexes.path

    @property
    def configuration(self) -> IndexConfiguration:
        """The materialized configuration."""
        return self.indexes.configuration

    # ------------------------------------------------------------------
    # measured operations
    # ------------------------------------------------------------------
    def query(
        self,
        value: object,
        target_class: str,
        include_subclasses: bool = False,
        fetch_objects: bool = False,
    ) -> MeasuredOperation:
        """Measured equality query against the path's ending attribute."""
        with self.tracker.track("query") as measurement:
            oids = self.indexes.query(
                value,
                target_class,
                include_subclasses=include_subclasses,
                fetch_objects=fetch_objects,
            )
        assert measurement.result is not None
        return MeasuredOperation(
            kind="query", oids=frozenset(oids), io=measurement.result
        )

    def range_query(
        self,
        low: object,
        high: object,
        target_class: str,
        include_subclasses: bool = False,
    ) -> MeasuredOperation:
        """Measured range query (B+-tree layout only)."""
        with self.tracker.track("range_query") as measurement:
            oids = self.indexes.range_query(
                low, high, target_class, include_subclasses=include_subclasses
            )
        assert measurement.result is not None
        return MeasuredOperation(
            kind="range_query", oids=frozenset(oids), io=measurement.result
        )

    def insert(self, class_name: str, **values: object) -> MeasuredOperation:
        """Measured object insertion (index maintenance included)."""
        with self.tracker.track("insert") as measurement:
            oid = self.indexes.insert(class_name, **values)
        assert measurement.result is not None
        return MeasuredOperation(
            kind="insert", oids=frozenset((oid,)), io=measurement.result
        )

    def delete(self, oid: OID) -> MeasuredOperation:
        """Measured object deletion (index maintenance and CMD included)."""
        with self.tracker.track("delete") as measurement:
            self.indexes.delete(oid)
        assert measurement.result is not None
        return MeasuredOperation(
            kind="delete", oids=frozenset((oid,)), io=measurement.result
        )

    # ------------------------------------------------------------------
    # storage accounting / verification
    # ------------------------------------------------------------------
    def part_labels(self) -> list[str]:
        """Owner labels of the configuration's parts, in path order."""
        return [
            part_label(assignment) for assignment, _ in self.indexes.parts()
        ]

    def storage_by_owner(self) -> dict[str, int]:
        """Live pages per owner (index structures and heap extents)."""
        return self.tracker.owner_live_pages()

    def check_consistency(self) -> None:
        """Verify every index against the database (uncounted)."""
        self.indexes.check_consistency()
