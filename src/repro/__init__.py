"""repro — optimal index configuration selection for OO databases.

A complete reproduction of *"On the Selection of Optimal Index
Configuration in OO Databases"* (Choenni, Bertino, Blanken & Chang,
ICDE 1994): the object-oriented data model, the page-level storage
simulator with operational SIX/IIX/MX/MIX/NIX indexes, the analytic cost
models of Section 3, the workload model of Section 3.2, and the
``Cost_Matrix`` / ``Min_Cost`` / ``Opt_Ind_Con`` selection algorithm of
Section 5 with exhaustive and dynamic-programming baselines — plus the
Section 6 extensions: beam-backed multi-path joint selection
(:func:`optimize_multipath`, with an optional ``budget_pages`` storage
constraint), single-path budgeted selection
(:func:`optimize_with_budget`), and incremental what-if sessions
(:class:`AdvisorSession` / :class:`MultiPathSession`) that answer
perturbation queries without rerunning the pipeline from scratch, and
continuous trace-driven advising (:class:`ContinuousAdvisor` over
``repro.trace`` operation streams with windowed drift detection).

Quickstart::

    from repro import advise
    from repro.paper import figure7_load, figure7_statistics

    report = advise(figure7_statistics(), figure7_load())
    print(report.render())
"""

from repro.core.advisor import DEFAULT_STRATEGY, AdvisorReport, advise
from repro.core.budget import BudgetedResult, optimize_with_budget
from repro.core.configuration import IndexConfiguration, IndexedSubpath
from repro.core.cost_matrix import CostMatrix
from repro.core.multipath import (
    MultiPathResult,
    PathWorkload,
    SharedIndexKey,
    optimize_multipath,
)
from repro.core.planner import Plan, explain_query, explain_update
from repro.costmodel.params import ClassStats, CostModelConfig, PathStatistics
from repro.costmodel.subpath import build_model, subpath_processing_cost
from repro.errors import ReproError
from repro.model.attribute import AtomicType, Attribute
from repro.model.objects import OID, OODatabase, ObjectInstance
from repro.model.path import Path
from repro.model.schema import ClassDef, Schema
from repro.organizations import CONFIGURABLE_ORGANIZATIONS, IndexOrganization
from repro.search import (
    SearchResult,
    SearchStrategy,
    available_strategies,
    enumerate_partitions,
    get_strategy,
)
from repro.storage.sizes import SizeModel
from repro.trace import (
    ContinuousAdvisor,
    TraceEvent,
    generate_trace,
    read_trace,
    write_trace,
)
from repro.whatif import AdvisorSession, MultiPathSession, Perturbation
from repro.workload.generator import WorkloadGenerator
from repro.workload.load import LoadDistribution, LoadTriplet

__version__ = "1.0.0"

__all__ = [
    "AdvisorReport",
    "AdvisorSession",
    "AtomicType",
    "Attribute",
    "BudgetedResult",
    "CONFIGURABLE_ORGANIZATIONS",
    "DEFAULT_STRATEGY",
    "ClassDef",
    "ContinuousAdvisor",
    "ClassStats",
    "CostMatrix",
    "CostModelConfig",
    "IndexConfiguration",
    "IndexOrganization",
    "IndexedSubpath",
    "LoadDistribution",
    "LoadTriplet",
    "MultiPathResult",
    "MultiPathSession",
    "OID",
    "OODatabase",
    "ObjectInstance",
    "Path",
    "PathStatistics",
    "PathWorkload",
    "Perturbation",
    "Plan",
    "ReproError",
    "Schema",
    "SharedIndexKey",
    "SearchResult",
    "SearchStrategy",
    "SizeModel",
    "TraceEvent",
    "WorkloadGenerator",
    "advise",
    "available_strategies",
    "build_model",
    "enumerate_partitions",
    "explain_query",
    "explain_update",
    "generate_trace",
    "get_strategy",
    "optimize_multipath",
    "optimize_with_budget",
    "read_trace",
    "subpath_processing_cost",
    "write_trace",
]
