"""Statistics and configuration: the Table 2 symbols.

:class:`ClassStats` carries the per-class inputs the paper assumes known
(`n_{l,x}` objects, ``d_{l,x}`` distinct values of the path attribute,
``nin_{l,x}`` average values per object — Figure 7's columns).

:class:`PathStatistics` binds those to a :class:`~repro.model.path.Path`
and derives every other Table 2 quantity:

* ``k_{l,x} = n_{l,x} · nin_{l,x} / d_{l,x}`` — objects per value;
* ``par_{l,x} = Σ_j k_{l-1,j}`` — parents of an object;
* ``nin-bar_{l,x}(t)`` — average number of distinct values of the nested
  attribute ``A_t`` held by an object of ``C_{l,x}`` (derived by chaining
  the per-level fanouts, capped by the number of distinct ``A_t`` values);
* hierarchy-wide distinct-value unions for inherited indexes.

:class:`CostModelConfig` collects the physical constants and the paper's
explicit input parameters ``pr_X`` / ``pm_X`` / ``pmd_X`` / ``pmi_X``
(overridable; derived from record shapes when left ``None``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache

from repro.errors import CostModelError
from repro.model.path import Path
from repro.storage.sizes import SizeModel


@dataclass(frozen=True)
class ClassStats:
    """Per-class statistics for one path position (a Figure 7 row).

    Attributes
    ----------
    objects:
        ``n_{l,x}`` — number of objects in the class (excluding subclasses).
    distinct:
        ``d_{l,x}`` — number of distinct values of the class's path
        attribute ``A_l`` within the class.
    fanout:
        ``nin_{l,x}`` — average number of values of ``A_l`` per object
        (1 for single-valued attributes).
    """

    objects: float
    distinct: float
    fanout: float = 1.0

    def __post_init__(self) -> None:
        if self.objects < 0:
            raise CostModelError(f"objects must be >= 0, got {self.objects}")
        if self.distinct < 0:
            raise CostModelError(f"distinct must be >= 0, got {self.distinct}")
        if self.fanout < 0:
            raise CostModelError(f"fanout must be >= 0, got {self.fanout}")
        if self.objects > 0 and self.distinct <= 0:
            raise CostModelError("a populated class needs at least one distinct value")
        if self.distinct > self.objects * max(self.fanout, 1.0):
            raise CostModelError(
                "distinct values cannot exceed total attribute instances "
                f"({self.distinct} > {self.objects} * {max(self.fanout, 1.0)})"
            )

    @property
    def k(self) -> float:
        """``k_{l,x}``: average objects sharing one value of ``A_l``."""
        if self.distinct == 0:
            return 0.0
        return self.objects * self.fanout / self.distinct


@dataclass(frozen=True)
class CostModelConfig:
    """Physical constants and the paper's explicit input parameters.

    ``pr``/``pm`` values default to ``None`` meaning "derive from the
    record shape" (``⌈ln/p⌉`` for full-record operations, the class share
    for partial NIX retrievals). The paper states these are inputs, so each
    can be pinned explicitly.

    ``clamp_cardinalities`` keeps Yao's formula well-defined by clamping
    retrieved-record estimates at the number of records that exist; the
    clamp only binds on workloads far more skewed than the paper's.

    ``cache_evaluation`` enables the shared evaluation caches on
    :class:`PathStatistics` (index shapes, probe-key fan-in chains,
    ``nin-bar`` products, Yao sums). Statistics are immutable, so the
    caches are always exact; the switch exists for memory-constrained
    callers and for benchmarking the uncached evaluation path.
    """

    sizes: SizeModel = field(default_factory=SizeModel)
    pr_mx: float | None = None
    pm_mx: float | None = None
    pr_mix: float | None = None
    pm_mix: float | None = None
    pr_nix: float | None = None
    pmd_nix: float | None = None
    pmi_nix: float | None = None
    pm_ax: float | None = None
    clamp_cardinalities: bool = True
    cache_evaluation: bool = True
    #: Optional cap on the union of distinct ending-attribute values across
    #: the ending class hierarchy (e.g. the size of an atomic domain).
    ending_domain_distinct: float | None = None

    def with_sizes(self, sizes: SizeModel) -> "CostModelConfig":
        """A copy with different physical constants."""
        return replace(self, sizes=sizes)


class PathStatistics:
    """Statistics for every class in the scope of a path.

    Parameters
    ----------
    path:
        The (full) path the statistics describe.
    per_class:
        ``{class name: ClassStats}`` for **every** class in ``scope(path)``.
        The stats of a class describe its path attribute: for class
        ``C_{l,x}`` (a member of the hierarchy at position ``l``) they
        describe attribute ``A_l``.
    config:
        Physical constants and model knobs.
    """

    def __init__(
        self,
        path: Path,
        per_class: dict[str, ClassStats],
        config: CostModelConfig | None = None,
    ) -> None:
        self.path = path
        self.config = config or CostModelConfig()
        self.length = path.length
        self._cache_enabled = self.config.cache_evaluation
        missing = [name for name in path.scope if name not in per_class]
        if missing:
            raise CostModelError(f"missing ClassStats for scope classes: {missing}")
        self._stats = dict(per_class)
        # Caches keyed by position; statistics are immutable after
        # construction, so the per-position hierarchy aggregates that the
        # cost formulas hammer (every subpath × organization recomputes
        # them) are memoized.
        self._members_cache: dict[int, tuple[str, ...]] = {}
        self._total_objects_cache: dict[int, float] = {}
        self._sum_k_cache: dict[int, float] = {}
        self._mean_fanout_cache: dict[int, float] = {}
        self._distinct_union_cache: dict[int, float] = {}
        # Cross-row evaluation caches (gated by config.cache_evaluation):
        # the quantities below depend only on the immutable statistics, yet
        # Cost_Matrix construction recomputes them for every subpath ×
        # organization. Keys are plain tuples of positions/names/floats, so
        # identical inputs hit identical entries and the cached evaluation
        # is bit-for-bit equal to the uncached one.
        self._probe_keys_cache: dict[tuple[int, int, float], float] = {}
        self._ninbar_cache: dict[tuple[int, str, int], float] = {}
        self._occupied_cache: dict[tuple[int, float], float] = {}
        self._shape_cache: dict[tuple, object] = {}
        self._primitive_cache: dict[tuple, float] = {}
        # Persistent columnar lowerings (repro.kernel.arrays.StatArrays)
        # keyed by workload identity; bounded, managed by the kernel.
        self._stat_arrays_cache: list = []

    def __getstate__(self) -> dict:
        """Pickle support for parallel ``Cost_Matrix`` workers.

        The cross-row evaluation caches are dropped: they are rebuilt on
        demand, and the primitive memo is keyed by in-process object ids
        that must never cross a process boundary.
        """
        state = self.__dict__.copy()
        state["_probe_keys_cache"] = {}
        state["_ninbar_cache"] = {}
        state["_occupied_cache"] = {}
        state["_shape_cache"] = {}
        state["_primitive_cache"] = {}
        state["_stat_arrays_cache"] = []
        return state

    # ------------------------------------------------------------------
    # basic accessors (Table 2)
    # ------------------------------------------------------------------
    def members(self, position: int) -> tuple[str, ...]:
        """Hierarchy members of ``C_l`` (root first): the classes ``C_{l,j}``."""
        cached = self._members_cache.get(position)
        if cached is None:
            cached = tuple(self.path.hierarchy_at(position))
            self._members_cache[position] = cached
        return cached

    def nc(self, position: int) -> int:
        """``nc_l``: number of classes in the hierarchy at position ``l``."""
        return len(self.members(position))

    def stats_of(self, class_name: str) -> ClassStats:
        """The raw :class:`ClassStats` of a scope class."""
        try:
            return self._stats[class_name]
        except KeyError:
            raise CostModelError(f"no statistics for class {class_name!r}") from None

    def n(self, position: int, class_name: str) -> float:
        """``n_{l,x}``: objects in the class."""
        self._check_member(position, class_name)
        return self.stats_of(class_name).objects

    def d(self, position: int, class_name: str) -> float:
        """``d_{l,x}``: distinct values of ``A_l`` in the class."""
        self._check_member(position, class_name)
        return self.stats_of(class_name).distinct

    def nin(self, position: int, class_name: str) -> float:
        """``nin_{l,x}``: average values of ``A_l`` per object."""
        self._check_member(position, class_name)
        return self.stats_of(class_name).fanout

    def k(self, position: int, class_name: str) -> float:
        """``k_{l,x} = n·nin/d``: objects sharing a value."""
        self._check_member(position, class_name)
        return self.stats_of(class_name).k

    # ------------------------------------------------------------------
    # hierarchy aggregates
    # ------------------------------------------------------------------
    def total_objects(self, position: int) -> float:
        """``Σ_j n_{l,j}``: objects across the whole hierarchy at ``l``."""
        cached = self._total_objects_cache.get(position)
        if cached is None:
            cached = sum(
                self.stats_of(name).objects for name in self.members(position)
            )
            self._total_objects_cache[position] = cached
        return cached

    def sum_k(self, position: int) -> float:
        """``Σ_j k_{l,j}``: hierarchy-wide fan-in of one value of ``A_l``."""
        cached = self._sum_k_cache.get(position)
        if cached is None:
            cached = sum(
                self.stats_of(name).k for name in self.members(position)
            )
            self._sum_k_cache[position] = cached
        return cached

    def mean_fanout(self, position: int) -> float:
        """Object-weighted mean ``nin`` across the hierarchy at ``l``."""
        cached = self._mean_fanout_cache.get(position)
        if cached is not None:
            return cached
        total = self.total_objects(position)
        if total == 0:
            value = 0.0
        else:
            weighted = sum(
                self.stats_of(name).objects * self.stats_of(name).fanout
                for name in self.members(position)
            )
            value = weighted / total
        self._mean_fanout_cache[position] = value
        return value

    def distinct_union(self, position: int) -> float:
        """Distinct values of ``A_l`` across the whole hierarchy.

        For reference attributes the union cannot exceed the population of
        the next hierarchy on the path; for the ending attribute an
        optional domain cap from the config applies. Within those caps we
        use the sum of per-class counts (disjoint-worst-case), which is the
        estimate the paper's per-class ``d`` figures support.
        """
        cached = self._distinct_union_cache.get(position)
        if cached is not None:
            return cached
        total = sum(self.stats_of(name).distinct for name in self.members(position))
        if position < self.length:
            cap = self.total_objects(position + 1)
            value = min(total, cap) if cap > 0 else total
        elif self.config.ending_domain_distinct is not None:
            value = min(total, self.config.ending_domain_distinct)
        else:
            value = total
        self._distinct_union_cache[position] = value
        return value

    # ------------------------------------------------------------------
    # derived Table 2 quantities
    # ------------------------------------------------------------------
    def par(self, position: int) -> float:
        """``par_{l,x} = Σ_j k_{l-1,j}``: parents of an object at ``l``.

        Defined for ``position >= 2``; objects of the starting class have
        no parents along the path.
        """
        if position < 2:
            return 0.0
        return self.sum_k(position - 1)

    def ninbar(self, position: int, class_name: str, end: int) -> float:
        """``nin-bar``: values of nested attribute ``A_end`` per object.

        Chained fanout from the class's own attribute through the
        object-weighted mean fanouts of the intermediate levels, capped by
        the number of distinct ``A_end`` values (an object cannot reach
        more values than exist).
        """
        if not 1 <= position <= end <= self.length:
            raise CostModelError(
                f"ninbar positions out of range: {position}..{end} in 1..{self.length}"
            )
        cache = self._ninbar_cache if self._cache_enabled else None
        if cache is not None:
            cached = cache.get((position, class_name, end))
            if cached is not None:
                return cached
        value = self.nin(position, class_name)
        for level in range(position + 1, end + 1):
            value *= self.mean_fanout(level)
        cap = self.distinct_union(end)
        value = min(value, cap) if cap > 0 else value
        if cache is not None:
            cache[(position, class_name, end)] = value
        return value

    # ------------------------------------------------------------------
    # fan-in chains (the noid formulas of Section 3.1)
    # ------------------------------------------------------------------
    def probe_keys(self, position: int, end: int, probes: float = 1.0) -> float:
        """Number of key values looked up in a level-``position`` index.

        ``noid-sigma_{position+1}``: starting from ``probes`` equality
        values against ``A_end``, each level multiplies by the hierarchy
        fan-in ``Σ_j k``. Clamped at the population of the level above
        (keys are oids of ``C_{position+1}`` objects) when clamping is on.
        """
        cache = self._probe_keys_cache if self._cache_enabled else None
        if cache is not None:
            cached = cache.get((position, end, probes))
            if cached is not None:
                return cached
        clamp = self.config.clamp_cardinalities
        value = probes
        for level in range(end, position, -1):
            value *= self.sum_k(level)
            if clamp:
                cap = self.total_objects(level)
                if value > cap:
                    value = cap
        if cache is not None:
            cache[(position, end, probes)] = value
        return value

    def noid(
        self, position: int, class_name: str, end: int, probes: float = 1.0
    ) -> float:
        """``noid_{l,x}``: oids of ``C_{l,x}`` objects satisfying the predicate."""
        value = self.k(position, class_name) * self.probe_keys(position, end, probes)
        if self.config.clamp_cardinalities:
            value = min(value, self.n(position, class_name))
        return value

    def noid_hierarchy(self, position: int, end: int, probes: float = 1.0) -> float:
        """``noid-sigma``: oids across the hierarchy at ``position``."""
        return sum(
            self.noid(position, name, end, probes)
            for name in self.members(position)
        )

    # ------------------------------------------------------------------
    # occupancy estimates for NIX auxiliary records
    # ------------------------------------------------------------------
    def occupied_members(self, position: int, values: float) -> float:
        """``nar``-style count: hierarchy members holding >= 1 of ``values``.

        The paper postulates a distribution ``(nin_{l+1,1}, ...)`` of the
        values over the hierarchy and counts the non-zero entries. We use
        the expected occupancy when ``values`` items land on members with
        probability proportional to their populations.
        """
        if values <= 0:
            return 0.0
        cache = self._occupied_cache if self._cache_enabled else None
        if cache is not None:
            cached = cache.get((position, values))
            if cached is not None:
                return cached
        total = self.total_objects(position)
        if total <= 0:
            return 0.0
        occupied = 0.0
        for name in self.members(position):
            share = self.stats_of(name).objects / total
            if share > 0:
                occupied += 1.0 - (1.0 - share) ** values
        occupied = min(occupied, float(self.nc(position)), values)
        if cache is not None:
            cache[(position, values)] = occupied
        return occupied

    # ------------------------------------------------------------------
    # shared evaluation caches (the fast Cost_Matrix evaluation layer)
    # ------------------------------------------------------------------
    def cached_shape(self, key: tuple, builder):
        """A cross-row index-shape cache.

        Every cost model's shapes are pure functions of these statistics,
        yet matrix construction instantiates a fresh model per subpath ×
        organization. ``key`` identifies the shape (e.g. ``("mx", l, C)``);
        ``builder`` is invoked only on a miss. With
        ``config.cache_evaluation`` off the builder always runs.
        """
        if not self._cache_enabled:
            return builder()
        shape = self._shape_cache.get(key)
        if shape is None:
            shape = builder()
            self._shape_cache[key] = shape
        return shape

    def primitive_cache(self) -> dict | None:
        """The CRT/CMT/CRR memo table, or ``None`` when caching is off."""
        if not self._cache_enabled:
            return None
        return self._primitive_cache

    def _check_member(self, position: int, class_name: str) -> None:
        if class_name not in self.members(position):
            raise CostModelError(
                f"class {class_name!r} is not in the hierarchy at position "
                f"{position} of {self.path}"
            )

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def subpath_positions(self, start: int, end: int) -> range:
        """The positions covered by subpath ``S_{start,end}``."""
        if not 1 <= start <= end <= self.length:
            raise CostModelError(
                f"subpath {start}..{end} out of range for {self.path}"
            )
        return range(start, end + 1)

    def describe(self) -> str:
        """Multi-line summary of the statistics (Figure 7 style)."""
        lines = [f"path: {self.path}"]
        for position in range(1, self.length + 1):
            for name in self.members(position):
                stats = self.stats_of(name)
                lines.append(
                    f"  [{position}] {name}: n={stats.objects:g} "
                    f"d={stats.distinct:g} nin={stats.fanout:g} k={stats.k:g}"
                )
        return "\n".join(lines)
