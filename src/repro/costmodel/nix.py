"""Nested inherited index (NIX) cost model.

A NIX on a subpath consists of (Section 3.1, Figures 3–5):

* a **primary index** keyed by the values of the subpath's ending
  attribute; each record lists, per class in the subpath's scope, the oids
  of the objects holding that value in their nested attribute (with
  ``numchild`` counters for multi-valued attributes);
* an **auxiliary index** keyed by oid, holding one 3-tuple per object of
  the non-starting classes: the oid, the pointers to the primary records
  containing it, and the list of its aggregation parents.

Queries read one primary record per probe value (``CRL``, or a partial
read of the relevant class's pages when the record spans pages).
Maintenance follows the paper's step-by-step algorithms:

* deletion: ``CSD2`` (children's and own 3-tuples) plus ``CSD3``
  (= ``CS3a`` primary-record maintenance + ``CU3bc`` ancestor 3-tuple
  rewrites + ``min(SA1, SA2)`` parent-oid retrieval);
* insertion: ``CSI24`` (3-tuple accesses, own 3-tuple creation) plus
  ``CSI3`` (primary-record maintenance).

Degenerate boundaries are handled explicitly: objects of the starting
class have no 3-tuples, and objects of the ending class have no indexed
children (their attribute values *are* the primary keys).
"""

from __future__ import annotations

import math

from repro.costmodel.base import SubpathCostModel
from repro.costmodel.btree_shape import IndexShape, build_shape
from repro.costmodel.params import PathStatistics
from repro.costmodel.primitives import cml, crr
from repro.costmodel.yao import npa
from repro.organizations import IndexOrganization


class NIXCostModel(SubpathCostModel):
    """Analytic costs of a nested inherited index on one subpath."""

    organization = IndexOrganization.NIX

    def __init__(self, stats: PathStatistics, start: int, end: int) -> None:
        super().__init__(stats, start, end)
        self._primary = stats.cached_shape(
            ("nix_primary", start, end), self._build_primary_shape
        )
        self._auxiliary = stats.cached_shape(
            ("nix_auxiliary", start, end), self._build_auxiliary_shape
        )

    # ------------------------------------------------------------------
    # shapes
    # ------------------------------------------------------------------
    @property
    def primary_shape(self) -> IndexShape:
        """Shape of the primary (value → scope oids) index."""
        return self._primary

    @property
    def auxiliary_shape(self) -> IndexShape:
        """Shape of the auxiliary (oid → 3-tuple) index."""
        return self._auxiliary

    def _primary_record_count(self) -> float:
        return self.stats.distinct_union(self.end)

    def _entry_size(self, position: int) -> int:
        """Oid entry size: ``(oid, numchild)`` for multi-valued attributes."""
        attribute = self.stats.path.attribute_def_at(position)
        if attribute.multi_valued:
            return self.sizes.oid_size + self.sizes.numchild_size
        return self.sizes.oid_size

    def _objects_per_value(self, position: int, class_name: str) -> float:
        """``K_{i,j}``: objects of a class listed in one primary record."""
        records = self._primary_record_count()
        if records <= 0:
            return 0.0
        stats = self.stats
        incidences = stats.n(position, class_name) * stats.ninbar(
            position, class_name, self.end
        )
        return incidences / records

    def _build_primary_shape(self) -> IndexShape:
        length = float(
            self.sizes.record_header_size + self.key_size_at(self.end)
        )
        for position in self.positions():
            for member in self.stats.members(position):
                length += self.sizes.class_directory_entry_size
                length += self._objects_per_value(position, member) * self._entry_size(
                    position
                )
        return build_shape(
            record_count=self._primary_record_count(),
            record_length=length,
            key_size=self.key_size_at(self.end),
            sizes=self.sizes,
        )

    def _build_auxiliary_shape(self) -> IndexShape:
        # One 3-tuple per object of every non-starting class of the subpath.
        total_objects = 0.0
        weighted_length = 0.0
        for position in range(self.start + 1, self.end + 1):
            parents = self.stats.par(position)
            for member in self.stats.members(position):
                count = self.stats.n(position, member)
                pointers = self.stats.ninbar(position, member, self.end)
                tuple_length = (
                    self.sizes.record_header_size
                    + self.sizes.oid_size
                    + pointers * self.sizes.pointer_size
                    + parents * self.sizes.oid_size
                )
                total_objects += count
                weighted_length += count * tuple_length
        if total_objects == 0:
            return build_shape(0.0, 0.0, self.sizes.oid_size, self.sizes)
        return build_shape(
            record_count=total_objects,
            record_length=weighted_length / total_objects,
            key_size=self.sizes.oid_size,
            sizes=self.sizes,
        )

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def _partial_pr(self, position: int, class_name: str) -> float | None:
        """Pages of a primary record relevant to one class.

        The class directory (Figure 3) stores per-class offsets, so a query
        for one class touches the directory page plus the pages holding
        that class's oid list rather than the whole record.
        """
        if self.config.pr_nix is not None:
            return self.config.pr_nix
        shape = self._primary
        if not shape.oversized:
            return None
        share = (
            self.sizes.class_directory_entry_size * len(self.stats.members(position))
            + self._objects_per_value(position, class_name)
            * self._entry_size(position)
        )
        pages = 1 + math.ceil(share / self.sizes.page_size)
        return float(min(pages, shape.record_pages))

    def query_cost(self, position: int, class_name: str, probes: float = 1.0) -> float:
        self._check_covered(position, class_name)
        return self._crt(self._primary, probes, self._partial_pr(position, class_name))

    def hierarchy_query_cost(self, position: int, probes: float = 1.0) -> float:
        """Retrieval w.r.t. a class and its subclasses (larger record share)."""
        members = self.stats.members(position)
        if self.config.pr_nix is not None or not self._primary.oversized:
            return self.query_cost(position, members[0], probes)
        share = self.sizes.class_directory_entry_size * len(members)
        for member in members:
            share += self._objects_per_value(position, member) * self._entry_size(
                position
            )
        pages = 1 + math.ceil(share / self.sizes.page_size)
        pr = float(min(pages, self._primary.record_pages))
        return self._crt(self._primary, probes, pr)

    def range_query_cost(
        self,
        position: int,
        class_name: str,
        selectivity: float,
        probes: float = 1.0,
    ) -> float:
        """Range predicate: one contiguous walk of the chained primary
        leaves; per touched record only the target class's pages count."""
        from repro.costmodel.ranges import range_scan_cost

        self._check_covered(position, class_name)
        return range_scan_cost(
            self._primary,
            min(1.0, selectivity * probes),
            self._partial_pr(position, class_name),
        )

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def insert_cost(self, position: int, class_name: str) -> float:
        self._check_covered(position, class_name)
        stats = self.stats
        nin = stats.nin(position, class_name)
        # CSI3: the new object joins the primary records of every ending
        # value it reaches.
        primary = self._cmt(
            self._primary,
            stats.ninbar(position, class_name, self.end),
            self.config.pmi_nix,
        )
        if position < self.end:
            # CSI24: read the children's 3-tuples, rewrite them with the new
            # parent, and create the object's own 3-tuple.
            own = 1.0 if position > self.start else 0.0
            nar = stats.occupied_members(position + 1, nin)
            auxiliary = self._crt(self._auxiliary, nin, 1.0) + self._crr(
                self._auxiliary, nar + own, self.config.pm_ax
            )
        elif position > self.start:
            # Ending-class object: no indexed children; only its own 3-tuple.
            auxiliary = self._cmt(self._auxiliary, 1.0, self.config.pm_ax)
        else:
            auxiliary = 0.0
        return primary + auxiliary

    def delete_cost(self, position: int, class_name: str) -> float:
        self._check_covered(position, class_name)
        stats = self.stats
        nin = stats.nin(position, class_name)

        # --- step 2 (CSD2): children's 3-tuples and the object's own.
        if position < self.end:
            own = 1.0 if position > self.start else 0.0
            nar = stats.occupied_members(position + 1, nin)
            csd2 = self._crt(self._auxiliary, nin + own, 1.0) + self._crr(
                self._auxiliary, nar + own, self.config.pm_ax
            )
        elif position > self.start:
            csd2 = self._cmt(self._auxiliary, 1.0, self.config.pm_ax)
        else:
            csd2 = 0.0

        # --- step 3a (CS3a): fetch and rewrite the primary records.
        cs3a = self._cmt(
            self._primary,
            stats.ninbar(position, class_name, self.end),
            self.config.pmd_nix,
        )

        # --- steps 3b/3c (CU3bc) and the parent-oid retrieval (SA1/SA2).
        # The parent fan-in chain at each level depends only on (position,
        # level) — the subpath start merely truncates the walk — so the
        # per-level (parents, narp) pairs are memoized across rows.
        cache = self._memo
        auxiliary = self._auxiliary
        auxiliary_id = id(auxiliary)
        pm_ax = self.config.pm_ax
        cu3bc = 0.0
        parents_total = 0.0
        narp_total = 0.0
        parents = 0.0
        narp = 0.0
        for level in range(position - 1, self.start, -1):
            pair = cache.get((41, position, level)) if cache is not None else None
            if pair is None:
                parents = (parents if parents > 0 else 1.0) * stats.sum_k(level)
                if self.config.clamp_cardinalities:
                    parents = min(parents, stats.total_objects(level))
                narp = stats.occupied_members(level, parents)
                if cache is not None:
                    cache[(41, position, level)] = (parents, narp)
            else:
                parents, narp = pair
            if cache is None:
                cu3bc += crr(auxiliary, narp, pm_ax)
            else:
                rewrite_key = (3, auxiliary_id, narp, pm_ax)
                rewrite = cache.get(rewrite_key)
                if rewrite is None:
                    rewrite = crr(auxiliary, narp, pm_ax)
                    cache[rewrite_key] = rewrite
                cu3bc += rewrite
            parents_total += parents
            narp_total += narp
        retrieval = 0.0
        if parents_total > 0 and not self._auxiliary.empty:
            # The SA1/SA2 Yao retrievals over the auxiliary leaf profile
            # are pure functions of (shape, parents_total, narp_total),
            # and the chain totals repeat across every hierarchy member
            # of a position and across load-only recomputes — so the
            # min(SA1, SA2) choice is tabulated in the statistics-owned
            # memo alongside the other evaluation caches (tag 42).
            retrieval_key = (
                (42, auxiliary_id, parents_total, narp_total)
                if cache is not None
                else None
            )
            retrieval = (
                cache.get(retrieval_key) if retrieval_key is not None else None
            )
            if retrieval is None:
                leaf = auxiliary.levels[0]
                sa1 = npa(
                    min(parents_total, leaf.records), leaf.records, leaf.pages
                )
                if auxiliary.oversized:
                    sa2 = narp_total
                else:
                    sa2 = npa(
                        min(narp_total, leaf.records), leaf.records, leaf.pages
                    )
                retrieval = min(sa1, sa2)
                if retrieval_key is not None:
                    cache[retrieval_key] = retrieval
        return csd2 + cs3a + cu3bc + retrieval

    def cmd_cost(self) -> float:
        # Deleting an object of C_{t+1} removes one whole primary record
        # (footnote 3: every page of the record is touched) and the pointers
        # to it from the 3-tuples of the objects it listed (delpoint).
        total = cml(self._primary, float(self._primary.record_pages))
        total += self._delpoint()
        return total

    def _delpoint(self) -> float:
        if self._auxiliary.empty:
            return 0.0
        # paper: delpoint = 2 · npa(Σ_{i=k+1..t} Σ_j nin-bar_{i,j},
        #                           Σ_{i=k+1..t} Σ_j n_{i,j}, pl_az)
        # — the touched 3-tuples are estimated by the per-class average
        # nested-value counts, and the pages they sit on are fetched and
        # rewritten.
        cache = self._memo
        touched = 0.0
        for position in range(self.start + 1, self.end + 1):
            subtotal = (
                cache.get((40, position, self.end)) if cache is not None else None
            )
            if subtotal is None:
                subtotal = 0.0
                for member in self.stats.members(position):
                    subtotal += self.stats.ninbar(position, member, self.end)
                if cache is not None:
                    cache[(40, position, self.end)] = subtotal
            touched += subtotal
        leaf = self._auxiliary.levels[0]
        return 2.0 * npa(min(touched, leaf.records), leaf.records, leaf.pages)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def storage_pages(self) -> float:
        total = self._primary.leaf_pages
        if self._primary.oversized:
            total += self._primary.record_count * self._primary.record_pages
        if not self._auxiliary.empty:
            total += self._auxiliary.leaf_pages
            if self._auxiliary.oversized:
                total += self._auxiliary.record_count * self._auxiliary.record_pages
        return total
