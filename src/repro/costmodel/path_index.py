"""Path index (PX) cost model — the Section 6 extension from [6].

A path index ([Bertino & Guglielmina, RIDE-TQP 92]; also [2]) associates
with each value ``v`` of the subpath's ending attribute the set of *path
instantiations*: maximal oid tuples ``(o_s, ..., o_t)`` whose chain of
forward references reaches ``v``. One lookup answers a query with respect
to **any** class of the subpath (project the tuple position), like the NIX
primary — but the instantiations themselves replace the auxiliary index:

* an instantiation contains every ancestor explicitly, so deletions locate
  their work inside the retrieved records (no parent-list walk);
* the price is record width: ``#instantiations × span × oid`` instead of
  one oid list per class, plus the re-insertion of orphaned suffixes.

Cost model summary (consistent with the CRL/CML/CRT/CMT primitives):

* query: ``CRT(h_PX, probes, pr)`` — identical shape to the NIX primary
  with wider records;
* insert of an object of ``C_{l,x}``: the new chains join the ``nin-bar``
  reachable records — ``CMT(h_PX, nin-bar)`` (ancestor prefixes do not yet
  exist: objects are created bottom-up);
* delete: fetch and rewrite the ``nin-bar`` affected records
  (``CMT(h_PX, nin-bar)``); orphan-suffix repair rewrites the same pages,
  so no extra term;
* ``CMD``: one record keyed by the deleted following-class oid is removed,
  every page of it touched — ``CML(h_PX, ⌈ln/p⌉)``; no delpoint (there is
  no auxiliary index).
"""

from __future__ import annotations

from repro.costmodel.base import SubpathCostModel
from repro.costmodel.btree_shape import IndexShape, build_shape
from repro.costmodel.params import PathStatistics
from repro.costmodel.primitives import cml
from repro.organizations import IndexOrganization


class PXCostModel(SubpathCostModel):
    """Analytic costs of a path index on one subpath."""

    organization = IndexOrganization.PX

    def __init__(self, stats: PathStatistics, start: int, end: int) -> None:
        super().__init__(stats, start, end)
        self._shape = stats.cached_shape(("px", start, end), self._build_shape)

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def shape(self) -> IndexShape:
        """Shape of the (single) path-index B+-tree."""
        return self._shape

    def _instantiations_per_value(self) -> float:
        """Expected maximal instantiations listed in one record.

        Every starting-hierarchy object contributes its chains: the number
        of full instantiations per ending value is the level-1 fan-in of
        the chain, ``noid-sigma`` at the starting level divided over the
        distinct values... directly: instantiations ending at one value =
        Π over levels of the hierarchy fan-in ``Σ_j k_{i,j}``.
        """
        total = 1.0
        for position in range(self.start, self.end + 1):
            total *= max(self.stats.sum_k(position), 1.0)
        return total

    def _build_shape(self) -> IndexShape:
        span = self.end - self.start + 1
        tuple_width = span * self.sizes.oid_size
        record_length = (
            self.sizes.record_header_size
            + self.key_size_at(self.end)
            + self._instantiations_per_value() * tuple_width
        )
        return build_shape(
            record_count=self.stats.distinct_union(self.end),
            record_length=record_length,
            key_size=self.key_size_at(self.end),
            sizes=self.sizes,
        )

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def query_cost(self, position: int, class_name: str, probes: float = 1.0) -> float:
        self._check_covered(position, class_name)
        return self._crt(self._shape, probes, self.config.pr_mx)

    def hierarchy_query_cost(self, position: int, probes: float = 1.0) -> float:
        """Identical: the whole record is organized by instantiation."""
        members = self.stats.members(position)
        return self.query_cost(position, members[0], probes)

    def range_query_cost(
        self,
        position: int,
        class_name: str,
        selectivity: float,
        probes: float = 1.0,
    ) -> float:
        """Range predicate: one contiguous walk of the chained leaves."""
        from repro.costmodel.ranges import range_scan_cost

        self._check_covered(position, class_name)
        return range_scan_cost(
            self._shape, min(1.0, selectivity * probes), self.config.pr_mx
        )

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def insert_cost(self, position: int, class_name: str) -> float:
        self._check_covered(position, class_name)
        affected = self.stats.ninbar(position, class_name, self.end)
        return self._cmt(self._shape, affected, self.config.pm_mx)

    def delete_cost(self, position: int, class_name: str) -> float:
        self._check_covered(position, class_name)
        affected = self.stats.ninbar(position, class_name, self.end)
        return self._cmt(self._shape, affected, self.config.pm_mx)

    def cmd_cost(self) -> float:
        return cml(self._shape, float(self._shape.record_pages))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def storage_pages(self) -> float:
        total = self._shape.leaf_pages
        if self._shape.oversized:
            total += self._shape.record_count * self._shape.record_pages
        return total
