"""The paper's cost primitives: CRL, CML, CRT, CMT and CRR.

All functions take an :class:`~repro.costmodel.btree_shape.IndexShape` and
return expected page accesses.

* ``CRL(h, pr)`` — retrieve one index record: ``h`` when the record fits
  in a page, else ``h - 1 + pr``.
* ``CML(h, pm)`` — maintain one index record: ``h + 1`` when it fits (the
  extra access rewrites the page), else ``h - 1 + 2·pm`` (the modified
  record pages are fetched and rewritten).
* ``CRT(h, t, pr)`` — retrieve ``t`` records: level-by-level Yao sums with
  ``t_h = t`` and ``t_{k-1} = npa(t_k, n_k, p_k)``; for oversized records
  the record level contributes ``t · pr`` instead of a Yao term.
* ``CMT(h, t, pm)`` — maintain ``t`` records: the retrieval sums plus one
  rewrite pass over the touched leaf pages ("a page will be rewritten if
  the maintenance of all index records on the page is completed"), or
  ``2·t·pm`` for oversized records.
* ``CRR(m)`` — rewrite ``m`` (auxiliary) records:
  ``npa(m, n_az, pl_az)`` when a record fits in a page, else ``m · pm``.
"""

from __future__ import annotations

from repro.costmodel.btree_shape import IndexShape
from repro.costmodel.yao import npa
from repro.errors import CostModelError


def _clamp_records(shape: IndexShape, t: float) -> float:
    if t < 0:
        raise CostModelError(f"negative record request: {t}")
    return min(t, shape.record_count)


def crl(shape: IndexShape, pr: float | None = None) -> float:
    """Retrieval cost of one specified index record."""
    if shape.empty:
        return 0.0
    if not shape.oversized:
        return float(shape.height)
    pages = pr if pr is not None else float(shape.record_pages)
    return float(shape.height - 1) + pages


def cml(shape: IndexShape, pm: float | None = None) -> float:
    """Maintenance cost of one specified index record."""
    if shape.empty:
        return 0.0
    if not shape.oversized:
        return float(shape.height + 1)
    pages = pm if pm is not None else float(shape.record_pages)
    return float(shape.height - 1) + 2.0 * pages


def _descend_sum(shape: IndexShape, t: float) -> tuple[float, float]:
    """Yao sums over the structural levels, leaf upward.

    Returns ``(total, leaf_touched)`` where ``leaf_touched`` is the Yao
    estimate for the structural leaf level (needed by CMT's rewrite pass).
    """
    total = 0.0
    leaf_touched = 0.0
    t_current = t
    for index, level in enumerate(shape.levels):
        touched = npa(t_current, level.records, level.pages)
        if index == 0:
            leaf_touched = touched
        total += touched
        t_current = touched
    return total, leaf_touched


def crt(shape: IndexShape, t: float, pr: float | None = None) -> float:
    """Retrieval cost of ``t`` index records."""
    t = _clamp_records(shape, t)
    if shape.empty or t == 0:
        return 0.0
    structural, _ = _descend_sum(shape, t)
    if not shape.oversized:
        return structural
    pages = pr if pr is not None else float(shape.record_pages)
    return structural + t * pages


def cmt(shape: IndexShape, t: float, pm: float | None = None) -> float:
    """Maintenance cost of ``t`` index records."""
    t = _clamp_records(shape, t)
    if shape.empty or t == 0:
        return 0.0
    structural, leaf_touched = _descend_sum(shape, t)
    if not shape.oversized:
        return structural + leaf_touched
    pages = pm if pm is not None else float(shape.record_pages)
    return structural + 2.0 * t * pages


def crr(aux_shape: IndexShape, records: float, pm: float | None = None) -> float:
    """Rewrite cost of ``records`` auxiliary index records (``CRR``)."""
    records = _clamp_records(aux_shape, records)
    if aux_shape.empty or records == 0:
        return 0.0
    if not aux_shape.oversized:
        leaf = aux_shape.levels[0]
        return npa(records, leaf.records, leaf.pages)
    pages = pm if pm is not None else float(aux_shape.record_pages)
    return records * pages
