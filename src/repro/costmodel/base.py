"""Shared machinery for the per-organization subpath cost models.

Every organization model is instantiated for one subpath ``S_{start,end}``
of a full path and answers four questions (all in expected page accesses):

* ``query_cost(l, x, probes)`` — searching cost of the objects of class
  ``C_{l,x}`` satisfying ``probes`` equality values against the subpath's
  ending attribute (``CR_X`` of Section 3.1, generalized from one probe to
  the oid fan-in a following subpath feeds in);
* ``insert_cost(l, x)`` / ``delete_cost(l, x)`` — maintenance cost when an
  object of ``C_{l,x}`` is inserted/deleted (``CM_X``);
* ``cmd_cost()`` — the Section 4 cross-subpath cost ``CMD_X(A_t)``: the
  deletion of one object of the class *following* the subpath forces the
  removal of the record keyed by its oid from this subpath's index.

Models also expose ``emitted_oids(probes)`` — the expected number of
starting-class-hierarchy oids a query hands to the preceding subpath —
which powers the exact "coupled" configuration evaluator (an extension;
the paper's matrix uses one probe per subpath, see
:mod:`repro.costmodel.subpath`).
"""

from __future__ import annotations

import abc

from repro.costmodel.btree_shape import IndexShape, build_shape
from repro.costmodel.params import PathStatistics
from repro.costmodel.primitives import cmt, crr, crt
from repro.errors import CostModelError
from repro.organizations import IndexOrganization


class SubpathCostModel(abc.ABC):
    """Abstract base: analytic costs of one organization on one subpath."""

    organization: IndexOrganization

    def __init__(self, stats: PathStatistics, start: int, end: int) -> None:
        if not 1 <= start <= end <= stats.length:
            raise CostModelError(
                f"subpath {start}..{end} out of range for {stats.path}"
            )
        self.stats = stats
        self.start = start
        self.end = end
        self.config = stats.config
        self.sizes = stats.config.sizes
        # Bound once: the memo table (or None) backing _crt/_cmt/_crr and
        # the per-method memoizations of the concrete models.
        self._memo = stats.primitive_cache()

    # ------------------------------------------------------------------
    # abstract interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def query_cost(self, position: int, class_name: str, probes: float = 1.0) -> float:
        """``CR_X(C_{l,x})``: searching cost for one class of the subpath."""

    @abc.abstractmethod
    def hierarchy_query_cost(self, position: int, probes: float = 1.0) -> float:
        """``CR_X(C-hat_{l,x})``: searching cost for a class plus subclasses."""

    def range_query_cost(
        self,
        position: int,
        class_name: str,
        selectivity: float,
        probes: float = 1.0,
    ) -> float:
        """Searching cost of a range predicate on the ending attribute.

        ``selectivity`` is the fraction of distinct ending values covered.
        The default treats the range as the equivalent number of equality
        probes; organizations with chained ending structures override this
        with a contiguous leaf walk.
        """
        equivalent = max(
            1.0, selectivity * self.stats.distinct_union(self.end) * probes
        )
        return self.query_cost(position, class_name, equivalent)

    @abc.abstractmethod
    def insert_cost(self, position: int, class_name: str) -> float:
        """``CM_X`` on insertion of an object of ``C_{l,x}``."""

    @abc.abstractmethod
    def delete_cost(self, position: int, class_name: str) -> float:
        """``CM_X`` on deletion of an object of ``C_{l,x}``."""

    @abc.abstractmethod
    def cmd_cost(self) -> float:
        """``CMD_X(A_t)``: per-deletion cost charged by the following class."""

    @abc.abstractmethod
    def storage_pages(self) -> float:
        """Approximate pages occupied by the subpath's index structures."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def emitted_oids(self, probes: float = 1.0) -> float:
        """Oids of the starting hierarchy produced by a subpath lookup."""
        return self.stats.noid_hierarchy(self.start, self.end, probes)

    def positions(self) -> range:
        """The 1-based positions covered by the subpath."""
        return range(self.start, self.end + 1)

    def _check_covered(self, position: int, class_name: str) -> None:
        if not self.start <= position <= self.end:
            raise CostModelError(
                f"position {position} outside subpath {self.start}..{self.end}"
            )
        if class_name not in self.stats.members(position):
            raise CostModelError(
                f"class {class_name!r} not in hierarchy at position {position}"
            )

    # -- record/key geometry -------------------------------------------
    def key_size_at(self, position: int) -> int:
        """Key length of an index on ``A_position``.

        Atomic ending attributes use the atomic key length; every other
        attribute's values are oids of the next class.
        """
        attribute = self.stats.path.attribute_def_at(position)
        return self.sizes.key_size(atomic=attribute.is_atomic)

    def entry_size_at(self, position: int) -> int:
        """Size of one oid entry in a record of an index on ``A_position``.

        Multi-valued attributes store ``(oid, numchild)`` pairs in NIX
        records; plain oid lists elsewhere. MX/MIX records always store
        plain oids, so they use :attr:`SizeModel.oid_size` directly.
        """
        return self.sizes.oid_size

    # -- memoized cost primitives --------------------------------------
    # CRT/CMT/CRR are pure functions of (shape, t, pr), and matrix
    # construction evaluates them with heavily repeated arguments (the
    # same ending-level lookups recur in every row sharing an endpoint).
    # The memo lives on the statistics object, so its lifetime matches the
    # inputs it depends on and `config.cache_evaluation` switches it off.
    # Keys use id(shape): every shape a model evaluates comes from the
    # statistics' shape cache (which pins it alive for the statistics'
    # lifetime), so the id is stable, and hashing an int beats hashing a
    # nested dataclass by an order of magnitude. When shape caching is off
    # the primitive cache is off too, so no id of a transient shape is
    # ever used as a key.
    #
    # Subclasses additionally memoize whole per-class cost methods in the
    # same table when the value does not depend on the subpath start (the
    # MX/MIX formulas only see the ending attribute and the probe fan-in),
    # which is what collapses the matrix construction's O(n^4) method
    # evaluations down to the O(n^3) distinct ones. Integer key tags keep
    # the key families disjoint: 1-3 primitives, 10+ per-model methods.
    def _crt(self, shape: IndexShape, t: float, pr: float | None = None) -> float:
        cache = self._memo
        if cache is None:
            return crt(shape, t, pr)
        key = (1, id(shape), t, pr)
        value = cache.get(key)
        if value is None:
            value = crt(shape, t, pr)
            cache[key] = value
        return value

    def _cmt(self, shape: IndexShape, t: float, pm: float | None = None) -> float:
        cache = self._memo
        if cache is None:
            return cmt(shape, t, pm)
        key = (2, id(shape), t, pm)
        value = cache.get(key)
        if value is None:
            value = cmt(shape, t, pm)
            cache[key] = value
        return value

    def _crr(self, shape: IndexShape, records: float, pm: float | None = None) -> float:
        cache = self._memo
        if cache is None:
            return crr(shape, records, pm)
        key = (3, id(shape), records, pm)
        value = cache.get(key)
        if value is None:
            value = crr(shape, records, pm)
            cache[key] = value
        return value

    # -- shape builders -------------------------------------------------
    def mx_shape(self, position: int, class_name: str) -> IndexShape:
        """Shape of the MX (simple) index on ``A_position`` of one class.

        The shape depends only on the statistics, never on the subpath
        bounds, so it is shared across all matrix rows via the statistics'
        shape cache.
        """
        return self.stats.cached_shape(
            ("mx", position, class_name),
            lambda: self._build_mx_shape(position, class_name),
        )

    def _build_mx_shape(self, position: int, class_name: str) -> IndexShape:
        stats = self.stats
        record_length = (
            self.sizes.record_header_size
            + self.key_size_at(position)
            + stats.k(position, class_name) * self.sizes.oid_size
        )
        return build_shape(
            record_count=stats.d(position, class_name),
            record_length=record_length,
            key_size=self.key_size_at(position),
            sizes=self.sizes,
        )

    def mix_shape(self, position: int) -> IndexShape:
        """Shape of the MIX (inherited) index covering a whole hierarchy.

        Subpath-independent like :meth:`mx_shape`, hence cached across
        rows.
        """
        return self.stats.cached_shape(
            ("mix", position), lambda: self._build_mix_shape(position)
        )

    def _build_mix_shape(self, position: int) -> IndexShape:
        stats = self.stats
        record_length = (
            self.sizes.record_header_size
            + self.key_size_at(position)
            + stats.nc(position) * self.sizes.class_directory_entry_size
            + stats.sum_k(position) * self.sizes.oid_size
        )
        return build_shape(
            record_count=stats.distinct_union(position),
            record_length=record_length,
            key_size=self.key_size_at(position),
            sizes=self.sizes,
        )
