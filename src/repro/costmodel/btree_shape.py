"""B+-tree shape estimation: heights, leaf pages, level profiles.

The paper defers index-height computation to its companion report [7];
this module supplies the standard construction it alludes to. A shape is
computed from the number of index records, the average record length and
the key length:

* records no longer than a page are packed ``⌊p/ln⌋`` per leaf page;
* records longer than a page live in dedicated overflow chains of
  ``⌈ln/p⌉`` pages; the structural leaf level then holds short
  ``(key, pointer)`` stubs, and the record pages count as one extra level
  so that ``CRL = h - 1 + pr`` comes out exactly as in Section 3.1;
* each non-leaf level holds one ``(attribute value, pointer)`` router per
  page of the level below.

The :class:`IndexShape` captures, for every structural level, the record
and page counts needed by the level-by-level Yao sums of ``CRT``/``CMT``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CostModelError
from repro.storage.sizes import SizeModel


@dataclass(frozen=True)
class Level:
    """One level of the tree: record and page counts (leaf is first)."""

    records: float
    pages: float


@dataclass(frozen=True)
class IndexShape:
    """The physical profile of one index.

    Attributes
    ----------
    record_count:
        Number of index records (distinct key values), possibly fractional
        because it is an estimate.
    record_length:
        ``ln_X``: average record length in bytes.
    height:
        ``h_X``: number of levels, counting the record-pages level for
        oversized records (so ``CRL = height`` or ``height - 1 + pr``).
    levels:
        Structural levels from leaf to root (stub tree for oversized
        records). Empty for an empty index.
    record_pages:
        ``⌈ln/p⌉`` — pages per record (1 when the record fits).
    oversized:
        Whether ``ln > p``.
    leaf_pages:
        ``np_X``: pages of the (structural) leaf level.
    """

    record_count: float
    record_length: float
    height: int
    levels: tuple[Level, ...]
    record_pages: int
    oversized: bool
    leaf_pages: float

    @property
    def empty(self) -> bool:
        """Whether the index holds no records."""
        return self.record_count <= 0


def build_shape(
    record_count: float,
    record_length: float,
    key_size: int,
    sizes: SizeModel,
) -> IndexShape:
    """Estimate the shape of a B+-tree index.

    Parameters
    ----------
    record_count:
        Expected number of index records (``d`` distinct values).
    record_length:
        Expected record length ``ln`` in bytes.
    key_size:
        Length of the key inside non-leaf routers and leaf stubs.
    sizes:
        Physical constants (page size, pointer size).
    """
    if record_count < 0:
        raise CostModelError(f"negative record count: {record_count}")
    if record_count > 0 and record_length <= 0:
        raise CostModelError(f"non-positive record length: {record_length}")
    if key_size <= 0:
        raise CostModelError(f"non-positive key size: {key_size}")

    if record_count == 0:
        return IndexShape(
            record_count=0.0,
            record_length=max(record_length, 0.0),
            height=1,
            levels=(),
            record_pages=0,
            oversized=False,
            leaf_pages=0.0,
        )

    page = sizes.page_size
    oversized = record_length > page
    record_pages = max(1, math.ceil(record_length / page))

    if oversized:
        stub_size = key_size + sizes.pointer_size
        stub_levels = _structural_levels(record_count, stub_size, key_size, sizes)
        height = len(stub_levels) + 1  # +1 for the record-pages level
        return IndexShape(
            record_count=record_count,
            record_length=record_length,
            height=height,
            levels=stub_levels,
            record_pages=record_pages,
            oversized=True,
            leaf_pages=stub_levels[0].pages,
        )

    levels = _structural_levels(record_count, record_length, key_size, sizes)
    return IndexShape(
        record_count=record_count,
        record_length=record_length,
        height=len(levels),
        levels=levels,
        record_pages=1,
        oversized=False,
        leaf_pages=levels[0].pages,
    )


def _structural_levels(
    record_count: float,
    record_length: float,
    key_size: int,
    sizes: SizeModel,
) -> tuple[Level, ...]:
    """Leaf-to-root level profile for records that fit in a page."""
    per_page = max(1, int(sizes.page_size // max(record_length, 1.0)))
    leaf_pages = max(1.0, record_count / per_page)
    levels = [Level(records=record_count, pages=leaf_pages)]
    fanout = max(2, sizes.page_size // (key_size + sizes.pointer_size))
    pages = leaf_pages
    while pages > 1.0:
        records = pages  # one router per child page
        pages = max(1.0, math.ceil(records / fanout) if records > fanout else 1.0)
        # Keep fractional page counts above one level honest:
        if records > fanout:
            pages = records / fanout
        levels.append(Level(records=records, pages=max(pages, 1.0)))
        if pages <= 1.0:
            break
    # Ensure the top level is a single root page.
    top = levels[-1]
    if top.pages > 1.0:
        levels.append(Level(records=top.pages, pages=1.0))
    return tuple(levels)


def height_of(shape: IndexShape) -> int:
    """``h_X`` of a shape (alias for the attribute, for symmetry)."""
    return shape.height
