"""Processing cost of a subpath under a workload (Definition 4.2).

The processing cost of a (sub)path is "the sum of the cost to maintain the
indices on the (sub)path and the searching costs on the subpath of those
objects which satisfy to the queries". Per Definition 4.2 the subpath's
index additionally absorbs ``CMD_X(A_t)`` for every deletion on the class
*following* its ending attribute (when ``A_t ≠ A_n``): that deletion
removes exactly one record — keyed by the deleted oid — from this
subpath's index.

Query frequencies reach the subpath through the Section 3.2 derivation
(:meth:`repro.workload.load.LoadDistribution.derived_for_subpath`), which
is what makes the per-subpath costs additive (Propositions 4.1/4.2) and
the cost-matrix decomposition of Section 5 sound.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.costmodel.base import SubpathCostModel
from repro.costmodel.mix import MIXCostModel
from repro.costmodel.mx import MXCostModel
from repro.costmodel.nested_index import NXCostModel
from repro.costmodel.nix import NIXCostModel
from repro.costmodel.noindex import NoIndexCostModel
from repro.costmodel.params import PathStatistics
from repro.costmodel.path_index import PXCostModel
from repro.errors import CostModelError
from repro.organizations import IndexOrganization
from repro.workload.load import LoadDistribution, LoadTriplet


_MODEL_CLASSES: dict[IndexOrganization, type[SubpathCostModel]] = {
    IndexOrganization.MX: MXCostModel,
    IndexOrganization.MIX: MIXCostModel,
    IndexOrganization.NIX: NIXCostModel,
    IndexOrganization.PX: PXCostModel,
    IndexOrganization.NX: NXCostModel,
    IndexOrganization.NONE: NoIndexCostModel,
}


def build_model(
    stats: PathStatistics,
    start: int,
    end: int,
    organization: IndexOrganization,
) -> SubpathCostModel:
    """Instantiate the cost model of one organization on one subpath.

    SIX and IIX are accepted and mapped to their general forms (MX and
    MIX); the paper treats them as the single-class special cases.
    """
    if organization is IndexOrganization.SIX:
        organization = IndexOrganization.MX
    elif organization is IndexOrganization.IIX:
        organization = IndexOrganization.MIX
    try:
        model_class = _MODEL_CLASSES[organization]
    except KeyError:
        raise CostModelError(f"no cost model for organization {organization}") from None
    return model_class(stats, start, end)


@dataclass(frozen=True)
class SubpathContext:
    """Per-row shared work of the ``Cost_Matrix`` procedure.

    The derived load distribution and the probe fan-in of a subpath depend
    only on the subpath bounds (and the workload), never on the index
    organization — yet the naive per-entry evaluation recomputed them for
    every organization in the row. A context is built once per matrix row
    and passed to every cost-model evaluation of that row.
    """

    start: int
    end: int
    #: The inputs the context was derived from. Kept so an evaluation can
    #: reject a context built for a different workload or statistics
    #: (checked by object identity — the derived quantities are stale for
    #: any other inputs, and silently using them would mis-price the row).
    stats: PathStatistics
    load: LoadDistribution
    #: Section 3.2 derived load: class name → triplet on this subpath.
    derived: dict[str, LoadTriplet]
    #: Equality values fed into the subpath's ending index (the noid chain
    #: of the remainder of the path; 1.0 when the subpath ends the path).
    probes: float
    #: Summed deletion frequency of the class hierarchy following the
    #: subpath (the multiplier of ``CMD``); 0.0 for path-ending subpaths.
    following_deletes: float = 0.0
    #: The range/equality switch the context was built for (contexts are
    #: workload-specific and must not be reused across selectivities).
    range_selectivity: float | None = None

    @classmethod
    def build(
        cls,
        stats: PathStatistics,
        load: LoadDistribution,
        start: int,
        end: int,
        range_selectivity: float | None = None,
    ) -> "SubpathContext":
        """Compute the shared per-row quantities for one subpath."""
        initial = 1.0
        if range_selectivity is not None:
            initial = max(1.0, range_selectivity * stats.distinct_union(stats.length))
        probes = (
            stats.probe_keys(end, stats.length, initial)
            if end < stats.length
            else 1.0
        )
        following = 0.0
        if end < stats.length:
            following = sum(
                load.triplet(member).delete for member in stats.members(end + 1)
            )
        return cls(
            start=start,
            end=end,
            stats=stats,
            load=load,
            derived=load.derived_for_subpath(start, end),
            probes=probes,
            following_deletes=following,
            range_selectivity=range_selectivity,
        )


@dataclass(frozen=True)
class SubpathCost:
    """The processing cost of one subpath with one organization.

    The four components follow Definition 4.2: searching cost of the
    queries, maintenance for insertions and for deletions on the subpath's
    own classes, and the ``CMD`` contribution of deletions on the class
    following the ending attribute. ``storage_pages`` (not part of the
    processing cost) supports budget-constrained selection.

    ``cmd_per_deletion`` is the per-deletion rate behind ``cmd``
    (``cmd = following_deletes · cmd_per_deletion``). The rate depends on
    the statistics only, never on the workload, so a delete-frequency
    what-if can re-derive a row's ``cmd`` — and therefore its total — as
    an O(1) patch from the cached breakdown instead of re-running the
    cost model (:meth:`repro.core.cost_matrix.CostMatrix.recompute`).
    """

    organization: IndexOrganization
    start: int
    end: int
    query: float
    insert: float
    delete: float
    cmd: float
    storage_pages: float = 0.0
    cmd_per_deletion: float = 0.0

    @property
    def total(self) -> float:
        """``PC(S, X)``: the value entering the cost matrix."""
        return self.query + self.insert + self.delete + self.cmd

    def with_following_deletes(self, following_deletes: float) -> "SubpathCost":
        """The same breakdown re-priced under a new following-deletion mass.

        Performs exactly the multiplication :func:`subpath_processing_cost`
        performs (including the zero-rate guard), so the patched breakdown
        is bit-identical to a fresh evaluation under the new workload —
        provided only delete frequencies after this subpath changed.
        """
        cmd = 0.0
        if self.cmd_per_deletion:
            cmd = following_deletes * self.cmd_per_deletion
        if cmd == self.cmd:
            return self
        return dataclasses.replace(self, cmd=cmd)


def subpath_processing_cost(
    stats: PathStatistics,
    load: LoadDistribution,
    start: int,
    end: int,
    organization: IndexOrganization,
    model: SubpathCostModel | None = None,
    range_selectivity: float | None = None,
    context: SubpathContext | None = None,
) -> SubpathCost:
    """``PC(S_{start,end}, X)`` under the given full-path workload.

    Parameters
    ----------
    stats:
        Full-path statistics.
    load:
        Full-path load distribution; the subpath's own load is derived
        from it per Section 3.2.
    start, end:
        1-based subpath bounds (inclusive).
    organization:
        The index organization allocated to the subpath.
    model:
        An already-built cost model to reuse (optional).
    range_selectivity:
        When set, queries are range predicates covering this fraction of
        the distinct ending values ("the extension to range predicates is
        straightforward", Section 3). The final subpath performs a
        contiguous leaf walk; earlier subpaths are probed with the oid
        fan-in of all matched values.
    context:
        A precomputed :class:`SubpathContext` for this row (optional). The
        ``Cost_Matrix`` procedure builds one per row and shares it across
        all organizations; it must describe the same bounds and
        selectivity and the same ``stats``/``load`` objects (checked by
        identity), otherwise an error is raised.
    """
    if load.path is not stats.path and str(load.path) != str(stats.path):
        raise CostModelError("load distribution and statistics describe different paths")
    if range_selectivity is not None and not 0.0 <= range_selectivity <= 1.0:
        raise CostModelError(f"selectivity out of [0,1]: {range_selectivity}")
    if model is None:
        model = build_model(stats, start, end, organization)

    # Every query is a predicate on the full path's ending attribute A_n.
    # A subpath that does not end at A_n is therefore probed with the oid
    # fan-in of the remainder of the path (the noid chain of Section 3.1)
    # — a quantity that depends only on the path statistics, never on how
    # the rest of the path is indexed, which is what keeps the subpath
    # costs additive (Proposition 4.2).
    if context is None:
        context = SubpathContext.build(
            stats, load, start, end, range_selectivity=range_selectivity
        )
    elif (
        context.start != start
        or context.end != end
        or context.range_selectivity != range_selectivity
    ):
        raise CostModelError(
            f"context describes S[{context.start},{context.end}] "
            f"(selectivity {context.range_selectivity}), not "
            f"S[{start},{end}] (selectivity {range_selectivity})"
        )
    elif context.stats is not stats or context.load is not load:
        raise CostModelError(
            "context was built for different statistics or workload "
            "objects; rebuild it with SubpathContext.build(stats, load, "
            f"{start}, {end}) for these inputs"
        )
    probes = context.probes
    derived = context.derived
    query = 0.0
    insert = 0.0
    delete = 0.0
    query_cost = model.query_cost
    range_query_cost = model.range_query_cost
    insert_cost = model.insert_cost
    delete_cost = model.delete_cost
    range_ending = range_selectivity is not None and end == stats.length
    for position in range(start, end + 1):
        for member in stats.members(position):
            triplet = derived[member]
            if triplet.query:
                if range_ending:
                    query += triplet.query * range_query_cost(
                        position, member, range_selectivity
                    )
                else:
                    query += triplet.query * query_cost(position, member, probes)
            if triplet.insert:
                insert += triplet.insert * insert_cost(position, member)
            if triplet.delete:
                delete += triplet.delete * delete_cost(position, member)

    cmd = 0.0
    per_deletion = 0.0
    if end < stats.length:
        per_deletion = model.cmd_cost()
        if per_deletion:
            cmd = context.following_deletes * per_deletion
    return SubpathCost(
        organization=model.organization,
        start=start,
        end=end,
        query=query,
        insert=insert,
        delete=delete,
        cmd=cmd,
        storage_pages=model.storage_pages(),
        cmd_per_deletion=per_deletion,
    )
