"""Processing cost of a subpath under a workload (Definition 4.2).

The processing cost of a (sub)path is "the sum of the cost to maintain the
indices on the (sub)path and the searching costs on the subpath of those
objects which satisfy to the queries". Per Definition 4.2 the subpath's
index additionally absorbs ``CMD_X(A_t)`` for every deletion on the class
*following* its ending attribute (when ``A_t ≠ A_n``): that deletion
removes exactly one record — keyed by the deleted oid — from this
subpath's index.

Query frequencies reach the subpath through the Section 3.2 derivation
(:meth:`repro.workload.load.LoadDistribution.derived_for_subpath`), which
is what makes the per-subpath costs additive (Propositions 4.1/4.2) and
the cost-matrix decomposition of Section 5 sound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.base import SubpathCostModel
from repro.costmodel.mix import MIXCostModel
from repro.costmodel.mx import MXCostModel
from repro.costmodel.nested_index import NXCostModel
from repro.costmodel.nix import NIXCostModel
from repro.costmodel.noindex import NoIndexCostModel
from repro.costmodel.params import PathStatistics
from repro.costmodel.path_index import PXCostModel
from repro.errors import CostModelError
from repro.organizations import IndexOrganization
from repro.workload.load import LoadDistribution


_MODEL_CLASSES: dict[IndexOrganization, type[SubpathCostModel]] = {
    IndexOrganization.MX: MXCostModel,
    IndexOrganization.MIX: MIXCostModel,
    IndexOrganization.NIX: NIXCostModel,
    IndexOrganization.PX: PXCostModel,
    IndexOrganization.NX: NXCostModel,
    IndexOrganization.NONE: NoIndexCostModel,
}


def build_model(
    stats: PathStatistics,
    start: int,
    end: int,
    organization: IndexOrganization,
) -> SubpathCostModel:
    """Instantiate the cost model of one organization on one subpath.

    SIX and IIX are accepted and mapped to their general forms (MX and
    MIX); the paper treats them as the single-class special cases.
    """
    if organization is IndexOrganization.SIX:
        organization = IndexOrganization.MX
    elif organization is IndexOrganization.IIX:
        organization = IndexOrganization.MIX
    try:
        model_class = _MODEL_CLASSES[organization]
    except KeyError:
        raise CostModelError(f"no cost model for organization {organization}") from None
    return model_class(stats, start, end)


@dataclass(frozen=True)
class SubpathCost:
    """The processing cost of one subpath with one organization.

    The four components follow Definition 4.2: searching cost of the
    queries, maintenance for insertions and for deletions on the subpath's
    own classes, and the ``CMD`` contribution of deletions on the class
    following the ending attribute. ``storage_pages`` (not part of the
    processing cost) supports budget-constrained selection.
    """

    organization: IndexOrganization
    start: int
    end: int
    query: float
    insert: float
    delete: float
    cmd: float
    storage_pages: float = 0.0

    @property
    def total(self) -> float:
        """``PC(S, X)``: the value entering the cost matrix."""
        return self.query + self.insert + self.delete + self.cmd


def subpath_processing_cost(
    stats: PathStatistics,
    load: LoadDistribution,
    start: int,
    end: int,
    organization: IndexOrganization,
    model: SubpathCostModel | None = None,
    range_selectivity: float | None = None,
) -> SubpathCost:
    """``PC(S_{start,end}, X)`` under the given full-path workload.

    Parameters
    ----------
    stats:
        Full-path statistics.
    load:
        Full-path load distribution; the subpath's own load is derived
        from it per Section 3.2.
    start, end:
        1-based subpath bounds (inclusive).
    organization:
        The index organization allocated to the subpath.
    model:
        An already-built cost model to reuse (optional).
    range_selectivity:
        When set, queries are range predicates covering this fraction of
        the distinct ending values ("the extension to range predicates is
        straightforward", Section 3). The final subpath performs a
        contiguous leaf walk; earlier subpaths are probed with the oid
        fan-in of all matched values.
    """
    if load.path is not stats.path and str(load.path) != str(stats.path):
        raise CostModelError("load distribution and statistics describe different paths")
    if range_selectivity is not None and not 0.0 <= range_selectivity <= 1.0:
        raise CostModelError(f"selectivity out of [0,1]: {range_selectivity}")
    if model is None:
        model = build_model(stats, start, end, organization)

    # Every query is a predicate on the full path's ending attribute A_n.
    # A subpath that does not end at A_n is therefore probed with the oid
    # fan-in of the remainder of the path (the noid chain of Section 3.1)
    # — a quantity that depends only on the path statistics, never on how
    # the rest of the path is indexed, which is what keeps the subpath
    # costs additive (Proposition 4.2).
    initial = 1.0
    if range_selectivity is not None:
        initial = max(1.0, range_selectivity * stats.distinct_union(stats.length))
    probes = (
        stats.probe_keys(end, stats.length, initial)
        if end < stats.length
        else 1.0
    )

    derived = load.derived_for_subpath(start, end)
    query = 0.0
    insert = 0.0
    delete = 0.0
    for position in range(start, end + 1):
        for member in stats.members(position):
            triplet = derived[member]
            if triplet.query:
                if range_selectivity is not None and end == stats.length:
                    query += triplet.query * model.range_query_cost(
                        position, member, range_selectivity
                    )
                else:
                    query += triplet.query * model.query_cost(
                        position, member, probes
                    )
            if triplet.insert:
                insert += triplet.insert * model.insert_cost(position, member)
            if triplet.delete:
                delete += triplet.delete * model.delete_cost(position, member)

    cmd = 0.0
    if end < stats.length:
        per_deletion = model.cmd_cost()
        if per_deletion:
            following = sum(
                load.triplet(member).delete for member in stats.members(end + 1)
            )
            cmd = following * per_deletion
    return SubpathCost(
        organization=model.organization,
        start=start,
        end=end,
        query=query,
        insert=insert,
        delete=delete,
        cmd=cmd,
        storage_pages=model.storage_pages(),
    )
