"""Multi-inherited index (MIX) cost model.

A MIX allocates one index per class *level* of the subpath (one per member
of ``class(P)``); if the class has an inheritance hierarchy the index is
an inherited index covering the class and all its subclasses, otherwise it
degenerates to a simple index (Section 2.2).

Retrieval (Section 3.1):

.. math::

    CRMIX(C_{l,x}) = \\sum_{i=l}^{t-1} CRT(h_i, noid\\sigma_{i+1}, pr)
                     + CRL(h_t, pr)

generalized to ``probes`` equality values (``CRL → CRT``). Maintenance
touches the single inherited index of the object's level, plus — on
deletion — one record of the previous level's index when that level is
inside the subpath (otherwise it is the preceding subpath's ``CMD``).
"""

from __future__ import annotations

from repro.costmodel.base import SubpathCostModel
from repro.costmodel.btree_shape import IndexShape
from repro.costmodel.params import PathStatistics
from repro.costmodel.primitives import cml
from repro.organizations import IndexOrganization


class MIXCostModel(SubpathCostModel):
    """Analytic costs of a multi-inherited index on one subpath."""

    organization = IndexOrganization.MIX

    def __init__(self, stats: PathStatistics, start: int, end: int) -> None:
        super().__init__(stats, start, end)
        self._shapes: dict[int, IndexShape] = {
            position: self.mix_shape(position) for position in self.positions()
        }

    def shape(self, position: int) -> IndexShape:
        """The shape of the inherited index at one level."""
        return self._shapes[position]

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def query_cost(self, position: int, class_name: str, probes: float = 1.0) -> float:
        self._check_covered(position, class_name)
        # Start-independent (and class-independent: the inherited index
        # serves the whole hierarchy), so shared across every row ending
        # at self.end.
        cache = self._memo
        if cache is not None:
            key = (20, position, self.end, probes)
            value = cache.get(key)
            if value is not None:
                return value
        total = self._crt(self.shape(self.end), probes, self.config.pr_mix)
        for level in range(self.end - 1, position - 1, -1):
            keys = self.stats.probe_keys(level, self.end, probes)
            total += self._crt(self.shape(level), keys, self.config.pr_mix)
        if cache is not None:
            cache[key] = total
        return total

    def hierarchy_query_cost(self, position: int, probes: float = 1.0) -> float:
        """Retrieval w.r.t. the whole hierarchy — identical for a MIX.

        An inherited index stores the oids of the class and all its
        subclasses in the same record, so scoping the query to subclasses
        does not change the pages fetched.
        """
        return self.query_cost(position, self.stats.members(position)[0], probes)

    def range_query_cost(
        self,
        position: int,
        class_name: str,
        selectivity: float,
        probes: float = 1.0,
    ) -> float:
        """Range predicate: one contiguous scan of the ending inherited
        index, then oid chaining through the levels below."""
        from repro.costmodel.ranges import range_scan_cost

        self._check_covered(position, class_name)
        total = range_scan_cost(
            self.shape(self.end), selectivity, self.config.pr_mix
        )
        # A non-empty range matches at least one value.
        matched = (
            max(1.0, selectivity * self.stats.distinct_union(self.end)) * probes
        )
        for level in range(self.end - 1, position - 1, -1):
            keys = self.stats.probe_keys(level, self.end, matched)
            total += self._crt(self.shape(level), keys, self.config.pr_mix)
        return total

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def insert_cost(self, position: int, class_name: str) -> float:
        self._check_covered(position, class_name)
        cache = self._memo
        if cache is not None:
            key = (21, position, class_name)
            value = cache.get(key)
            if value is not None:
                return value
        nin = self.stats.nin(position, class_name)
        value = self._cmt(self.shape(position), nin, self.config.pm_mix)
        if cache is not None:
            cache[key] = value
        return value

    def delete_cost(self, position: int, class_name: str) -> float:
        self._check_covered(position, class_name)
        cache = self._memo
        if cache is not None:
            key = (22, position, class_name, position > self.start)
            value = cache.get(key)
            if value is not None:
                return value
        nin = self.stats.nin(position, class_name)
        total = self._cmt(self.shape(position), nin, self.config.pm_mix)
        if position > self.start:
            total += cml(self.shape(position - 1), self.config.pm_mix)
        if cache is not None:
            cache[key] = total
        return total

    def cmd_cost(self) -> float:
        shape = self.shape(self.end)
        # paper: CML(h_t^MIX, ⌈ln/p⌉) — every page of the record keyed by
        # the deleted oid is touched.
        return cml(shape, float(shape.record_pages))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def storage_pages(self) -> float:
        total = 0.0
        for shape in self._shapes.values():
            total += shape.leaf_pages
            if shape.oversized:
                total += shape.record_count * shape.record_pages
        return total
