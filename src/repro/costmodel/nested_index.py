"""Nested index (NX) cost model — the Section 6 extension from [1, 2].

A nested index ([Bertino & Kim, TKDE 89]) associates with each value ``v``
of the subpath's ending attribute only the oids of the **starting-class
hierarchy** objects that reach it. It is the leanest possible structure
for the common query ("retrieve the Persons whose nested attribute equals
v"), and the classic trade-off applies:

* queries with respect to the starting class: one lookup, narrow records —
  the cheapest of all organizations;
* queries with respect to intermediate classes: the index cannot answer
  them (it stores no intermediate oids); the evaluator falls back to
  scanning the target extent and validating forward, which the model
  prices as extent scans (like the no-index model for that level);
* maintenance on the starting class: the affected keys are computable by
  forward traversal — ``CMT(h_NX, nin-bar)``;
* maintenance on intermediate classes: the affected *keys* are still
  reachable forward, but deciding which starting-class oids drop out
  requires revalidating the candidate roots of each affected record —
  priced as fetching those candidate root objects (Yao over the starting
  extents) on top of the record maintenance. This is the well-known
  weakness that motivated the paper's NIX auxiliary index.
"""

from __future__ import annotations

import math

from repro.costmodel.base import SubpathCostModel
from repro.costmodel.btree_shape import IndexShape, build_shape
from repro.costmodel.params import PathStatistics
from repro.costmodel.primitives import cml
from repro.costmodel.yao import npa
from repro.organizations import IndexOrganization


class NXCostModel(SubpathCostModel):
    """Analytic costs of a nested index on one subpath."""

    organization = IndexOrganization.NX

    def __init__(self, stats: PathStatistics, start: int, end: int) -> None:
        super().__init__(stats, start, end)
        self._shape = stats.cached_shape(("nx", start, end), self._build_shape)

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def shape(self) -> IndexShape:
        """Shape of the nested-index B+-tree."""
        return self._shape

    def _roots_per_value(self) -> float:
        """Starting-hierarchy oids listed in one record."""
        records = self.stats.distinct_union(self.end)
        if records <= 0:
            return 0.0
        total = 0.0
        for member in self.stats.members(self.start):
            total += self.stats.n(self.start, member) * self.stats.ninbar(
                self.start, member, self.end
            )
        return total / records

    def _build_shape(self) -> IndexShape:
        record_length = (
            self.sizes.record_header_size
            + self.key_size_at(self.end)
            + self._roots_per_value() * self.sizes.oid_size
        )
        return build_shape(
            record_count=self.stats.distinct_union(self.end),
            record_length=record_length,
            key_size=self.key_size_at(self.end),
            sizes=self.sizes,
        )

    def _root_extent_pages(self) -> float:
        per_page = max(
            1,
            self.sizes.page_size
            // (self.sizes.object_size + self.sizes.object_overhead_size),
        )
        return sum(
            math.ceil(self.stats.n(self.start, member) / per_page)
            for member in self.stats.members(self.start)
            if self.stats.n(self.start, member) > 0
        )

    def _extent_pages(self, position: int, class_name: str) -> float:
        objects = self.stats.n(position, class_name)
        if objects <= 0:
            return 0.0
        per_page = max(
            1,
            self.sizes.page_size
            // (self.sizes.object_size + self.sizes.object_overhead_size),
        )
        return float(math.ceil(objects / per_page))

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def query_cost(self, position: int, class_name: str, probes: float = 1.0) -> float:
        self._check_covered(position, class_name)
        if position == self.start:
            return self._crt(self._shape, probes, self.config.pr_mx)
        # Intermediate class: the index is of no help; scan the target
        # extent and the extents below it for forward validation. The scan
        # cost only sees (position, class, end), so it is shared across
        # rows.
        cache = self._memo
        if cache is not None:
            key = (31, position, class_name, self.end)
            value = cache.get(key)
            if value is not None:
                return value
        total = self._extent_pages(position, class_name)
        for level in range(position + 1, self.end + 1):
            for member in self.stats.members(level):
                total += self._extent_pages(level, member)
        if cache is not None:
            cache[key] = total
        return total

    def hierarchy_query_cost(self, position: int, probes: float = 1.0) -> float:
        members = self.stats.members(position)
        total = self.query_cost(position, members[0], probes)
        if position != self.start:
            for member in members[1:]:
                total += self._extent_pages(position, member)
        return total

    def range_query_cost(
        self,
        position: int,
        class_name: str,
        selectivity: float,
        probes: float = 1.0,
    ) -> float:
        """Range predicate: leaf walk for root queries, scans otherwise."""
        from repro.costmodel.ranges import range_scan_cost

        self._check_covered(position, class_name)
        if position == self.start:
            return range_scan_cost(
                self._shape, min(1.0, selectivity * probes), self.config.pr_mx
            )
        return self.query_cost(position, class_name, probes)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def insert_cost(self, position: int, class_name: str) -> float:
        self._check_covered(position, class_name)
        affected = self.stats.ninbar(position, class_name, self.end)
        base = self._cmt(self._shape, affected, self.config.pm_mx)
        if position == self.start:
            return base
        # The new object creates reachability for its (future) ancestors —
        # none exist at creation time, so only the record update for roots
        # already reaching through siblings... which is a no-op; we still
        # pay the lookup to discover that (base) — no revalidation needed.
        return base

    def delete_cost(self, position: int, class_name: str) -> float:
        self._check_covered(position, class_name)
        affected = self.stats.ninbar(position, class_name, self.end)
        base = self._cmt(self._shape, affected, self.config.pm_mx)
        if position == self.start:
            return base
        # Revalidate the candidate roots of each affected record: fetch
        # the listed root objects and re-check their forward chains.
        candidates = affected * self._roots_per_value()
        total_roots = self.stats.total_objects(self.start)
        revalidation = npa(
            min(candidates, total_roots), total_roots, self._root_extent_pages()
        )
        return base + revalidation

    def cmd_cost(self) -> float:
        return cml(self._shape, float(self._shape.record_pages))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def storage_pages(self) -> float:
        total = self._shape.leaf_pages
        if self._shape.oversized:
            total += self._shape.record_count * self._shape.record_pages
        return total
