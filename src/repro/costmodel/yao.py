"""Yao's block-access estimate [Yao 1977].

``npa(t, n, m)`` estimates the number of pages touched when retrieving
``t`` records out of ``n`` records uniformly distributed over ``m`` pages:

.. math::

    npa(t, n, m) = m \\cdot \\left[ 1 - \\prod_{i=1}^{t}
        \\frac{n - n/m - i + 1}{n - i + 1} \\right]

The cost model calls this with *expected* (fractional) record counts, so
the implementation interpolates linearly between the neighbouring integer
``t`` values, and falls back to the Cardenas approximation
``m (1 - (1 - 1/m)^t)`` when the exact product would be numerically
unreasonable (very large ``t``).
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.errors import CostModelError

try:  # Optional acceleration; the pure-Python loop is the reference.
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None

#: Below this many factors the Python loop beats the array round-trip.
#: numpy's multiply-reduce accumulates sequentially (no pairwise
#: regrouping), so the vectorized product is bit-identical to the loop
#: and the threshold is purely a speed knob.
_VECTORIZE_MIN_FACTORS = 64

#: Above this many factors the exact product is replaced by Cardenas.
_EXACT_LIMIT = 100_000


def npa(t: float, n: float, m: float) -> float:
    """Expected pages accessed fetching ``t`` of ``n`` records on ``m`` pages.

    Degenerate inputs are handled the way the formulas need them:
    ``t <= 0`` costs nothing; ``t >= n`` touches all ``m`` pages; fewer
    records than pages means every record sits alone (cost ``t``).
    """
    # NaN fails every comparison, so one range check catches NaN,
    # infinities and negatives without a generator round-trip.
    if not (0.0 <= t < math.inf and 0.0 <= n < math.inf and 0.0 <= m < math.inf):
        if t < 0 or n < 0 or m < 0:
            raise CostModelError(f"npa: negative input ({t}, {n}, {m})")
        raise CostModelError(f"npa: non-finite input ({t}, {n}, {m})")
    if t == 0 or n == 0 or m == 0:
        return 0.0
    if m >= n:
        # At most one record per page: each retrieved record is one page.
        return float(min(t, n))
    if t >= n:
        return float(m)

    lower = math.floor(t)
    upper = math.ceil(t)
    if lower == upper:
        return _npa_integer(int(t), n, m)
    fraction = t - lower
    low_value, high_value = _npa_pair(lower, n, m)
    return (1.0 - fraction) * low_value + fraction * high_value


@lru_cache(maxsize=1 << 16)
def _npa_integer(t: int, n: float, m: float) -> float:
    if t <= 0:
        return 0.0
    if t > _EXACT_LIMIT:
        return _cardenas(float(t), m)
    value = m * (1.0 - _untouched_fraction(t, n, m))
    return float(min(max(value, 0.0), m))


@lru_cache(maxsize=1 << 16)
def _npa_pair(lower: int, n: float, m: float) -> tuple[float, float]:
    """``(npa(lower), npa(lower + 1))`` sharing one product accumulation.

    The interpolation path of :func:`npa` needs both neighbouring integer
    values; the product at ``lower + 1`` is the product at ``lower`` times
    one more factor, so computing the pair in a single pass halves the
    dominant cost of fractional lookups.
    """
    upper = lower + 1
    if lower <= 0:
        return 0.0, _npa_integer(upper, n, m)
    if upper > _EXACT_LIMIT:
        return _npa_integer(lower, n, m), _npa_integer(upper, n, m)
    product = _untouched_fraction(lower, n, m)
    low_value = float(min(max(m * (1.0 - product), 0.0), m))
    numerator = n - n / m - upper + 1
    if product == 0.0 or numerator <= 0:
        high_value = float(m)
    else:
        product *= numerator / (n - upper + 1)
        high_value = float(min(max(m * (1.0 - product), 0.0), m))
    return low_value, high_value


def _untouched_fraction(t: int, n: float, m: float) -> float:
    """``prod_{i=1..t} (n - n/m - i + 1)/(n - i + 1)``: the probability
    that a given page holds none of the ``t`` retrieved records.

    Every factor lies in (0, 1], so the running product is monotone
    decreasing and cannot overflow; once it is below double-precision
    resolution the result is 0 to machine accuracy and the loop stops
    early. (A closed form via lgamma exists but suffers catastrophic
    cancellation for large n — four ~n·log(n) terms whose sum is ~t/m.)
    """
    available = n - n / m
    if available - t + 1 <= 0:
        # A factor of the product is non-positive: every page is touched.
        return 0.0
    if _np is not None and t >= _VECTORIZE_MIN_FACTORS:
        offsets = _np.arange(1.0, t + 1.0)
        product = float(_np.prod((available + 1.0 - offsets) / (n + 1.0 - offsets)))
        return product if product >= 1e-18 else 0.0
    product = 1.0
    for i in range(1, t + 1):
        product *= (available - i + 1) / (n - i + 1)
        if product < 1e-18:
            return 0.0
    return product


def _cardenas(t: float, m: float) -> float:
    """Cardenas' approximation, exact in the records→∞ limit."""
    value = m * (1.0 - (1.0 - 1.0 / m) ** t)
    return float(min(max(value, 0.0), m))
