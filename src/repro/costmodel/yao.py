"""Yao's block-access estimate [Yao 1977].

``npa(t, n, m)`` estimates the number of pages touched when retrieving
``t`` records out of ``n`` records uniformly distributed over ``m`` pages:

.. math::

    npa(t, n, m) = m \\cdot \\left[ 1 - \\prod_{i=1}^{t}
        \\frac{n - n/m - i + 1}{n - i + 1} \\right]

The cost model calls this with *expected* (fractional) record counts, so
the implementation interpolates linearly between the neighbouring integer
``t`` values, and falls back to the Cardenas approximation
``m (1 - (1 - 1/m)^t)`` when the exact product would be numerically
unreasonable (very large ``t``).
"""

from __future__ import annotations

import math

from repro.errors import CostModelError

#: Above this many factors the exact product is replaced by Cardenas.
_EXACT_LIMIT = 100_000


def npa(t: float, n: float, m: float) -> float:
    """Expected pages accessed fetching ``t`` of ``n`` records on ``m`` pages.

    Degenerate inputs are handled the way the formulas need them:
    ``t <= 0`` costs nothing; ``t >= n`` touches all ``m`` pages; fewer
    records than pages means every record sits alone (cost ``t``).
    """
    if any(math.isnan(v) or math.isinf(v) for v in (t, n, m)):
        raise CostModelError(f"npa: non-finite input ({t}, {n}, {m})")
    if t < 0 or n < 0 or m < 0:
        raise CostModelError(f"npa: negative input ({t}, {n}, {m})")
    if t == 0 or n == 0 or m == 0:
        return 0.0
    if m >= n:
        # At most one record per page: each retrieved record is one page.
        return float(min(t, n))
    if t >= n:
        return float(m)

    lower = math.floor(t)
    upper = math.ceil(t)
    if lower == upper:
        return _npa_integer(int(t), n, m)
    fraction = t - lower
    low_value = _npa_integer(lower, n, m) if lower > 0 else 0.0
    high_value = _npa_integer(upper, n, m)
    return (1.0 - fraction) * low_value + fraction * high_value


def _npa_integer(t: int, n: float, m: float) -> float:
    if t <= 0:
        return 0.0
    if t > _EXACT_LIMIT:
        return _cardenas(float(t), m)
    records_per_page = n / m
    # Product in log space for numerical robustness.
    log_product = 0.0
    for i in range(1, t + 1):
        numerator = n - records_per_page - i + 1
        denominator = n - i + 1
        if numerator <= 0 or denominator <= 0:
            return float(m)
        log_product += math.log(numerator) - math.log(denominator)
    value = m * (1.0 - math.exp(log_product))
    return float(min(max(value, 0.0), m))


def _cardenas(t: float, m: float) -> float:
    """Cardenas' approximation, exact in the records→∞ limit."""
    value = m * (1.0 - (1.0 - 1.0 / m) ** t)
    return float(min(max(value, 0.0), m))
