"""Multi-index (MX) cost model.

An MX allocates one simple index per class in the *scope* of the subpath:
for every position ``i`` and every hierarchy member ``C_{i,j}`` there is an
index on attribute ``A_i`` of exactly that class (Section 2.2).

Retrieval (Section 3.1, ``CRMX``): a query against the ending attribute
with respect to class ``C_{l,x}`` performs ``1 + Σ_{i=l+1..t} nc_i`` index
lookups — the target class's own index, every hierarchy member's index at
the intermediate levels, and every member's index at the ending level. The
number of records fetched in a level-``i`` index is the oid fan-in
``noid-sigma_{i+1}`` from the level below (clamped by the records that
exist, which Yao requires).

Maintenance (``CMMX``): inserting an object touches only its own class
index (``CMT`` over its ``nin`` values); deleting it additionally removes
the record keyed by its oid from the index of the previous class *and all
its subclasses* — when the previous class belongs to this subpath. When
the previous class belongs to the preceding subpath, that cost is the
preceding subpath's ``CMD`` (Definition 4.2 attributes it there).
"""

from __future__ import annotations

from repro.costmodel.base import SubpathCostModel
from repro.costmodel.btree_shape import IndexShape
from repro.costmodel.params import PathStatistics
from repro.costmodel.primitives import cml
from repro.organizations import IndexOrganization


class MXCostModel(SubpathCostModel):
    """Analytic costs of a multi-index on one subpath."""

    organization = IndexOrganization.MX

    def __init__(self, stats: PathStatistics, start: int, end: int) -> None:
        super().__init__(stats, start, end)
        self._shapes: dict[tuple[int, str], IndexShape] = {}
        for position in self.positions():
            for member in stats.members(position):
                self._shapes[(position, member)] = self.mx_shape(position, member)

    def shape(self, position: int, class_name: str) -> IndexShape:
        """The shape of the index on ``A_position`` of one class."""
        return self._shapes[(position, class_name)]

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def query_cost(self, position: int, class_name: str, probes: float = 1.0) -> float:
        self._check_covered(position, class_name)
        # The formula never reads the subpath start, so the value is
        # shared across every matrix row ending at self.end.
        cache = self._memo
        if cache is None:
            return self._query_cost_uncached(position, class_name, probes)
        key = (10, position, class_name, self.end, probes)
        value = cache.get(key)
        if value is None:
            value = self._query_cost_uncached(position, class_name, probes)
            cache[key] = value
        return value

    def _query_cost_uncached(
        self, position: int, class_name: str, probes: float
    ) -> float:
        stats = self.stats
        total = 0.0
        # Ending level: every hierarchy member is probed with the equality
        # value(s) — unless the target class itself sits at the ending level,
        # in which case only its own index matters.
        if position == self.end:
            return self._crt(
                self.shape(position, class_name), probes, self.config.pr_mx
            )
        for member in stats.members(self.end):
            total += self._crt(self.shape(self.end, member), probes, self.config.pr_mx)
        # Intermediate levels between the target and the ending attribute.
        for level in range(self.end - 1, position, -1):
            keys = stats.probe_keys(level, self.end, probes)
            for member in stats.members(level):
                total += self._crt(self.shape(level, member), keys, self.config.pr_mx)
        # Target level: only the target class's index.
        keys = stats.probe_keys(position, self.end, probes)
        total += self._crt(self.shape(position, class_name), keys, self.config.pr_mx)
        return total

    def hierarchy_query_cost(self, position: int, probes: float = 1.0) -> float:
        """``CRMX`` with respect to ``C-hat_{l,x}`` (class plus subclasses)."""
        members = self.stats.members(position)
        total = self.query_cost(position, members[0], probes)
        keys = self.stats.probe_keys(position, self.end, probes)
        for member in members[1:]:
            total += self._crt(self.shape(position, member), keys, self.config.pr_mx)
        return total

    def range_query_cost(
        self,
        position: int,
        class_name: str,
        selectivity: float,
        probes: float = 1.0,
    ) -> float:
        """Range predicate: contiguous scans of the ending indexes, then
        ordinary oid chaining through the intermediate levels."""
        from repro.costmodel.ranges import range_scan_cost

        self._check_covered(position, class_name)
        stats = self.stats
        if position == self.end:
            return range_scan_cost(
                self.shape(position, class_name), selectivity, self.config.pr_mx
            )
        total = 0.0
        for member in stats.members(self.end):
            total += range_scan_cost(
                self.shape(self.end, member), selectivity, self.config.pr_mx
            )
        # A non-empty range matches at least one value.
        matched = max(1.0, selectivity * stats.distinct_union(self.end)) * probes
        for level in range(self.end - 1, position, -1):
            keys = stats.probe_keys(level, self.end, matched)
            for member in stats.members(level):
                total += self._crt(self.shape(level, member), keys, self.config.pr_mx)
        keys = stats.probe_keys(position, self.end, matched)
        total += self._crt(self.shape(position, class_name), keys, self.config.pr_mx)
        return total

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def insert_cost(self, position: int, class_name: str) -> float:
        self._check_covered(position, class_name)
        cache = self._memo
        if cache is not None:
            key = (11, position, class_name)
            value = cache.get(key)
            if value is not None:
                return value
        nin = self.stats.nin(position, class_name)
        value = self._cmt(self.shape(position, class_name), nin, self.config.pm_mx)
        if cache is not None:
            cache[key] = value
        return value

    def delete_cost(self, position: int, class_name: str) -> float:
        self._check_covered(position, class_name)
        # Start-independent except for the interior/boundary distinction,
        # which the key captures as a flag.
        cache = self._memo
        if cache is not None:
            key = (12, position, class_name, position > self.start)
            value = cache.get(key)
            if value is not None:
                return value
        nin = self.stats.nin(position, class_name)
        total = self._cmt(self.shape(position, class_name), nin, self.config.pm_mx)
        if position > self.start:
            # The deleted oid keys one record in the index of the previous
            # class and each of its subclasses.
            for member in self.stats.members(position - 1):
                total += cml(self.shape(position - 1, member), self.config.pm_mx)
        if cache is not None:
            cache[key] = total
        return total

    def cmd_cost(self) -> float:
        # Deleting an object of C_{t+1}: its oid keys a record in the
        # ending-attribute index of every hierarchy member at level t.
        # paper: the CMD table's MX row; the Σ over subclasses mirrors the
        # CMMX deletion prose ("the index defined on class C_{l-1} and all
        # its subclasses").
        cache = self._memo
        if cache is not None:
            key = (13, self.end)
            value = cache.get(key)
            if value is not None:
                return value
        total = 0.0
        for member in self.stats.members(self.end):
            shape = self.shape(self.end, member)
            total += cml(shape, float(shape.record_pages))
        if cache is not None:
            cache[key] = total
        return total

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def storage_pages(self) -> float:
        total = 0.0
        for shape in self._shapes.values():
            total += shape.leaf_pages * (1 if not shape.oversized else 1)
            if shape.oversized:
                total += shape.record_count * shape.record_pages
        return total
