"""Analytic cost models (Sections 3 and 4 of the paper).

The package decomposes exactly like the paper does:

* :mod:`~repro.costmodel.yao` — Yao's block-access estimate ``npa`` [12];
* :mod:`~repro.costmodel.params` — the Table 2 symbols: per-class
  statistics (``n``, ``d``, ``nin``), derived quantities (``k``, ``par``,
  ``nin-bar``) and :class:`~repro.costmodel.params.CostModelConfig`;
* :mod:`~repro.costmodel.btree_shape` — index heights, leaf pages and
  level profiles (the role of companion report [7]);
* :mod:`~repro.costmodel.primitives` — ``CRL``, ``CML``, ``CRT``, ``CMT``
  and ``CRR``;
* :mod:`~repro.costmodel.mx` / :mod:`~repro.costmodel.mix` /
  :mod:`~repro.costmodel.nix` — retrieval and maintenance costs per
  organization;
* :mod:`~repro.costmodel.cmd` — the cross-subpath deletion cost
  ``CMD_X(A_t)`` of Section 4;
* :mod:`~repro.costmodel.noindex` — naive traversal cost for unindexed
  subpaths (the Section 6 extension);
* :mod:`~repro.costmodel.subpath` — the processing cost ``PC(S, X)`` of a
  subpath under a workload (Definition 4.2, Propositions 4.1/4.2).
"""

from repro.costmodel.params import ClassStats, CostModelConfig, PathStatistics
from repro.costmodel.subpath import subpath_processing_cost
from repro.costmodel.yao import npa

__all__ = [
    "ClassStats",
    "CostModelConfig",
    "PathStatistics",
    "npa",
    "subpath_processing_cost",
]
