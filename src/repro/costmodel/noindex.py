"""No-index (naive traversal) cost model — the Section 6 extension.

The paper's further-research list includes "the possibility that no index
will be allocated on a subpath". Without an index, a query against the
ending attribute must evaluate the nested predicate by scanning: reverse
references do not exist, so the evaluator scans the extent of every class
in the subpath's scope once (building value sets bottom-up — the best
possible naive strategy given forward-only references).

Maintenance and cross-subpath costs are zero — exactly the appeal of
leaving a subpath unindexed under update-heavy loads.
"""

from __future__ import annotations

import math

from repro.costmodel.base import SubpathCostModel
from repro.costmodel.params import PathStatistics
from repro.organizations import IndexOrganization


class NoIndexCostModel(SubpathCostModel):
    """Costs of evaluating a subpath by extent scans (no index at all)."""

    organization = IndexOrganization.NONE

    def __init__(self, stats: PathStatistics, start: int, end: int) -> None:
        super().__init__(stats, start, end)

    def _extent_pages(self, position: int, class_name: str) -> float:
        objects = self.stats.n(position, class_name)
        if objects <= 0:
            return 0.0
        per_page = max(
            1,
            self.sizes.page_size
            // (self.sizes.object_size + self.sizes.object_overhead_size),
        )
        return float(math.ceil(objects / per_page))

    def query_cost(self, position: int, class_name: str, probes: float = 1.0) -> float:
        self._check_covered(position, class_name)
        # One pass over the target class's extent plus one pass over every
        # extent below it in the subpath; the probe count does not change
        # the scan cost (the predicate set is checked in memory). The
        # value only sees (position, class, end), so it is shared across
        # rows via the statistics' evaluation cache.
        cache = self._memo
        if cache is not None:
            key = (30, position, class_name, self.end)
            value = cache.get(key)
            if value is not None:
                return value
        total = self._extent_pages(position, class_name)
        for level in range(position + 1, self.end + 1):
            for member in self.stats.members(level):
                total += self._extent_pages(level, member)
        if cache is not None:
            cache[key] = total
        return total

    def hierarchy_query_cost(self, position: int, probes: float = 1.0) -> float:
        """Scan cost for the class and all its subclasses."""
        total = self.query_cost(position, self.stats.members(position)[0], probes)
        for member in self.stats.members(position)[1:]:
            total += self._extent_pages(position, member)
        return total

    def insert_cost(self, position: int, class_name: str) -> float:
        self._check_covered(position, class_name)
        return 0.0

    def delete_cost(self, position: int, class_name: str) -> float:
        self._check_covered(position, class_name)
        return 0.0

    def cmd_cost(self) -> float:
        return 0.0

    def storage_pages(self) -> float:
        return 0.0
