"""Range-predicate cost extension (Section 3: "the extension to range
predicates is straightforward").

A range predicate ``lo <= A_n <= hi`` with selectivity ``s`` (the fraction
of distinct ending values covered) hits ``s·d`` index records. Because
leaf nodes are chained, those records are retrieved with one descent plus
a contiguous leaf walk rather than ``s·d`` separate descents:

.. math::

    range(h, s) = h + \\max(0, \\lceil s · np \\rceil - 1)

(for record-per-page organizations the record pages are added per touched
record). Below the ending level the matched values fan out into oid
*sets*, which are probed with the ordinary equality machinery — oids are
not contiguous in the upstream indexes.
"""

from __future__ import annotations

import math

from repro.costmodel.btree_shape import IndexShape
from repro.errors import CostModelError


def range_scan_cost(
    shape: IndexShape, selectivity: float, pr: float | None = None
) -> float:
    """Pages to retrieve the records of a contiguous key range.

    ``selectivity`` is the fraction of the index's records covered.
    """
    if not 0.0 <= selectivity <= 1.0:
        raise CostModelError(f"selectivity out of [0,1]: {selectivity}")
    if shape.empty or selectivity == 0.0:
        return 0.0
    # A non-empty range retrieves at least one record.
    touched_records = max(1.0, selectivity * shape.record_count)
    leaf = shape.levels[0]
    touched_leaves = max(1.0, math.ceil(selectivity * leaf.pages))
    descent = float(shape.height if not shape.oversized else shape.height - 1)
    cost = descent + (touched_leaves - 1.0)
    if shape.oversized:
        pages = pr if pr is not None else float(shape.record_pages)
        cost += touched_records * pages
    return cost
