"""Paths through the aggregation hierarchy (Definition 2.1).

A path ``P = C1.A1.A2.....An`` is a starting class followed by a chain of
attributes in which the domain of ``A_{l-1}`` is the class ``C_l`` that
declares (or inherits) ``A_l``. The paper's derived notions are implemented
verbatim:

* ``len(P)``  — number of classes along the path (:attr:`Path.length`);
* ``class(P)`` — the classes along the path (:meth:`Path.classes`);
* ``scope(P)`` — ``class(P)`` plus all their subclasses
  (:meth:`Path.scope`);
* the *ending attribute* ``A_n`` and *starting class* ``C_1``.

Positions are **1-based** to match the paper's subscripts: ``C_l`` is
``path.class_at(l)`` and ``A_l`` is ``path.attribute_at(l)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator

from repro.errors import PathError, SchemaError
from repro.model.attribute import Attribute
from repro.model.schema import Schema


@dataclass(frozen=True)
class Path:
    """A navigation path ``C1.A1.A2.....An`` over a frozen schema.

    Instances are immutable and hashable so they can serve as dictionary
    keys in cost matrices.
    """

    schema: Schema
    starting_class: str
    attribute_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.schema.frozen:
            raise PathError("paths require a frozen schema")
        if not self.attribute_names:
            raise PathError("a path needs at least one attribute")
        # Walk the chain to validate Definition 2.1 and cache the classes.
        classes = [self.starting_class]
        if self.starting_class not in self.schema:
            raise PathError(f"unknown starting class {self.starting_class!r}")
        current = self.starting_class
        for position, attribute_name in enumerate(self.attribute_names, start=1):
            try:
                attribute = self.schema.resolve_attribute(current, attribute_name)
            except SchemaError as error:
                raise PathError(str(error)) from error
            is_last = position == len(self.attribute_names)
            if not is_last:
                if not attribute.is_reference:
                    raise PathError(
                        f"attribute {current}.{attribute_name} is atomic but "
                        "is not the ending attribute of the path"
                    )
                current = str(attribute.domain)
                if current in classes:
                    raise PathError(
                        f"class {current!r} appears twice in the path "
                        "(Definition 2.1 forbids repetition)"
                    )
                classes.append(current)
        object.__setattr__(self, "_classes", tuple(classes))

    # ------------------------------------------------------------------
    # parsing / rendering
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, schema: Schema, expression: str) -> "Path":
        """Parse ``"Per.owns.man.name"`` into a :class:`Path`.

        The first dotted component is the starting class; the rest are
        attribute names.
        """
        parts = [part for part in expression.split(".") if part]
        if len(parts) < 2:
            raise PathError(f"path expression too short: {expression!r}")
        return cls(
            schema=schema,
            starting_class=parts[0],
            attribute_names=tuple(parts[1:]),
        )

    def __str__(self) -> str:
        return ".".join((self.starting_class, *self.attribute_names))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Path({str(self)!r})"

    # ------------------------------------------------------------------
    # Definition 2.1 derived notions
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """``len(P)``: the number of classes along the path."""
        return len(self.attribute_names)

    @cached_property
    def classes(self) -> tuple[str, ...]:
        """``class(P)``: the classes ``C_1 .. C_n`` along the path."""
        return self._classes  # type: ignore[attr-defined]

    @cached_property
    def scope(self) -> tuple[str, ...]:
        """``scope(P)``: ``class(P)`` plus all their subclasses."""
        result: list[str] = []
        for name in self.classes:
            for member in self.schema.hierarchy(name):
                if member not in result:
                    result.append(member)
        return tuple(result)

    @property
    def ending_attribute(self) -> str:
        """``A_n``: the last attribute of the path."""
        return self.attribute_names[-1]

    def class_at(self, position: int) -> str:
        """``C_l`` for 1-based ``position``."""
        self._check_position(position)
        return self.classes[position - 1]

    def attribute_at(self, position: int) -> str:
        """``A_l`` for 1-based ``position``."""
        self._check_position(position)
        return self.attribute_names[position - 1]

    def attribute_def_at(self, position: int) -> Attribute:
        """The resolved :class:`Attribute` for ``A_l``."""
        return self.schema.resolve_attribute(
            self.class_at(position), self.attribute_at(position)
        )

    def hierarchy_at(self, position: int) -> list[str]:
        """``C-hat_l``: class ``C_l`` plus its subclasses."""
        return self.schema.hierarchy(self.class_at(position))

    def hierarchy_size_at(self, position: int) -> int:
        """``nc_l``: number of classes in the hierarchy rooted at ``C_l``."""
        return self.schema.hierarchy_size(self.class_at(position))

    def domain_class_after(self, position: int) -> str | None:
        """The class ``C_{l+1}`` that is the domain of ``A_l``.

        Returns ``None`` when ``A_l`` is the ending attribute with an atomic
        domain (there is no following class).
        """
        attribute = self.attribute_def_at(position)
        if attribute.is_atomic:
            return None
        return str(attribute.domain)

    def _check_position(self, position: int) -> None:
        if not 1 <= position <= self.length:
            raise PathError(
                f"position {position} out of range 1..{self.length} for {self}"
            )

    # ------------------------------------------------------------------
    # subpaths (Section 4)
    # ------------------------------------------------------------------
    def subpath(self, start: int, end: int) -> "Path":
        """The subpath ``S_{start,end} = C_start.A_start.....A_end``.

        ``start`` and ``end`` are 1-based positions into this path,
        inclusive on both sides, matching the paper's ``S_{i,j}`` notation.
        """
        self._check_position(start)
        self._check_position(end)
        if start > end:
            raise PathError(f"subpath start {start} after end {end}")
        return Path(
            schema=self.schema,
            starting_class=self.class_at(start),
            attribute_names=self.attribute_names[start - 1 : end],
        )

    def subpaths(self) -> Iterator[tuple[int, int, "Path"]]:
        """All ``n(n+1)/2`` contiguous subpaths as ``(start, end, path)``.

        Enumeration order is by increasing start, then increasing end — the
        row order of the paper's cost matrix (Figure 6).
        """
        for start in range(1, self.length + 1):
            for end in range(start, self.length + 1):
                yield start, end, self.subpath(start, end)

    def subpath_count(self) -> int:
        """``n(n+1)/2``: how many contiguous subpaths exist."""
        return self.length * (self.length + 1) // 2

    def is_prefix_of(self, other: "Path") -> bool:
        """Whether this path is a prefix of ``other`` (same start class)."""
        return (
            self.starting_class == other.starting_class
            and self.attribute_names == other.attribute_names[: self.length]
        )

    def overlaps(self, other: "Path") -> bool:
        """Whether the two paths share at least one (class, attribute) step."""
        mine = set(zip(self.classes, self.attribute_names))
        theirs = set(zip(other.classes, other.attribute_names))
        return bool(mine & theirs)
