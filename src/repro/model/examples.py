"""The paper's running example: Figure 1 schema and Figure 2 instances.

The aggregation hierarchy (Figure 1):

* ``Person`` (name, age) —``owns+``→ ``Vehicle``
* ``Vehicle`` (vid, color, max_speed) —``man``→ ``Company``, with subclasses
  ``Bus`` (height, seats) and ``Truck`` (weight, availability)
* ``Company`` (name, location) —``divisions+``→ ``Division``
* ``Division`` (name, budget)

The two paths used throughout the paper:

* ``P_e   = Person.owns.man.name``            (Example 2.1, length 3)
* ``P_exa = Person.owns.man.divisions.name``  (Example 5.1, length 4)

Class and attribute names follow the paper's abbreviations where they are
unambiguous (``man`` for manufacturer, ``owns``); ``divisions`` is spelled
out because ``divs`` is only the paper's abbreviation.
"""

from __future__ import annotations

from repro.model.attribute import AtomicType
from repro.model.objects import OID, OODatabase
from repro.model.path import Path
from repro.model.schema import Schema, atomic, reference

#: Path expressions from the paper.
PE_EXPRESSION = "Person.owns.man.name"
PEXA_EXPRESSION = "Person.owns.man.divisions.name"


def build_vehicle_schema() -> Schema:
    """Construct and freeze the Figure 1 schema."""
    schema = Schema()
    schema.define(
        "Division",
        [
            atomic("name", AtomicType.STRING),
            atomic("budget", AtomicType.INTEGER),
        ],
    )
    schema.define(
        "Company",
        [
            atomic("name", AtomicType.STRING),
            atomic("location", AtomicType.STRING),
            reference("divisions", "Division", multi_valued=True),
        ],
    )
    schema.define(
        "Vehicle",
        [
            atomic("vid", AtomicType.INTEGER),
            atomic("color", AtomicType.STRING),
            atomic("max_speed", AtomicType.INTEGER),
            reference("man", "Company"),
        ],
    )
    schema.define(
        "Bus",
        [
            atomic("height", AtomicType.INTEGER),
            atomic("seats", AtomicType.INTEGER),
        ],
        superclass="Vehicle",
    )
    schema.define(
        "Truck",
        [
            atomic("weight", AtomicType.INTEGER),
            atomic("availability", AtomicType.STRING),
        ],
        superclass="Vehicle",
    )
    schema.define(
        "Person",
        [
            atomic("name", AtomicType.STRING),
            atomic("age", AtomicType.INTEGER),
            reference("owns", "Vehicle", multi_valued=True),
        ],
    )
    return schema.freeze()


def pe_path(schema: Schema | None = None) -> Path:
    """The Example 2.1 path ``Person.owns.man.name``."""
    return Path.parse(schema or build_vehicle_schema(), PE_EXPRESSION)


def pexa_path(schema: Schema | None = None) -> Path:
    """The Example 5.1 path ``Person.owns.man.divisions.name``."""
    return Path.parse(schema or build_vehicle_schema(), PEXA_EXPRESSION)


def populate_vehicle_database(schema: Schema | None = None) -> OODatabase:
    """Create the Figure 2 instances.

    The population reproduces the object graph that the paper's index
    examples enumerate (the MIX entries of Section 2.2):

    * ``man``:  ``(Company[i], {Vehicle[i], Vehicle[j]})``,
      ``(Company[j], {Vehicle[k], Bus[i], Truck[i]})``,
      ``(Company[k], {Bus[j]})``
    * ``owns``: ``(Vehicle[i], {Person[o]})``, ``(Vehicle[j], {Person[p]})``,
      ``(Vehicle[k], {Person[q]})``, ``(Truck[i], {Person[r]})``,
      ``(Bus[i], {Person[p]})``

    Serial numbers stand in for the paper's letter subscripts
    (``i, j, k → 0, 1, 2`` and ``o, p, q, r → 0, 1, 2, 3``).
    """
    schema = schema or build_vehicle_schema()
    database = OODatabase(schema)

    divisions: dict[str, list[OID]] = {}
    for company, names in {
        "Renault": ["engines", "chassis"],
        "Fiat": ["movings", "design"],
        "Daf": ["cabs", "logistics"],
    }.items():
        divisions[company] = [
            database.create("Division", name=f"{company}-{name}", budget=100 + 10 * i)
            for i, name in enumerate(names)
        ]

    renault = database.create(
        "Company", name="Renault", location="Torino", divisions=divisions["Renault"]
    )
    fiat = database.create(
        "Company", name="Fiat", location="Milano", divisions=divisions["Fiat"]
    )
    daf = database.create(
        "Company", name="Daf", location="Eindhoven", divisions=divisions["Daf"]
    )

    vehicle_i = database.create(
        "Vehicle", vid=1, color="White", max_speed=160, man=renault
    )
    vehicle_j = database.create(
        "Vehicle", vid=2, color="Red", max_speed=150, man=renault
    )
    vehicle_k = database.create(
        "Vehicle", vid=3, color="Red", max_speed=170, man=fiat
    )
    bus_i = database.create(
        "Bus", vid=4, color="Blue", max_speed=120, man=fiat, height=3, seats=50
    )
    database.create(  # Bus[j]: manufactured by Daf, not owned by anyone.
        "Bus", vid=5, color="Green", max_speed=110, man=daf, height=4, seats=60
    )
    truck_i = database.create(
        "Truck",
        vid=6,
        color="Grey",
        max_speed=130,
        man=fiat,
        weight=12000,
        availability="weekdays",
    )

    database.create("Person", name="Rossi", age=45, owns=[vehicle_i])
    database.create("Person", name="Piet", age=38, owns=[vehicle_j, bus_i])
    database.create("Person", name="Sonia", age=29, owns=[vehicle_k])
    database.create("Person", name="Henk", age=52, owns=[truck_i])
    return database
