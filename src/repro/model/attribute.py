"""Attribute and domain definitions.

An attribute's domain is either *atomic* (integer, string, ...) or a class
of the schema, in which case the attribute establishes a part-of
relationship between its owner class and the domain class (Section 1 of the
paper). Multi-valued attributes are the ones marked with ``+`` in Figure 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SchemaError


class AtomicType(enum.Enum):
    """Atomic domains supported by the data model."""

    INTEGER = "integer"
    REAL = "real"
    STRING = "string"
    BOOLEAN = "boolean"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Python types accepted as values for each atomic domain.
_PYTHON_TYPES = {
    AtomicType.INTEGER: (int,),
    AtomicType.REAL: (int, float),
    AtomicType.STRING: (str,),
    AtomicType.BOOLEAN: (bool,),
}


@dataclass(frozen=True)
class Attribute:
    """A named attribute of a class.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"owns"``.
    domain:
        Either an :class:`AtomicType` or the *name* of a class in the same
        schema (a part-of relationship). Class domains are stored by name so
        schemas can be declared in any class order.
    multi_valued:
        ``True`` for set-valued attributes (``+`` in the paper's figures).
    """

    name: str
    domain: AtomicType | str
    multi_valued: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid attribute name: {self.name!r}")
        if isinstance(self.domain, str) and not self.domain:
            raise SchemaError(f"attribute {self.name!r} has an empty domain")

    @property
    def is_atomic(self) -> bool:
        """Whether the domain is an atomic type."""
        return isinstance(self.domain, AtomicType)

    @property
    def is_reference(self) -> bool:
        """Whether the domain is a class (part-of relationship)."""
        return isinstance(self.domain, str)

    def accepts_atomic_value(self, value: object) -> bool:
        """Check a Python value against an atomic domain.

        Returns ``False`` for reference attributes; oid checking is the
        responsibility of :class:`~repro.model.objects.OODatabase`.
        """
        if not self.is_atomic:
            return False
        assert isinstance(self.domain, AtomicType)
        # bool is a subclass of int; keep INTEGER strict about it.
        if self.domain is AtomicType.INTEGER and isinstance(value, bool):
            return False
        return isinstance(value, _PYTHON_TYPES[self.domain])

    def __str__(self) -> str:
        marker = "+" if self.multi_valued else ""
        domain = self.domain if isinstance(self.domain, str) else str(self.domain)
        return f"{self.name}{marker}: {domain}"
