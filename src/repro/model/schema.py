"""Class definitions and schemas (aggregation + inheritance hierarchies).

A :class:`Schema` holds a set of :class:`ClassDef` objects. Two hierarchies
emerge from the definitions, exactly as in Section 1 of the paper:

* the **aggregation hierarchy**: class ``C`` has an attribute whose domain
  is class ``C'`` (part-of relationship);
* the **inheritance hierarchy**: a subclass inherits the attributes of its
  superclass and may add its own.

The paper's notation ``C-hat_{l,x}`` (the class together with all its
subclasses) is exposed as :meth:`Schema.hierarchy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import SchemaError
from repro.model.attribute import AtomicType, Attribute


@dataclass
class ClassDef:
    """A class of the object-oriented schema.

    Parameters
    ----------
    name:
        Class name, unique within the schema.
    attributes:
        The attributes *declared* by this class (inherited ones are resolved
        through the schema).
    superclass:
        Name of the direct superclass, or ``None`` for a hierarchy root.
        Single inheritance suffices for the paper's model.
    """

    name: str
    attributes: dict[str, Attribute] = field(default_factory=dict)
    superclass: str | None = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid class name: {self.name!r}")
        for key, attribute in self.attributes.items():
            if key != attribute.name:
                raise SchemaError(
                    f"attribute dict key {key!r} does not match "
                    f"attribute name {attribute.name!r}"
                )

    def declare(self, attribute: Attribute) -> None:
        """Add a declared attribute, refusing duplicates."""
        if attribute.name in self.attributes:
            raise SchemaError(
                f"class {self.name!r} already declares {attribute.name!r}"
            )
        self.attributes[attribute.name] = attribute

    def __str__(self) -> str:
        parent = f"({self.superclass})" if self.superclass else ""
        attrs = ", ".join(str(a) for a in self.attributes.values())
        return f"{self.name}{parent}[{attrs}]"


class Schema:
    """A collection of classes with aggregation and inheritance hierarchies.

    The schema is the single source of truth for class lookup, attribute
    resolution through inheritance, and subclass enumeration. It validates
    referential integrity on :meth:`freeze` (called automatically by
    consumers that need a consistent schema).
    """

    def __init__(self, classes: Iterable[ClassDef] = ()) -> None:
        self._classes: dict[str, ClassDef] = {}
        self._direct_subclasses: dict[str, list[str]] = {}
        self._frozen = False
        for class_def in classes:
            self.add_class(class_def)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_class(self, class_def: ClassDef) -> ClassDef:
        """Register a class definition."""
        if self._frozen:
            raise SchemaError("cannot add classes to a frozen schema")
        if class_def.name in self._classes:
            raise SchemaError(f"duplicate class name: {class_def.name!r}")
        self._classes[class_def.name] = class_def
        self._direct_subclasses.setdefault(class_def.name, [])
        return class_def

    def define(
        self,
        name: str,
        attributes: Iterable[Attribute] = (),
        superclass: str | None = None,
    ) -> ClassDef:
        """Convenience constructor: define and register a class."""
        class_def = ClassDef(name=name, superclass=superclass)
        for attribute in attributes:
            class_def.declare(attribute)
        return self.add_class(class_def)

    def freeze(self) -> "Schema":
        """Validate the schema and make it immutable.

        Checks performed:

        * every superclass exists and inheritance is acyclic;
        * every reference attribute points to an existing class;
        * no subclass redeclares an inherited attribute name.
        """
        if self._frozen:
            return self
        for class_def in self._classes.values():
            if class_def.superclass is not None:
                if class_def.superclass not in self._classes:
                    raise SchemaError(
                        f"class {class_def.name!r} inherits from unknown "
                        f"class {class_def.superclass!r}"
                    )
                self._direct_subclasses[class_def.superclass].append(class_def.name)
            for attribute in class_def.attributes.values():
                if attribute.is_reference and attribute.domain not in self._classes:
                    raise SchemaError(
                        f"attribute {class_def.name}.{attribute.name} has "
                        f"unknown domain class {attribute.domain!r}"
                    )
        self._check_acyclic_inheritance()
        self._check_no_redeclaration()
        for subclasses in self._direct_subclasses.values():
            subclasses.sort()
        self._frozen = True
        return self

    def _check_acyclic_inheritance(self) -> None:
        for name in self._classes:
            seen = {name}
            cursor = self._classes[name].superclass
            while cursor is not None:
                if cursor in seen:
                    raise SchemaError(f"inheritance cycle through {cursor!r}")
                seen.add(cursor)
                cursor = self._classes[cursor].superclass

    def _check_no_redeclaration(self) -> None:
        for name, class_def in self._classes.items():
            cursor = class_def.superclass
            while cursor is not None:
                parent = self._classes[cursor]
                overlap = set(class_def.attributes) & set(parent.attributes)
                if overlap:
                    raise SchemaError(
                        f"class {name!r} redeclares inherited attributes "
                        f"{sorted(overlap)} of {cursor!r}"
                    )
                cursor = parent.superclass

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has completed."""
        return self._frozen

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __iter__(self) -> Iterator[ClassDef]:
        return iter(self._classes.values())

    def __len__(self) -> int:
        return len(self._classes)

    def class_names(self) -> list[str]:
        """All class names in declaration order."""
        return list(self._classes)

    def get(self, name: str) -> ClassDef:
        """Look up a class by name, raising :class:`SchemaError` if absent."""
        try:
            return self._classes[name]
        except KeyError:
            raise SchemaError(f"unknown class: {name!r}") from None

    def direct_subclasses(self, name: str) -> list[str]:
        """Names of the direct subclasses of ``name``."""
        self._require_frozen()
        self.get(name)
        return list(self._direct_subclasses[name])

    def hierarchy(self, name: str) -> list[str]:
        """``C-hat``: the class and all its (transitive) subclasses.

        The root comes first; the remainder is in depth-first order. This is
        the paper's ``C-hat_{l,x}`` notation and the basis of ``scope(P)``.
        """
        self._require_frozen()
        result: list[str] = []
        stack = [name]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(reversed(self._direct_subclasses[current]))
        return result

    def hierarchy_size(self, name: str) -> int:
        """``nc_l``: number of classes in the hierarchy rooted at ``name``."""
        return len(self.hierarchy(name))

    def superclasses(self, name: str) -> list[str]:
        """Chain of superclasses from direct parent to the hierarchy root."""
        chain: list[str] = []
        cursor = self.get(name).superclass
        while cursor is not None:
            chain.append(cursor)
            cursor = self.get(cursor).superclass
        return chain

    def root_of(self, name: str) -> str:
        """The root class of the inheritance hierarchy containing ``name``."""
        chain = self.superclasses(name)
        return chain[-1] if chain else name

    def is_subclass_of(self, name: str, ancestor: str) -> bool:
        """Whether ``name`` equals or transitively specializes ``ancestor``."""
        return name == ancestor or ancestor in self.superclasses(name)

    def resolve_attribute(self, class_name: str, attribute_name: str) -> Attribute:
        """Resolve an attribute on a class, walking up the inheritance chain."""
        cursor: str | None = class_name
        while cursor is not None:
            class_def = self.get(cursor)
            if attribute_name in class_def.attributes:
                return class_def.attributes[attribute_name]
            cursor = class_def.superclass
        raise SchemaError(
            f"class {class_name!r} has no attribute {attribute_name!r} "
            "(own or inherited)"
        )

    def all_attributes(self, class_name: str) -> dict[str, Attribute]:
        """Own plus inherited attributes of a class (inherited first)."""
        chain = [class_name, *self.superclasses(class_name)]
        merged: dict[str, Attribute] = {}
        for name in reversed(chain):
            merged.update(self.get(name).attributes)
        return merged

    def aggregation_edges(self) -> list[tuple[str, str, str]]:
        """All part-of edges as ``(owner class, attribute, domain class)``."""
        edges = []
        for class_def in self._classes.values():
            for attribute in class_def.attributes.values():
                if attribute.is_reference:
                    edges.append((class_def.name, attribute.name, str(attribute.domain)))
        return edges

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise SchemaError("schema must be frozen before hierarchy queries")

    def describe(self) -> str:
        """Human-readable multi-line schema description."""
        lines = []
        for class_def in self._classes.values():
            lines.append(str(class_def))
        return "\n".join(lines)


def atomic(name: str, domain: AtomicType, multi_valued: bool = False) -> Attribute:
    """Shorthand for an atomic attribute."""
    return Attribute(name=name, domain=domain, multi_valued=multi_valued)


def reference(name: str, domain: str, multi_valued: bool = False) -> Attribute:
    """Shorthand for a reference (part-of) attribute."""
    return Attribute(name=name, domain=domain, multi_valued=multi_valued)
