"""In-memory object store: oids, instances, class extents.

The store mirrors the paper's assumptions: every object carries a
system-generated oid; references between objects are *forward* only (an
object knows its children, not its parents); attributes never hold NULL.
A reverse-reference map is maintained on the side because the NIX auxiliary
index and the synthetic data generator both need parent lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import SchemaError
from repro.model.attribute import Attribute
from repro.model.schema import Schema


@dataclass(frozen=True, order=True)
class OID:
    """A system-generated object identifier.

    Ordered and hashable so oids can be B+-tree keys. The textual form
    matches the paper's ``Class[serial]`` convention, e.g. ``Vehicle[3]``.
    """

    class_name: str
    serial: int

    def __str__(self) -> str:
        return f"{self.class_name}[{self.serial}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return str(self)


@dataclass
class ObjectInstance:
    """An object: an oid plus a value for every attribute of its class.

    Values are atomic Python values, :class:`OID` references, or lists
    thereof for multi-valued attributes.
    """

    oid: OID
    values: dict[str, object] = field(default_factory=dict)

    def value_list(self, attribute: str) -> list[object]:
        """The attribute's values as a list (singletons for single-valued)."""
        value = self.values[attribute]
        if isinstance(value, list):
            return list(value)
        return [value]


class OODatabase:
    """A populated database over a frozen :class:`Schema`.

    Provides object creation with domain checking, deletion with
    referential bookkeeping, extent iteration, and parent lookup (the
    reverse of the forward references, needed by the NIX auxiliary index).
    """

    def __init__(self, schema: Schema) -> None:
        schema.freeze()
        self.schema = schema
        self._extents: dict[str, dict[int, ObjectInstance]] = {
            name: {} for name in schema.class_names()
        }
        self._serials: dict[str, int] = {name: 0 for name in schema.class_names()}
        # (child oid, attribute) -> set of parent oids referencing it.
        self._parents: dict[OID, dict[str, set[OID]]] = {}

    # ------------------------------------------------------------------
    # creation / deletion
    # ------------------------------------------------------------------
    def create(self, class_name: str, **values: object) -> OID:
        """Create an object of ``class_name`` with the given attribute values.

        Every attribute of the class (own and inherited) must receive a
        value — the paper assumes attributes are never NULL. Reference
        values must be oids of the domain class or one of its subclasses.
        """
        class_def = self.schema.get(class_name)
        if self.schema.direct_subclasses(class_name) and values.get("__abstract_ok__"):
            values.pop("__abstract_ok__")
        attributes = self.schema.all_attributes(class_name)
        unknown = set(values) - set(attributes)
        if unknown:
            raise SchemaError(
                f"unknown attributes for {class_name!r}: {sorted(unknown)}"
            )
        missing = set(attributes) - set(values)
        if missing:
            raise SchemaError(
                f"missing values for {class_name!r}: {sorted(missing)} "
                "(attributes may not be NULL)"
            )
        serial = self._serials[class_name]
        self._serials[class_name] = serial + 1
        oid = OID(class_name=class_def.name, serial=serial)
        checked: dict[str, object] = {}
        for name, attribute in attributes.items():
            checked[name] = self._check_value(class_name, attribute, values[name])
        instance = ObjectInstance(oid=oid, values=checked)
        self._extents[class_name][serial] = instance
        self._register_references(instance)
        return oid

    def _check_value(
        self, class_name: str, attribute: Attribute, value: object
    ) -> object:
        if attribute.multi_valued:
            if not isinstance(value, (list, tuple, set)):
                raise SchemaError(
                    f"{class_name}.{attribute.name} is multi-valued; "
                    f"got scalar {value!r}"
                )
            return [
                self._check_single(class_name, attribute, item) for item in value
            ]
        if isinstance(value, (list, tuple, set)):
            raise SchemaError(
                f"{class_name}.{attribute.name} is single-valued; "
                f"got collection {value!r}"
            )
        return self._check_single(class_name, attribute, value)

    def _check_single(
        self, class_name: str, attribute: Attribute, value: object
    ) -> object:
        if attribute.is_atomic:
            if not attribute.accepts_atomic_value(value):
                raise SchemaError(
                    f"{class_name}.{attribute.name}: value {value!r} not in "
                    f"domain {attribute.domain}"
                )
            return value
        if not isinstance(value, OID):
            raise SchemaError(
                f"{class_name}.{attribute.name}: expected an OID, got {value!r}"
            )
        domain = str(attribute.domain)
        if not self.schema.is_subclass_of(value.class_name, domain):
            raise SchemaError(
                f"{class_name}.{attribute.name}: oid {value} is not in the "
                f"hierarchy rooted at {domain!r}"
            )
        if not self.contains(value):
            raise SchemaError(
                f"{class_name}.{attribute.name}: dangling reference {value} "
                "(only forward references to existing objects are allowed)"
            )
        return value

    def _register_references(self, instance: ObjectInstance) -> None:
        for attribute_name, value in instance.values.items():
            for item in _as_list(value):
                if isinstance(item, OID):
                    slots = self._parents.setdefault(item, {})
                    slots.setdefault(attribute_name, set()).add(instance.oid)

    def _unregister_references(self, instance: ObjectInstance) -> None:
        for attribute_name, value in instance.values.items():
            for item in _as_list(value):
                if isinstance(item, OID):
                    slots = self._parents.get(item)
                    if slots and attribute_name in slots:
                        slots[attribute_name].discard(instance.oid)

    def delete(self, oid: OID) -> ObjectInstance:
        """Delete an object and unregister its outgoing references.

        Incoming references from parents are left in place: the paper's
        delete algorithms (Section 3.1) operate on the *indexes*; the
        operational index layer is responsible for maintaining them and the
        caller for cascading or forbidding dangles as it sees fit.
        """
        instance = self.get(oid)
        del self._extents[oid.class_name][oid.serial]
        self._unregister_references(instance)
        return instance

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def contains(self, oid: OID) -> bool:
        """Whether the oid refers to a live object."""
        extent = self._extents.get(oid.class_name)
        return extent is not None and oid.serial in extent

    def get(self, oid: OID) -> ObjectInstance:
        """Fetch an object by oid, raising :class:`SchemaError` if absent."""
        if not self.contains(oid):
            raise SchemaError(f"no such object: {oid}")
        return self._extents[oid.class_name][oid.serial]

    def extent(self, class_name: str) -> Iterator[ObjectInstance]:
        """Objects of exactly ``class_name`` (no subclasses)."""
        self.schema.get(class_name)
        return iter(list(self._extents[class_name].values()))

    def extent_size(self, class_name: str) -> int:
        """``n_{l,x}``: number of objects of exactly ``class_name``."""
        self.schema.get(class_name)
        return len(self._extents[class_name])

    def hierarchy_extent(self, class_name: str) -> Iterator[ObjectInstance]:
        """Objects of the class and all its subclasses."""
        for member in self.schema.hierarchy(class_name):
            yield from self.extent(member)

    def parents_of(self, oid: OID, attribute: str | None = None) -> set[OID]:
        """Objects referencing ``oid`` (optionally through one attribute).

        This is the information the NIX auxiliary index materializes.
        """
        slots = self._parents.get(oid, {})
        if attribute is not None:
            return set(slots.get(attribute, set()))
        merged: set[OID] = set()
        for group in slots.values():
            merged |= group
        return merged

    def total_objects(self) -> int:
        """Number of live objects across all classes."""
        return sum(len(extent) for extent in self._extents.values())

    # ------------------------------------------------------------------
    # statistics helpers (used by repro.synth.stats)
    # ------------------------------------------------------------------
    def distinct_values(self, class_name: str, attribute: str) -> int:
        """``d_{l,x}``: distinct values of an attribute within one class."""
        seen: set[object] = set()
        for instance in self.extent(class_name):
            for item in instance.value_list(attribute):
                seen.add(item)
        return len(seen)

    def average_fanout(self, class_name: str, attribute: str) -> float:
        """``nin_{l,x}``: average number of values per object."""
        sizes = [
            len(instance.value_list(attribute)) for instance in self.extent(class_name)
        ]
        if not sizes:
            return 0.0
        return sum(sizes) / len(sizes)


def _as_list(value: object) -> Iterable[object]:
    if isinstance(value, list):
        return value
    return [value]
