"""Object-oriented data model substrate.

This package implements the data-model concepts of Section 1 and the
path/scope machinery of Section 2.1 of the paper:

* :class:`~repro.model.attribute.Attribute` — typed attributes whose domain
  is either an atomic type or another class (part-of relationship), possibly
  multi-valued (marked ``+`` in the paper's figures).
* :class:`~repro.model.schema.ClassDef` / :class:`~repro.model.schema.Schema`
  — classes organized in aggregation and inheritance hierarchies.
* :class:`~repro.model.path.Path` — a path ``C1.A1.A2.....An`` with
  ``len(P)``, ``class(P)`` and ``scope(P)`` exactly as Definition 2.1.
* :class:`~repro.model.objects.OODatabase` — an in-memory object store with
  oids and forward references, mirroring Figure 2.
* :mod:`~repro.model.examples` — the paper's Figure 1 schema, Figure 2
  instances and Figure 7 statistics.
"""

from repro.model.attribute import AtomicType, Attribute
from repro.model.objects import OID, ObjectInstance, OODatabase
from repro.model.path import Path
from repro.model.schema import ClassDef, Schema

__all__ = [
    "AtomicType",
    "Attribute",
    "ClassDef",
    "OID",
    "OODatabase",
    "ObjectInstance",
    "Path",
    "Schema",
]
