"""Dynamic-programming strategy: exact optimum in O(n²) row lookups.

The objective is additive over contiguous blocks (Proposition 4.2), so the
classic interval-partition recurrence

.. math::

    best(i) = \\min_{j \\ge i} \\; rowmin(i, j) + best(j + 1)

yields the same optimum as exhaustive enumeration while inspecting each of
the ``n(n+1)/2`` matrix rows exactly once. The paper proposes branch and
bound instead; this strategy is the correctness oracle and the natural
"what a modern treatment would do" comparison point for the scaling
benchmarks. ``extras["rows_inspected"]`` reports the lookup count.
"""

from __future__ import annotations

from repro.core.configuration import IndexConfiguration, IndexedSubpath
from repro.core.cost_matrix import CostMatrix
from repro.search.base import SearchResult, register_strategy


@register_strategy("dynamic_program")
class DynamicProgramStrategy:
    """Interval-partition DP over the precomputed row minima."""

    name = "dynamic_program"
    exact = True

    def search(
        self, matrix: CostMatrix, *, keep_trace: bool = False
    ) -> SearchResult:
        length = matrix.length
        # best[i] = minimal cost of covering positions i..length;
        # best[length+1] = 0.
        best: list[float] = [0.0] * (length + 2)
        choice: list[int] = [0] * (length + 2)
        rows = 0
        trace: list[str] = []
        for start in range(length, 0, -1):
            best_cost = float("inf")
            best_end = start
            for end in range(start, length + 1):
                rows += 1
                candidate = matrix.min_cost(start, end).cost + best[end + 1]
                if candidate < best_cost:
                    best_cost = candidate
                    best_end = end
            best[start] = best_cost
            choice[start] = best_end
            if keep_trace:
                trace.append(
                    f"best({start}) = {best_cost:g} via S[{start},{best_end}]"
                )
        parts: list[IndexedSubpath] = []
        cursor = 1
        while cursor <= length:
            end = choice[cursor]
            minimum = matrix.min_cost(cursor, end)
            parts.append(IndexedSubpath(cursor, end, minimum.organization))
            cursor = end + 1
        # The DP never costs a complete candidate configuration, so
        # ``evaluated`` stays 0; its work measure is the row-lookup count.
        return SearchResult(
            configuration=IndexConfiguration(tuple(parts)),
            cost=best[1],
            evaluated=0,
            pruned=0,
            trace=trace,
            strategy=self.name,
            extras={"rows_inspected": rows},
        )
